"""Unit tests for repro.core.graph."""

import numpy as np
import pytest

from repro.core.graph import (
    INDEX_MASK,
    MAX_DATASET_SIZE,
    PARENT_FLAG,
    FixedDegreeGraph,
)


def ring_graph(n: int, degree: int) -> FixedDegreeGraph:
    """Node i points at i+1 .. i+degree (mod n)."""
    rows = [(np.arange(1, degree + 1) + i) % n for i in range(n)]
    return FixedDegreeGraph(np.array(rows, dtype=np.uint32))


class TestConstruction:
    def test_shape_properties(self):
        g = ring_graph(10, 3)
        assert g.num_nodes == 10
        assert g.degree == 3
        assert len(g) == 10

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            FixedDegreeGraph(np.arange(6, dtype=np.uint32))

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            FixedDegreeGraph(np.zeros((3, 2), dtype=np.float32))

    def test_rejects_out_of_range_neighbor(self):
        bad = np.array([[1, 5], [0, 1], [0, 1]], dtype=np.uint32)
        with pytest.raises(ValueError, match="out of range"):
            FixedDegreeGraph(bad)

    def test_accepts_int64_within_range(self):
        g = FixedDegreeGraph(np.array([[1, 2], [0, 2], [0, 1]], dtype=np.int64))
        assert g.neighbors.dtype == np.uint32

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="31 bits"):
            FixedDegreeGraph(np.array([[-1, 0], [0, 1], [1, 0]], dtype=np.int64))


class TestFlags:
    def test_parent_flag_is_msb(self):
        assert PARENT_FLAG == np.uint32(0x80000000)
        assert INDEX_MASK == np.uint32(0x7FFFFFFF)
        assert PARENT_FLAG | INDEX_MASK == np.uint32(0xFFFFFFFF)

    def test_flag_roundtrip(self):
        node = np.uint32(123456)
        flagged = node | PARENT_FLAG
        assert flagged & INDEX_MASK == node
        assert flagged & PARENT_FLAG

    def test_max_dataset_size_is_2_31_minus_1(self):
        """The paper: using the MSB flag halves the addressable space."""
        assert MAX_DATASET_SIZE == 2**31 - 1


class TestTopology:
    def test_out_neighbors(self):
        g = ring_graph(6, 2)
        np.testing.assert_array_equal(g.out_neighbors(0), [1, 2])
        np.testing.assert_array_equal(g.out_neighbors(5), [0, 1])

    def test_in_degrees_ring(self):
        g = ring_graph(8, 3)
        np.testing.assert_array_equal(g.in_degrees(), np.full(8, 3))

    def test_in_degrees_star(self):
        # All nodes point at node 0 (and 1 to keep degree 2).
        rows = np.array([[1, 2]] + [[0, 1]] * 4, dtype=np.uint32)
        g = FixedDegreeGraph(rows)
        assert g.in_degrees()[0] == 4

    def test_self_loop_detection(self):
        g = ring_graph(5, 2)
        assert not g.has_self_loops()
        rows = g.neighbors.copy()
        rows[2, 0] = 2
        assert FixedDegreeGraph(rows).has_self_loops()


class TestReversedEdgeLists:
    def test_ring_reverse(self):
        g = ring_graph(6, 2)
        rev = g.reversed_edge_lists()
        # Node 0 receives edges from 4 (rank 1) and 5 (rank 0):
        # rank-ordered means 5 (its rank-0 edge) first.
        np.testing.assert_array_equal(sorted(rev[0].tolist()), [4, 5])
        assert rev[0][0] == 5

    def test_rank_ordering(self):
        # Node 2 is rank-0 neighbor of 0, rank-1 neighbor of 1.
        rows = np.array([[2, 1], [0, 2], [0, 1]], dtype=np.uint32)
        g = FixedDegreeGraph(rows)
        rev = g.reversed_edge_lists()
        np.testing.assert_array_equal(rev[2], [0, 1])

    def test_total_edge_count_preserved(self):
        g = ring_graph(9, 4)
        rev = g.reversed_edge_lists()
        assert sum(len(r) for r in rev) == 9 * 4

    def test_empty_reverse_list(self):
        # Node 3 has no incoming edges.
        rows = np.array([[1, 2], [0, 2], [0, 1], [0, 1]], dtype=np.uint32)
        g = FixedDegreeGraph(rows)
        rev = g.reversed_edge_lists()
        assert len(rev[3]) == 0


class TestEqualityCopy:
    def test_copy_is_deep(self):
        g = ring_graph(5, 2)
        h = g.copy()
        h.neighbors[0, 0] = 3
        assert g.neighbors[0, 0] == 1

    def test_equality(self):
        assert ring_graph(5, 2) == ring_graph(5, 2)
        assert ring_graph(5, 2) != ring_graph(5, 3)

    def test_equality_other_type(self):
        assert ring_graph(3, 2).__eq__(42) is NotImplemented
