"""repro.stream: mutable index lifecycle (``docs/streaming.md``).

Covers the streaming contract end to end:

* :class:`ExactMemtable` buffering semantics (immediate visibility,
  duplicate rejection, prefix/drain bookkeeping);
* :class:`WriteAheadLog` durability ordering — commit-record atomicity,
  torn-tail and orphan-segment recovery, checkpoint folding;
* :class:`StalenessPolicy` — churn floor, cold-start branches, and the
  *measured* incremental-vs-full break-even;
* :class:`MutableIndex` — insert/delete/search visibility rules, the
  uniform ``filter_mask`` length contract, oracle recall, and the two
  maintenance paths with atomic promotion;
* :class:`Rebuilder` foreground/background equivalence;
* crash recovery: a real ``os._exit`` inside the ``stream.wal.append``
  crash window, then replay must match a never-crashed twin bitwise;
* the serving layer: ``CagraServer.insert/delete``, cache invalidation
  on mutation, freshness stats, ``auto_rebuild``;
* the 500+-op deterministic mixed-workload integration test with
  mid-stream rebuilds and promotions (the acceptance gauntlet).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro import CagraIndex, GraphBuildConfig
from repro.api import BruteForceIndex, build_index
from repro.core.graph import INDEX_MASK
from repro.core.metrics import recall as recall_of
from repro.datasets.synthetic import clustered_gaussian, make_queries
from repro.resilience import FaultInjected
from repro.serve import CagraServer, ServeConfig, ServeError
from repro.stream import (
    CostModel,
    ExactMemtable,
    MutableIndex,
    Rebuilder,
    StalenessPolicy,
    StreamFreshness,
    WriteAheadLog,
    run_mixed_closed_loop,
)

MASK = int(INDEX_MASK)


def _freshness(**overrides) -> StreamFreshness:
    base = dict(
        base_rows=1000, tombstone_rows=0, memtable_rows=0, memtable_live=0,
        live_rows=1000, id_capacity=1000, epoch=0, wal_seq=0,
        query_rate_qps=0.0, search_seconds_per_query=0.0,
    )
    base.update(overrides)
    return StreamFreshness(**base)


@pytest.fixture(scope="module")
def stream_data():
    return clustered_gaussian(420, 16, seed=11)


@pytest.fixture(scope="module")
def stream_base(stream_data):
    """Degree-12 base on the first 300 rows; the tail is the insert pool."""
    return CagraIndex.build(
        stream_data[:300], GraphBuildConfig(graph_degree=12, seed=5)
    )


@pytest.fixture(scope="module")
def stream_pool(stream_data):
    return stream_data[300:]


@pytest.fixture(scope="module")
def stream_queries(stream_data):
    return make_queries(stream_data[:300], 12, seed=6)


# ======================================================================
# memtable
# ======================================================================
class TestExactMemtable:
    def test_insert_search_delete_cycle(self):
        mem = ExactMemtable(4, "sqeuclidean")
        vecs = np.eye(3, 4, dtype=np.float32)
        mem.insert(np.array([10, 11, 12], dtype=np.int64), vecs)
        assert mem.num_rows == 3 and mem.num_live == 3
        ids, dists = mem.snapshot().search(vecs[:1], k=2)
        assert ids[0, 0] == 10 and dists[0, 0] == pytest.approx(0.0)
        assert mem.delete(11) and not mem.delete(11)  # second flip is a no-op
        assert mem.num_live == 2 and mem.contains(11) and not mem.is_live(11)
        ids, _ = mem.snapshot().search(vecs[1:2], k=3)
        assert 11 not in ids[0].tolist()

    def test_duplicate_ids_rejected(self):
        mem = ExactMemtable(2, "sqeuclidean")
        mem.insert(np.array([1], dtype=np.int64), np.zeros((1, 2), np.float32))
        with pytest.raises(ValueError, match="already"):
            mem.insert(np.array([1], dtype=np.int64), np.ones((1, 2), np.float32))

    def test_prefix_drop_keeps_later_rows(self):
        mem = ExactMemtable(2, "sqeuclidean")
        mem.insert(np.arange(4, dtype=np.int64), np.zeros((4, 2), np.float32))
        mem.delete(1)
        ids, _, live = mem.prefix(2)
        assert ids.tolist() == [0, 1] and live.tolist() == [True, False]
        mem.drop_prefix(2)
        assert mem.num_rows == 2 and sorted(mem.ids().tolist()) == [2, 3]
        assert mem.is_live(3) and not mem.contains(0)

    def test_snapshot_is_isolated_from_later_writes(self):
        mem = ExactMemtable(2, "sqeuclidean")
        mem.insert(np.array([0], dtype=np.int64), np.zeros((1, 2), np.float32))
        snap = mem.snapshot()
        mem.insert(np.array([1], dtype=np.int64), np.ones((1, 2), np.float32))
        mem.delete(0)
        ids, _ = snap.search(np.zeros((1, 2), np.float32), k=4)
        assert ids[0].tolist()[:1] == [0] and 1 not in ids[0].tolist()

    def test_allowed_ids_mask_applies(self):
        mem = ExactMemtable(2, "sqeuclidean")
        mem.insert(np.array([3, 7], dtype=np.int64), np.zeros((2, 2), np.float32))
        allowed = np.zeros(8, dtype=bool)
        allowed[7] = True
        ids, _ = mem.snapshot().search(
            np.zeros((1, 2), np.float32), k=2, allowed_ids=allowed
        )
        kept = [i for i in ids[0].tolist() if i != MASK]
        assert kept == [7]


# ======================================================================
# write-ahead log
# ======================================================================
class TestWriteAheadLog:
    def test_roundtrip_replay(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        vecs = np.arange(6, dtype=np.float32).reshape(2, 3)
        wal.append_insert(np.array([5, 6], dtype=np.int64), vecs)
        wal.append_delete(np.array([5], dtype=np.int64))
        wal.close()
        replay = WriteAheadLog(str(tmp_path)).replay()
        assert [r.op for r in replay.records] == ["insert", "delete"]
        assert [r.seq for r in replay.records] == [1, 2]
        assert not replay.torn_tail and replay.orphan_segments == 0
        loaded = WriteAheadLog(str(tmp_path)).load_segment(replay.records[0])
        np.testing.assert_array_equal(loaded, vecs)

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_delete([1])
        wal.close()
        with open(tmp_path / "wal.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"op": "delete", "se')  # crash mid-commit
        replay = WriteAheadLog(str(tmp_path)).replay()
        assert replay.torn_tail
        assert [r.seq for r in replay.records] == [1]

    def test_orphan_segment_counted_not_replayed(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_insert([1], np.zeros((1, 2), np.float32))
        wal.close()
        # A segment with no commit record: the crash-window artifact.
        np.save(tmp_path / "seg-00000002.npy", np.ones((1, 2), np.float32))
        replay = WriteAheadLog(str(tmp_path)).replay()
        assert replay.orphan_segments == 1
        assert [r.seq for r in replay.records] == [1]

    def test_checkpoint_folds_and_prunes(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_insert([0], np.zeros((1, 2), np.float32))
        wal.append_insert([1], np.ones((1, 2), np.float32))
        wal.checkpoint({"state": np.arange(3)}, next_id=2)
        wal.append_delete([0])
        wal.close()
        assert not (tmp_path / "seg-00000001.npy").exists()  # pruned
        replay = WriteAheadLog(str(tmp_path)).replay()
        assert replay.checkpoint is not None
        np.testing.assert_array_equal(replay.checkpoint["state"], np.arange(3))
        assert int(replay.checkpoint["next_id"]) == 2
        # Only the post-checkpoint delete replays; folded ops are skipped.
        assert [(r.op, r.seq) for r in replay.records] == [("delete", 3)]

    def test_corrupt_fault_tears_the_commit(self, tmp_path):
        plan = json.dumps([
            {"point": "stream.wal.append", "kind": "corrupt",
             "match": {"seq": 2}},
        ])
        wal = WriteAheadLog(str(tmp_path), fault_plan=plan)
        wal.append_delete([1])
        with pytest.raises(FaultInjected):
            wal.append_delete([2])
        wal.close()
        replay = WriteAheadLog(str(tmp_path)).replay()
        assert replay.torn_tail
        assert [r.seq for r in replay.records] == [1]

    def test_mismatched_lengths_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(ValueError, match="same length"):
            wal.append_insert([1, 2], np.zeros((1, 2), np.float32))


# ======================================================================
# staleness policy
# ======================================================================
class TestStalenessPolicy:
    def test_churn_floor_blocks_action(self):
        policy = StalenessPolicy(min_memtable_rows=64, min_tombstone_ratio=0.05)
        decision = policy.decide(_freshness(memtable_rows=10))
        assert decision.action == "none" and "floor" in decision.reason

    def test_cold_start_prefers_incremental(self):
        policy = StalenessPolicy(min_memtable_rows=8)
        decision = policy.decide(_freshness(memtable_rows=50))
        assert decision.action == "incremental"
        assert "cold start" in decision.reason
        assert np.isnan(decision.est_incremental_s)

    def test_cold_start_rebuilds_when_tombstones_dominate(self):
        policy = StalenessPolicy(min_memtable_rows=8)
        decision = policy.decide(
            _freshness(tombstone_rows=400, live_rows=600)
        )
        assert decision.action == "full"

    def test_measured_break_even_both_sides(self):
        costs = CostModel()
        costs.note_extend(100, 0.1)   # 1 ms/row incremental
        costs.note_build(100, 1.0)    # 10 ms/row full
        policy = StalenessPolicy(min_memtable_rows=8, horizon_s=10.0, costs=costs)
        # Few tombstones: repairing 100 rows (0.1s) beats rebuilding
        # 1000 rows (10s).
        cheap = policy.decide(_freshness(memtable_rows=100))
        assert cheap.action == "incremental"
        assert cheap.est_incremental_s < cheap.est_full_s
        # Heavy tombstones + hot query stream: the t/(1-t) overhead term
        # charged over the horizon dwarfs the one-off build.
        costly = policy.decide(_freshness(
            memtable_rows=100, tombstone_rows=500, live_rows=600,
            query_rate_qps=500.0, search_seconds_per_query=0.05,
        ))
        assert costly.action == "full"
        assert costly.est_full_s < costly.est_incremental_s

    def test_empty_memtable_rebuilds_only_when_it_pays(self):
        costs = CostModel()
        costs.note_extend(100, 0.1)
        costs.note_build(100, 1.0)
        policy = StalenessPolicy(
            min_memtable_rows=8, min_tombstone_ratio=0.05, horizon_s=10.0,
            costs=costs,
        )
        idle = policy.decide(_freshness(tombstone_rows=100, live_rows=900))
        assert idle.action == "none"  # nobody queries: waste is zero
        hot = policy.decide(_freshness(
            tombstone_rows=300, live_rows=700,
            query_rate_qps=1000.0, search_seconds_per_query=0.05,
        ))
        assert hot.action == "full"

    def test_note_report_routes_costs(self):
        from repro.stream import MaintenanceReport

        policy = StalenessPolicy()
        policy.note_report(MaintenanceReport(
            action="incremental", rows_folded=10, rows_built=10,
            build_seconds=0.5, promote_seconds=0.0, epoch=1,
        ))
        assert policy.costs.extend_seconds_per_row == pytest.approx(0.05)
        assert policy.costs.build_seconds_per_row is None
        policy.note_report(MaintenanceReport(
            action="full", rows_folded=0, rows_built=100,
            build_seconds=2.0, promote_seconds=0.0, epoch=2,
        ))
        assert policy.costs.measured
        assert policy.costs.build_seconds_per_row == pytest.approx(0.02)

    def test_cost_model_ewma_blends(self):
        costs = CostModel()
        costs.note_extend(10, 1.0)  # 0.1 s/row
        costs.note_extend(10, 3.0)  # 0.3 s/row sample, alpha 0.3
        assert costs.extend_seconds_per_row == pytest.approx(0.16)
        assert costs.as_dict()["samples"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            StalenessPolicy(min_memtable_rows=0)
        with pytest.raises(ValueError):
            StalenessPolicy(min_tombstone_ratio=1.5)
        with pytest.raises(ValueError):
            StalenessPolicy(horizon_s=0.0)


# ======================================================================
# mutable index
# ======================================================================
class TestMutableIndex:
    def test_insert_is_immediately_findable(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        ids = index.insert(stream_pool[:3])
        assert ids.tolist() == [300, 301, 302]
        assert index.size == 303
        for row, ext in zip(stream_pool[:3], ids):
            result = index.search(row, k=1)
            assert int(result.indices[0, 0]) == int(ext)
            assert result.distances[0, 0] == pytest.approx(0.0, abs=1e-5)

    def test_delete_excludes_both_legs(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        ids = index.insert(stream_pool[:2])
        index.delete([5, int(ids[0])])  # one base row, one memtable row
        result = index.search(stream_base.dataset[5], k=20)
        flat = result.indices.ravel().tolist()
        assert 5 not in flat and int(ids[0]) not in flat

    def test_strict_delete_raises_on_unknown_or_dead(self, stream_base):
        index = MutableIndex(stream_base)
        with pytest.raises(KeyError):
            index.delete([99999])
        index.delete([7])
        with pytest.raises(KeyError):
            index.delete([7])
        assert index.delete([7], strict=False) == 0

    def test_insert_id_validation(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        with pytest.raises(ValueError, match="already exists"):
            index.insert(stream_pool[:1], ids=[5])
        with pytest.raises(ValueError, match="duplicate"):
            index.insert(stream_pool[:2], ids=[700, 700])
        with pytest.raises(ValueError, match="non-negative"):
            index.insert(stream_pool[:1], ids=[-1])
        with pytest.raises(ValueError, match="dim"):
            index.insert(np.zeros((1, 3), np.float32))

    def test_filter_mask_length_contract(self, stream_base, stream_pool):
        """The uniform contract: mask length == size, also after inserts."""
        index = MutableIndex(stream_base)
        q = stream_pool[:1]
        index.search(q, k=5, filter_mask=np.ones(index.size, dtype=bool))
        index.insert(stream_pool[:4])
        with pytest.raises(ValueError, match="one entry per dataset row"):
            index.search(q, k=5, filter_mask=np.ones(300, dtype=bool))
        index.search(q, k=5, filter_mask=np.ones(index.size, dtype=bool))
        with pytest.raises(ValueError, match="excludes every node"):
            index.search(q, k=5, filter_mask=np.zeros(index.size, dtype=bool))

    def test_filter_mask_restricts_results(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        ids = index.insert(stream_pool[:2])
        mask = np.zeros(index.size, dtype=bool)
        mask[[3, 4, int(ids[1])]] = True
        result = index.search(stream_pool[:1], k=5, filter_mask=mask)
        found = {int(i) for i in result.indices.ravel() if int(i) != MASK}
        assert found <= {3, 4, int(ids[1])}

    def test_recall_vs_live_oracle(self, stream_base, stream_pool, stream_queries):
        index = MutableIndex(stream_base)
        index.insert(stream_pool[:30])
        index.delete(list(range(0, 40, 2)) + [305, 310])
        oracle = BruteForceIndex(index.dataset, metric=index.metric)
        live = index.live_mask()
        truth = oracle.search(stream_queries, 10, filter_mask=live)
        got = index.search(stream_queries, k=10)
        assert recall_of(got.indices, truth.indices) >= 0.95
        # Result-contract hygiene: int32 ids, trailing-only padding.
        assert got.indices.dtype == np.int32

    def test_dataset_and_live_mask_agree(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        ids = index.insert(stream_pool[:3])
        index.delete([0, int(ids[1])])
        live = index.live_mask()
        assert live.shape == (index.size,)
        assert not live[0] and not live[int(ids[1])]
        assert live[int(ids[0])] and live[int(ids[2])]
        np.testing.assert_allclose(
            index.dataset[int(ids[2])], stream_pool[2], rtol=1e-6
        )

    def test_search_counters_and_stage_event(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        index.insert(stream_pool[:4])
        index.delete([1])
        events = []
        index.search(
            stream_pool[:2], k=5,
            on_stage=lambda name, s, c: events.append((name, c)),
        )
        names = [name for name, _ in events]
        assert "stream.search" in names
        counters = dict(events)["stream.search"]
        assert counters["algo"] == "stream"
        assert counters["memtable_rows"] == 4
        assert counters["tombstone_rows"] == 1

    def test_mutation_listener_fires_outside_lock(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        seen = []
        # Re-entering the index from the callback would deadlock if it
        # were invoked under the lock.
        index.set_mutation_listener(lambda: seen.append(index.size))
        index.insert(stream_pool[:1])
        index.delete([3])
        assert len(seen) == 2


class TestMaintenance:
    def test_repair_incremental_drains_and_preserves_ids(
        self, stream_base, stream_pool, stream_queries
    ):
        index = MutableIndex(stream_base)
        ids = index.insert(stream_pool[:10])
        index.delete([int(ids[4])])
        stages = []
        report = index.repair_incremental(
            on_stage=lambda name, s, c: stages.append(name)
        )
        assert report.action == "incremental"
        assert report.rows_folded == 10 and report.rows_built == 9
        assert "core.extend" in stages
        fresh = index.freshness()
        assert fresh.memtable_rows == 0
        assert fresh.base_rows == 309 and fresh.epoch == 1
        # The row deleted before the drain is simply not folded in —
        # no tombstone needed for it.
        assert fresh.tombstone_rows == 0 and fresh.live_rows == 309
        flat = index.search(stream_pool[4:5], k=10).indices.ravel().tolist()
        assert int(ids[4]) not in flat
        # Surviving inserts keep their external ids in the graph.
        result = index.search(stream_pool[7:8], k=1)
        assert int(result.indices[0, 0]) == int(ids[7])

    def test_rebuild_full_clears_tombstones(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        ids = index.insert(stream_pool[:6])
        index.delete(list(range(10)) + [int(ids[0])])
        report = index.rebuild_full()
        assert report.action == "full"
        fresh = index.freshness()
        assert fresh.tombstone_rows == 0 and fresh.memtable_rows == 0
        assert fresh.live_rows == 300 + 6 - 11
        flat = index.search(stream_base.dataset[0], k=20).indices.ravel().tolist()
        assert 0 not in flat
        result = index.search(stream_pool[3:4], k=1)
        assert int(result.indices[0, 0]) == int(ids[3])

    def test_promotion_epoch_visible_in_freshness(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        index.insert(stream_pool[:2])
        assert index.freshness().epoch == 0
        index.repair_incremental()
        assert index.freshness().epoch == 1
        index.rebuild_full()
        assert index.freshness().epoch == 2


class TestRebuilder:
    def test_run_once_respects_policy_none(self, stream_base):
        rebuilder = Rebuilder(MutableIndex(stream_base),
                              StalenessPolicy(min_memtable_rows=64))
        assert rebuilder.run_once() is None
        assert rebuilder.history() == []

    def test_run_once_feeds_measured_costs_back(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        policy = StalenessPolicy(min_memtable_rows=4)
        rebuilder = Rebuilder(index, policy)
        index.insert(stream_pool[:8])
        report = rebuilder.run_once()
        assert report is not None and report.action == "incremental"
        assert policy.costs.extend_seconds_per_row is not None
        decision, rep, latency = rebuilder.history()[0]
        assert decision.action == "incremental" and rep is report
        assert latency >= rep.promote_seconds

    def test_force_bypasses_policy(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        rebuilder = Rebuilder(index, StalenessPolicy(min_memtable_rows=512))
        index.insert(stream_pool[:2])
        report = rebuilder.run_once(force="full")
        assert report.action == "full"
        decision, _, _ = rebuilder.history()[0]
        assert decision is None  # forced: no policy evaluation
        with pytest.raises(ValueError):
            rebuilder.run_once(force="nonsense")

    def test_background_thread_promotes(self, stream_base, stream_pool):
        import time

        index = MutableIndex(stream_base)
        promoted = []
        rebuilder = Rebuilder(
            index, StalenessPolicy(min_memtable_rows=4),
            interval_s=0.05, promote=promoted.append,
        )
        with rebuilder:
            index.insert(stream_pool[:8])
            rebuilder.kick()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not rebuilder.history():
                time.sleep(0.02)
        assert rebuilder.errors() == []
        assert rebuilder.history() and promoted == [index]
        assert index.freshness().memtable_rows == 0


# ======================================================================
# WAL-backed restart + crash recovery (the acceptance crash test)
# ======================================================================
def _scripted_ops(pool: np.ndarray):
    """Deterministic op script shared by the crashing child, the replayed
    parent, and the never-crashed reference."""
    return [
        ("insert", [300, 301], pool[:2]),
        ("delete", [5], None),
        ("insert", [302], pool[2:3]),
        ("delete", [301], None),
        ("insert", [303, 304], pool[3:5]),  # seq 5: the crash point
        ("delete", [303], None),
    ]


def _apply_ops(index: MutableIndex, ops, upto: int) -> None:
    for op, ids, vectors in ops[:upto]:
        if op == "insert":
            index.insert(vectors, ids=ids)
        else:
            index.delete(ids)


def _crash_child(wal_dir: str, data_path: str) -> None:
    """Runs in a real child process: the crash fault does os._exit(87)."""
    data = np.load(data_path)
    core = CagraIndex.build(
        data[:300], GraphBuildConfig(graph_degree=12, seed=5)
    )
    plan = json.dumps([
        {"point": "stream.wal.append", "kind": "crash", "match": {"seq": 5}},
    ])
    index = MutableIndex(core, wal_dir=wal_dir, fault_plan=plan)
    _apply_ops(index, _scripted_ops(data[300:]), upto=len(_scripted_ops(data[300:])))
    os._exit(0)  # pragma: no cover — the fault fires before we get here


class TestWalRecovery:
    def test_reopen_matches_uncrashed_run(self, tmp_path, stream_base, stream_pool,
                                          stream_queries):
        wal_dir = str(tmp_path / "wal")
        index = MutableIndex(stream_base, wal_dir=wal_dir)
        ids = index.insert(stream_pool[:5])
        index.delete([3, int(ids[1])])
        reference = index.search(stream_queries, k=10)
        index.close()
        reopened = MutableIndex.open(wal_dir)
        got = reopened.search(stream_queries, k=10)
        np.testing.assert_array_equal(reference.indices, got.indices)
        np.testing.assert_array_equal(reference.distances, got.distances)
        assert reopened.freshness().wal_seq == index.freshness().wal_seq

    def test_reopen_after_promotion_uses_checkpoint(self, tmp_path, stream_base,
                                                    stream_pool, stream_queries):
        wal_dir = str(tmp_path / "wal")
        index = MutableIndex(stream_base, wal_dir=wal_dir)
        index.insert(stream_pool[:6])
        index.repair_incremental()  # promotion checkpoints the new base
        index.delete([2])  # post-checkpoint op: replayed from the log
        reference = index.search(stream_queries, k=10)
        index.close()
        reopened = MutableIndex.open(wal_dir)
        assert reopened.freshness().base_rows == 306
        got = reopened.search(stream_queries, k=10)
        np.testing.assert_array_equal(reference.indices, got.indices)
        np.testing.assert_array_equal(reference.distances, got.distances)

    def test_open_without_checkpoint_or_base_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no checkpoint"):
            MutableIndex.open(str(tmp_path / "empty"))

    def test_crash_mid_append_replays_durable_prefix(self, tmp_path, stream_data,
                                                     stream_queries):
        """A real ``os._exit(87)`` inside the stream.wal.append window:
        replay must reproduce the never-crashed run over the durable
        prefix bitwise — the torn op (and only it) is lost."""
        wal_dir = str(tmp_path / "wal")
        data_path = str(tmp_path / "data.npy")
        np.save(data_path, stream_data)
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_crash_child, args=(wal_dir, data_path))
        child.start()
        child.join(timeout=600)
        assert child.exitcode == 87  # CRASH_EXIT_CODE: died inside the window

        recovered = MutableIndex.open(wal_dir)
        # The op at seq 5 (insert 303/304) was torn: its segment exists
        # but its commit record does not, so replay drops it; ops 6+
        # never ran.
        replay = recovered.wal.replay()
        assert replay.orphan_segments == 1
        fresh = recovered.freshness()
        assert fresh.wal_seq == 4

        # Never-crashed twin applying exactly the durable prefix.
        core = CagraIndex.build(
            stream_data[:300], GraphBuildConfig(graph_degree=12, seed=5)
        )
        reference = MutableIndex(core)
        _apply_ops(reference, _scripted_ops(stream_data[300:]), upto=4)

        ref = reference.search(stream_queries, k=10)
        got = recovered.search(stream_queries, k=10)
        np.testing.assert_array_equal(ref.indices, got.indices)
        np.testing.assert_array_equal(ref.distances, got.distances)
        assert recovered.live_mask().tolist() == reference.live_mask().tolist()
        # Recovery is functional, not just equal: writes keep flowing and
        # the torn ids were never burned.
        new_ids = recovered.insert(stream_data[303:305], ids=[303, 304])
        assert new_ids.tolist() == [303, 304]


# ======================================================================
# filter_mask length contract across every adapter (satellite check)
# ======================================================================
class TestFilterMaskContractAcrossAdapters:
    KINDS = ("cagra", "hnsw", "ggnn", "ganns", "nssg", "bruteforce")

    @pytest.fixture(scope="class")
    def mask_data(self):
        return clustered_gaussian(140, 12, seed=3)

    @pytest.mark.parametrize("kind", KINDS)
    def test_short_mask_raises_value_error(self, kind, mask_data):
        ann = build_index(kind, mask_data, degree=8, seed=1)
        short = np.ones(mask_data.shape[0] - 1, dtype=bool)
        with pytest.raises(ValueError, match="one entry per dataset row"):
            ann.search(mask_data[:2], 5, filter_mask=short)

    def test_sharded_short_mask_raises(self, mask_data):
        from repro.core.sharding import ShardedCagraIndex

        sharded = ShardedCagraIndex.build(
            mask_data, 2, GraphBuildConfig(graph_degree=8, seed=1)
        )
        with pytest.raises(ValueError, match="one entry per dataset row"):
            sharded.search(
                mask_data[:2], 5,
                filter_mask=np.ones(mask_data.shape[0] - 1, dtype=bool),
            )

    def test_cagra_post_extend_requires_grown_mask(self, mask_data):
        """After ``extend`` the mask must cover the *new* size — the old
        length fails with the same clear message."""
        core = CagraIndex.build(mask_data[:120],
                                GraphBuildConfig(graph_degree=8, seed=1))
        grown = core.extend(mask_data[120:])
        with pytest.raises(ValueError, match="one entry per dataset row"):
            grown.search(mask_data[:2], 5, filter_mask=np.ones(120, dtype=bool))
        grown.search(mask_data[:2], 5,
                     filter_mask=np.ones(grown.size, dtype=bool))


# ======================================================================
# serving layer: writes, cache invalidation, freshness, auto-rebuild
# ======================================================================
class TestServerMutability:
    def test_static_index_rejects_writes(self, stream_base):
        with CagraServer(stream_base, ServeConfig(max_wait_ms=0.5)) as server:
            with pytest.raises(ServeError, match="not mutable"):
                server.insert(np.zeros((1, 16), np.float32))
            with pytest.raises(ServeError, match="not mutable"):
                server.delete([0])

    def test_insert_delete_and_cache_invalidation(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        config = ServeConfig(max_wait_ms=0.5, cache_capacity=32)
        with CagraServer(index, config) as server:
            query = stream_pool[0]
            first = server.search(query, k=5)
            assert server.search(query, k=5).from_cache
            assigned = server.insert(stream_pool[:1])
            after_insert = server.search(query, k=5)
            # The stale cached answer (without the new row) must not be
            # served: the mutation listener bumps the generation.
            assert not after_insert.from_cache
            assert int(after_insert.indices[0]) == int(assigned[0])
            server.delete([int(assigned[0])])
            after_delete = server.search(query, k=5)
            assert not after_delete.from_cache
            assert int(assigned[0]) not in after_delete.indices.tolist()
            assert first.indices.tolist() == after_delete.indices.tolist()
            stats = server.stats()
        assert stats.inserts == 1 and stats.insert_rows == 1
        assert stats.deletes == 1 and stats.delete_rows == 1
        assert stats.tombstone_ratio == pytest.approx(0.0)

    def test_freshness_gauges_in_stats(self, stream_base, stream_pool):
        index = MutableIndex(stream_base)
        with CagraServer(index, ServeConfig(max_wait_ms=0.5)) as server:
            server.insert(stream_pool[:7])
            server.delete([0, 1, 2])
            stats = server.stats()
        assert stats.memtable_rows == 7
        assert stats.tombstone_ratio == pytest.approx(3 / 300)
        assert "freshness" in stats.summary()

    def test_auto_rebuild_promotes_through_swap(self, stream_base, stream_pool):
        import time

        index = MutableIndex(stream_base)
        config = ServeConfig(
            max_wait_ms=0.5, auto_rebuild=True,
            rebuild_interval_s=0.05, rebuild_min_memtable_rows=4,
        )
        with CagraServer(index, config) as server:
            assert server.rebuilder is not None
            server.insert(stream_pool[:8])
            server.rebuilder.kick()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not server.rebuilder.history():
                time.sleep(0.02)
            assert server.rebuilder.errors() == []
            assert server.rebuilder.history()
            stats = server.stats()
            assert stats.rebuilds_incremental + stats.rebuilds_full >= 1
            assert stats.index_swaps >= 1
            assert stats.last_promotion_ms > 0.0
            assert index.freshness().memtable_rows == 0

    def test_static_index_gets_no_rebuilder(self, stream_base):
        config = ServeConfig(max_wait_ms=0.5, auto_rebuild=True)
        with CagraServer(stream_base, config) as server:
            assert server.rebuilder is None


# ======================================================================
# the acceptance integration test: 500+ deterministic mixed ops with
# mid-stream rebuild + promotion
# ======================================================================
class TestMixedStreamIntegration:
    TOTAL_OPS = 520
    RECALL_FLOOR = 0.95  # within 0.05 of the exact oracle

    def _oracle_recall(self, server, index, queries, k=10) -> float:
        oracle = BruteForceIndex(index.dataset, metric=index.metric)
        truth = oracle.search(queries, k, filter_mask=index.live_mask())
        served = np.stack([
            server.search(query, k=k).indices for query in queries
        ])
        return recall_of(served, truth.indices)

    def test_lifecycle_contract_over_500_ops(self, stream_base, stream_data,
                                             stream_queries):
        pool = stream_data[300:]
        index = MutableIndex(stream_base)
        config = ServeConfig(
            max_wait_ms=0.5, cache_capacity=64, default_k=10,
            auto_rebuild=True, rebuild_interval_s=60.0,  # we drive run_once
            rebuild_min_memtable_rows=8,
        )
        rng = np.random.default_rng(42)
        deleted: set[int] = set()
        live: list[int] = list(range(300))
        next_pool = 0
        promotions = 0

        with CagraServer(index, config) as server:
            rebuilder = server.rebuilder
            assert rebuilder is not None
            recalls = {"before": self._oracle_recall(index=index, server=server,
                                                     queries=stream_queries)}
            for op_number in range(self.TOTAL_OPS):
                u = float(rng.random())
                if u < 0.10 and next_pool < pool.shape[0]:
                    vector = pool[next_pool]
                    next_pool += 1
                    assigned = int(server.insert(vector[None, :])[0])
                    live.append(assigned)
                    # (b) every acked insert is rank-1 findable at once.
                    hit = server.search(vector, k=1)
                    assert int(hit.indices[0]) == assigned, (
                        f"op {op_number}: fresh insert {assigned} not rank-1"
                    )
                elif u < 0.18 and len(live) > 250:
                    victim = live.pop(int(rng.integers(0, len(live))))
                    server.delete([victim])
                    deleted.add(victim)
                else:
                    query = stream_queries[op_number % stream_queries.shape[0]]
                    result = server.search(query, k=10)
                    found = {int(i) for i in result.indices if int(i) != MASK}
                    # (a) no deleted id in any result after its acked delete.
                    assert not (found & deleted), (
                        f"op {op_number}: deleted ids {found & deleted} served"
                    )
                # Mid-stream maintenance with atomic promotion while the
                # same server keeps answering.
                if op_number == 200:
                    report = rebuilder.run_once(force="incremental")
                    assert report is not None and report.epoch == 1
                    promotions += 1
                    recalls["during"] = self._oracle_recall(
                        index=index, server=server, queries=stream_queries
                    )
                elif op_number == 380:
                    report = rebuilder.run_once(force="full")
                    assert report is not None and report.epoch == 2
                    promotions += 1

            recalls["after"] = self._oracle_recall(
                index=index, server=server, queries=stream_queries
            )
            stats = server.stats()

        ops = stats.completed + stats.inserts + stats.deletes
        assert ops >= self.TOTAL_OPS
        assert promotions == 2 and stats.index_swaps >= 2
        assert index.freshness().epoch == 2
        # (c) recall stays within 0.05 of the live-row oracle throughout.
        for phase, measured in recalls.items():
            assert measured >= self.RECALL_FLOOR, (phase, measured, recalls)
        # Post-run cross-check: nothing deleted is searchable anywhere.
        final_live = index.live_mask()
        assert not any(final_live[d] for d in deleted)

    def test_mixed_loadgen_is_seed_deterministic(self, stream_base, stream_pool,
                                                 stream_queries):
        def run(seed):
            index = MutableIndex(stream_base)
            with CagraServer(index, ServeConfig(max_wait_ms=0.5)) as server:
                report = run_mixed_closed_loop(
                    server, stream_queries, stream_pool,
                    num_clients=2, ops_per_client=40,
                    write_fraction=0.4, seed=seed,
                )
            return report

        first, second = run(9), run(9)
        assert first.failures == 0
        # Per-client op streams are a pure function of (seed, client).
        assert first.inserts == second.inserts
        assert first.deletes == second.deletes
        assert sorted(first.inserted_ids) == sorted(second.inserted_ids)
