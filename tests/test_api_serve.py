"""CagraServer over baseline AnnIndex backends (the protocol refactor).

The serving layer must be backend-agnostic: serving an HNSW or NSSG
index through micro-batching answers bitwise identically to calling the
adapter's ``search()`` directly, the result cache and hot swap work over
baselines, and an index can be swapped for a *different kind* mid-traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.api import as_ann_index, build_index
from repro.serve import CagraServer, ServeConfig


@pytest.fixture(scope="module")
def serve_data() -> np.ndarray:
    rng = np.random.default_rng(31)
    return rng.standard_normal((350, 20)).astype(np.float32)


@pytest.fixture(scope="module")
def serve_queries(serve_data) -> np.ndarray:
    rng = np.random.default_rng(32)
    return (serve_data[:16] + 0.05 * rng.standard_normal((16, 20))).astype(
        np.float32
    )


def _serve_all(index, queries, k, **config_overrides):
    """Serve every query one request at a time; returns stacked results."""
    defaults = dict(max_batch=4, max_wait_ms=1.0, cache_capacity=0)
    defaults.update(config_overrides)
    ids, dists = [], []
    with CagraServer(
        index, ServeConfig(**defaults), search_config=SearchConfig(itopk=32)
    ) as server:
        handles = [server.submit(q, k=k) for q in queries]
        for handle in handles:
            result = handle.result()
            ids.append(result.indices)
            dists.append(result.distances)
    return np.stack(ids), np.stack(dists)


class TestBaselineParity:
    """Served results == direct adapter results, bitwise."""

    @pytest.mark.parametrize("kind", ["hnsw", "nssg"])
    def test_served_matches_direct(self, serve_data, serve_queries, kind):
        ann = build_index(kind, serve_data, degree=8, seed=0)
        direct = ann.search(serve_queries, 5, config=SearchConfig(itopk=32))
        served_ids, served_dists = _serve_all(ann.inner, serve_queries, 5)
        np.testing.assert_array_equal(served_ids, direct.indices)
        np.testing.assert_array_equal(served_dists, direct.distances)

    def test_served_matches_direct_cagra_fast(self, serve_data, serve_queries):
        """CAGRA coalesced batches still hit the fast path bitwise."""
        index = CagraIndex.build(
            serve_data, GraphBuildConfig(graph_degree=8, seed=0)
        )
        direct = as_ann_index(index).search(
            serve_queries[:1], 5, config=SearchConfig(itopk=32), mode="auto"
        )
        served_ids, served_dists = _serve_all(index, serve_queries[:1], 5)
        np.testing.assert_array_equal(served_ids, direct.indices)
        np.testing.assert_array_equal(served_dists, direct.distances)


class TestBaselineServingFeatures:
    def test_cache_hit_on_baseline(self, serve_data, serve_queries):
        ann = build_index("hnsw", serve_data, degree=8, seed=0)
        with CagraServer(
            ann, ServeConfig(max_batch=4, max_wait_ms=1.0, cache_capacity=64),
            search_config=SearchConfig(itopk=32),
        ) as server:
            first = server.search(serve_queries[0], k=5)
            second = server.search(serve_queries[0], k=5)
            assert not first.from_cache
            assert second.from_cache
            np.testing.assert_array_equal(first.indices, second.indices)
            assert server.stats().cache_hits == 1

    def test_hot_swap_invalidates_cache(self, serve_data, serve_queries):
        hnsw = build_index("hnsw", serve_data, degree=8, seed=0)
        with CagraServer(
            hnsw, ServeConfig(max_batch=4, max_wait_ms=1.0, cache_capacity=64),
            search_config=SearchConfig(itopk=32),
        ) as server:
            server.search(serve_queries[0], k=5)
            server.swap_index(build_index("hnsw", serve_data, degree=10, seed=1))
            after = server.search(serve_queries[0], k=5)
            assert not after.from_cache  # generation bump: no stale result
            assert server.stats().index_swaps == 1

    def test_mid_traffic_swap_cagra_to_hnsw(self, serve_data, serve_queries):
        """Swap to a different index *kind* without dropping traffic."""
        cagra = CagraIndex.build(
            serve_data, GraphBuildConfig(graph_degree=8, seed=0)
        )
        hnsw = build_index("hnsw", serve_data, degree=8, seed=0)
        with CagraServer(
            cagra, ServeConfig(max_batch=4, max_wait_ms=1.0, cache_capacity=0),
            search_config=SearchConfig(itopk=32),
        ) as server:
            before = [server.submit(q, k=5) for q in serve_queries[:8]]
            server.swap_index(hnsw)
            assert server.ann_index.kind == "hnsw"
            assert server.index is hnsw.inner
            after = [server.submit(q, k=5) for q in serve_queries[8:]]
            results = [h.result() for h in before + after]
        assert len(results) == len(serve_queries)
        assert all(np.isfinite(r.distances).all() for r in results)
        # Post-swap answers match the HNSW adapter directly.
        direct = hnsw.search(serve_queries[8:], 5, config=SearchConfig(itopk=32))
        np.testing.assert_array_equal(
            np.stack([r.indices for r in results[8:]]), direct.indices
        )

    def test_swap_dim_mismatch_rejected(self, serve_data):
        hnsw = build_index("hnsw", serve_data, degree=8, seed=0)
        other = np.random.default_rng(0).standard_normal((50, 8)).astype(np.float32)
        with CagraServer(hnsw, ServeConfig(max_batch=2)) as server:
            with pytest.raises(ValueError, match="dim"):
                server.swap_index(build_index("bruteforce", other))

    def test_serve_batch_stage_events(self, serve_data, serve_queries):
        from repro.api import StageRecorder

        recorder = StageRecorder()
        ann = build_index("hnsw", serve_data, degree=8, seed=0)
        with CagraServer(
            ann, ServeConfig(max_batch=4, max_wait_ms=1.0, cache_capacity=0),
            search_config=SearchConfig(itopk=32),
            on_stage=recorder.on_stage,
        ) as server:
            for q in serve_queries[:4]:
                server.search(q, k=5)
        names = {e.name for e in recorder.events}
        assert "serve.batch" in names
        assert "baseline.hnsw.search" in names
