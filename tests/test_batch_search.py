"""Tests for the vectorized lockstep batch search (fast path)."""

import numpy as np
import pytest

from repro import SearchConfig
from repro.core.graph import INDEX_MASK, PARENT_FLAG
from repro.core.metrics import recall
from repro.core.traversal import _merge_rows, search_batch_fast  # noqa: F401


class TestMergeRows:
    def test_basic(self):
        topm = np.array([[1, 2]], dtype=np.uint32)
        topm_d = np.array([[1.0, 3.0]])
        cand = np.array([[3]], dtype=np.uint32)
        cand_d = np.array([[2.0]])
        ids, dists = _merge_rows(topm, topm_d, cand, cand_d, 3)
        np.testing.assert_array_equal(ids, [[1, 3, 2]])
        np.testing.assert_allclose(dists, [[1.0, 2.0, 3.0]])

    def test_parented_copy_wins(self):
        flagged = np.uint32(7) | PARENT_FLAG
        topm = np.array([[flagged]], dtype=np.uint32)
        topm_d = np.array([[1.5]])
        cand = np.array([[7]], dtype=np.uint32)
        cand_d = np.array([[1.5]])
        ids, _ = _merge_rows(topm, topm_d, cand, cand_d, 2)
        assert ids[0, 0] == flagged
        assert ids[0, 1] == INDEX_MASK

    def test_matches_scalar_merge_topm(self):
        from repro.core.topm import merge_topm

        rng = np.random.default_rng(0)
        for _ in range(10):
            topm_ids = rng.choice(100, size=8, replace=False).astype(np.uint32)
            topm_d = np.sort(rng.random(8))
            cand_ids = rng.choice(100, size=12, replace=True).astype(np.uint32)
            cand_d = rng.random(12)
            ref_ids, ref_d = merge_topm(topm_ids, topm_d, cand_ids, cand_d, 8)
            fast_ids, fast_d = _merge_rows(
                topm_ids[None], topm_d[None], cand_ids[None], cand_d[None], 8
            )
            np.testing.assert_allclose(fast_d[0], ref_d)
            finite = np.isfinite(ref_d)
            np.testing.assert_array_equal(fast_ids[0][finite], ref_ids[finite])

    def test_rows_independent(self):
        rng = np.random.default_rng(1)
        topm = rng.choice(50, size=(3, 4), replace=True).astype(np.uint32)
        topm_d = np.sort(rng.random((3, 4)), axis=1)
        cand = rng.choice(50, size=(3, 6), replace=True).astype(np.uint32)
        cand_d = rng.random((3, 6))
        ids_all, d_all = _merge_rows(topm, topm_d, cand, cand_d, 4)
        for row in range(3):
            ids_one, d_one = _merge_rows(
                topm[row : row + 1], topm_d[row : row + 1],
                cand[row : row + 1], cand_d[row : row + 1], 4,
            )
            np.testing.assert_allclose(d_all[row], d_one[0])


class TestSearchBatchFast:
    def test_recall_matches_reference(self, small_index, small_queries, small_truth):
        config = SearchConfig(itopk=64, algo="single_cta")
        ref = small_index.search(small_queries, 10, config)
        fast = small_index.search_fast(small_queries, 10, config)
        ref_recall = recall(ref.indices, small_truth)
        fast_recall = recall(fast.indices, small_truth)
        assert fast_recall >= ref_recall - 0.05

    def test_contract_properties(self, small_index, small_queries):
        result = small_index.search_fast(small_queries, 10, SearchConfig(itopk=32))
        assert result.indices.shape == (len(small_queries), 10)
        assert (result.indices <= INDEX_MASK).all()
        finite = np.isfinite(result.distances)
        for row, mask in zip(result.distances, finite):
            assert (np.diff(row[mask]) >= 0).all()
        for row in result.indices:
            assert len(set(row.tolist())) == len(row)

    def test_distances_are_true(self, small_index, small_queries):
        from repro.core.distances import distances_to_query

        result = small_index.search_fast(small_queries[:5], 5, SearchConfig(itopk=32))
        for i in range(5):
            ref = distances_to_query(
                small_index.dataset, small_queries[i], result.indices[i]
            )
            np.testing.assert_allclose(result.distances[i], ref, rtol=1e-3, atol=1e-3)

    def test_deterministic(self, small_index, small_queries):
        config = SearchConfig(itopk=32, seed=7)
        a = small_index.search_fast(small_queries, 5, config)
        b = small_index.search_fast(small_queries, 5, config)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_same_init_as_reference(self, small_index, small_queries):
        """Fast and reference paths draw identical per-query seed nodes."""
        config = SearchConfig(itopk=16, max_iterations=1, seed=5)
        fast = small_index.search_fast(small_queries[:3], 5, config)
        ref = small_index.search(
            small_queries[:3], 5, config.with_overrides(algo="single_cta")
        )
        # After one iteration both have merged exactly the init candidates.
        np.testing.assert_array_equal(fast.indices[:, 0], ref.indices[:, 0])

    def test_counters_populate(self, small_index, small_queries):
        result = small_index.search_fast(small_queries, 10, SearchConfig(itopk=32))
        report = result.report
        assert report.distance_computations > 0
        assert report.candidate_gathers > 0
        assert report.iterations > 0
        assert report.batch_size == len(small_queries)

    def test_filter_mask(self, small_index, small_queries):
        mask = np.zeros(small_index.size, dtype=bool)
        mask[::2] = True
        result = small_index.search_fast(
            small_queries, 5, SearchConfig(itopk=64), filter_mask=mask
        )
        assert (result.indices % 2 == 0).all()

    def test_filter_validation(self, small_index, small_queries):
        with pytest.raises(ValueError, match="one entry per dataset row"):
            small_index.search_fast(
                small_queries, 5, filter_mask=np.ones(3, dtype=bool)
            )

    def test_search_width_supported(self, small_index, small_queries, small_truth):
        result = small_index.search_fast(
            small_queries, 10, SearchConfig(itopk=64, search_width=2)
        )
        assert recall(result.indices, small_truth) > 0.9

    def test_faster_than_reference(self, small_index, small_queries):
        import time

        config = SearchConfig(itopk=64, algo="single_cta")
        started = time.perf_counter()
        small_index.search(small_queries, 10, config)
        ref_time = time.perf_counter() - started
        started = time.perf_counter()
        small_index.search_fast(small_queries, 10, config)
        fast_time = time.perf_counter() - started
        assert fast_time < ref_time

    def test_k_validation(self, small_index, small_queries):
        with pytest.raises(ValueError, match="k must be"):
            small_index.search_fast(small_queries, 0)


class TestChunking:
    def test_chunked_equals_unchunked(self, small_index, small_queries, monkeypatch):
        """Forcing a tiny visited-table budget must not change results:
        per-query RNG streams are offset by chunk position."""
        from repro.core import traversal

        config = SearchConfig(itopk=32, seed=3)
        whole = small_index.search_fast(small_queries, 5, config)
        monkeypatch.setattr(
            traversal, "_VISITED_BUDGET_BYTES", small_index.size * 7
        )
        chunked = small_index.search_fast(small_queries, 5, config)
        np.testing.assert_array_equal(whole.indices, chunked.indices)
        np.testing.assert_allclose(whole.distances, chunked.distances)

    def test_chunked_counters_aggregate(self, small_index, small_queries, monkeypatch):
        from repro.core import traversal

        config = SearchConfig(itopk=32, seed=3)
        whole = small_index.search_fast(small_queries, 5, config)
        monkeypatch.setattr(
            traversal, "_VISITED_BUDGET_BYTES", small_index.size * 7
        )
        chunked = small_index.search_fast(small_queries, 5, config)
        assert chunked.report.batch_size == len(small_queries)
        assert chunked.report.distance_computations == whole.report.distance_computations


#: Counters the fast path must reproduce exactly (``hash_probes`` is the
#: one documented modeling difference: the fast path's boolean visited
#: table charges a flat two probes per lookup, while the reference
#: measures real open-addressing probe sequences).
PARITY_COUNTERS = (
    "batch_size",
    "cta_count",
    "iterations",
    "distance_computations",
    "skipped_distance_computations",
    "recomputed_distances",
    "candidate_gathers",
    "sort_comparator_ops",
    "radix_sorted_elements",
    "serial_queue_ops",
    "hash_lookups",
    "hash_insertions",
    "hash_resets",
    "random_inits",
)


def _duplicate_heavy_fixture():
    """A tiny index whose adjacency lists repeat every neighbor.

    Each gather therefore produces intra-gather duplicate candidates on
    every iteration (and random init collides often on 40 nodes) — the
    regression case where the fast path used to overcount: the reference
    hash admits one insertion per *distinct* fresh id per gather, so a
    duplicated id must be counted (and its distance computed) once.
    """
    from repro import CagraIndex
    from repro.core.graph import FixedDegreeGraph

    rng = np.random.default_rng(42)
    n, dim = 40, 8
    data = rng.standard_normal((n, dim)).astype(np.float32)
    base = np.stack(
        [(np.arange(n) + step) % n for step in (1, 2, 3)], axis=1
    )
    neighbors = np.repeat(base, 2, axis=1).astype(np.uint32)  # degree 6, all dup'd
    return CagraIndex(data, FixedDegreeGraph(neighbors)), rng.standard_normal(
        (8, dim)
    ).astype(np.float32)


class TestCounterParity:
    """Fast-path counters must match the reference exactly (same hash
    semantics: a standard table large enough never to recompute)."""

    @staticmethod
    def _configs(itopk, seed=0, search_width=1):
        from repro import HashTableConfig

        table = HashTableConfig(kind="standard", log2_size=16)
        fast = SearchConfig(itopk=itopk, seed=seed, search_width=search_width,
                            hash_table=table)
        ref = fast.with_overrides(algo="single_cta")
        return fast, ref

    def _assert_parity(self, index, queries, k, fast_config, ref_config):
        fast = index.search_fast(queries, k, fast_config)
        ref = index.search(queries, k, ref_config)
        np.testing.assert_array_equal(fast.indices, ref.indices)
        fast_counters = fast.report.as_dict()
        ref_counters = ref.report.as_dict()
        for name in PARITY_COUNTERS:
            assert fast_counters[name] == ref_counters[name], (
                f"{name}: fast={fast_counters[name]} ref={ref_counters[name]}"
            )

    def test_duplicate_candidate_regression(self):
        index, queries = _duplicate_heavy_fixture()
        fast_config, ref_config = self._configs(itopk=16, seed=3)
        self._assert_parity(index, queries, 5, fast_config, ref_config)

    def test_duplicate_regression_wider_search(self):
        index, queries = _duplicate_heavy_fixture()
        fast_config, ref_config = self._configs(itopk=16, seed=7, search_width=2)
        self._assert_parity(index, queries, 5, fast_config, ref_config)

    def test_parity_on_real_index(self, small_index, small_queries):
        fast_config, ref_config = self._configs(itopk=64)
        self._assert_parity(
            small_index, small_queries[:10], 10, fast_config, ref_config
        )


class TestChunkReportIntegrity:
    def test_chunk_totals_are_exact(self, small_index, small_queries, monkeypatch):
        """The engine accumulates all chunks into one report; chunking must
        split the work without perturbing a single counter (the historical
        bug class was an aliased chunk-0 accumulator)."""
        from repro.core import traversal

        config = SearchConfig(itopk=32, seed=3)
        whole = small_index.search_fast(small_queries, 5, config).report

        monkeypatch.setattr(
            traversal, "_VISITED_BUDGET_BYTES", small_index.size * 7
        )
        calls = []
        original = traversal.TraversalEngine._fast_block

        def recording(self, queries, *args, **kwargs):
            calls.append(queries.shape[0])
            return original(self, queries, *args, **kwargs)

        monkeypatch.setattr(traversal.TraversalEngine, "_fast_block", recording)
        total = small_index.search_fast(small_queries, 5, config).report
        assert len(calls) > 1
        assert sum(calls) == len(small_queries)
        assert total.batch_size == len(small_queries)
        assert total.as_dict() == whole.as_dict()


class TestRandomInitBlock:
    """The vectorized RNG init must be bit-identical to per-query
    ``default_rng([seed, q])`` draws (the regression fixture pins them)."""

    CASES = (
        (0, 0, 7, 1000, 32),
        (7, 3, 11, 300, 64),       # nonzero seed offset (chunked batches)
        (123456789, 0, 5, 2**31 - 1, 48),
        (2**40 + 5, 10, 6, 999983, 96),  # multi-word entropy pool seed
        (42, 0, 4, 2, 33),         # tiny range, odd width
        (42, 0, 4, 2**32 - 1, 16),  # near-full 32-bit range
    )

    def test_matches_per_query_generator(self):
        from repro.core.rng_init import random_init_block

        for seed, offset, batch, n, width in self.CASES:
            expected = np.empty((batch, width), dtype=np.uint32)
            for i in range(batch):
                rng = np.random.default_rng([seed, offset + i])
                expected[i] = rng.integers(0, n, size=width, dtype=np.uint32)
            got = random_init_block(seed, offset, batch, n, width)
            np.testing.assert_array_equal(got, expected, err_msg=str(
                (seed, offset, batch, n, width)))

    def test_single_node_short_circuit(self):
        from repro.core.rng_init import random_init_block

        np.testing.assert_array_equal(
            random_init_block(5, 0, 3, 1, 8), np.zeros((3, 8), dtype=np.uint32)
        )

    def test_out_of_envelope_falls_back(self):
        from repro.core.rng_init import _reference_init_block, random_init_block

        # n = 2**32 exceeds the 32-bit Lemire envelope but is a valid
        # numpy bound; the reference loop must take over transparently.
        np.testing.assert_array_equal(
            random_init_block(0, 0, 3, 2**32, 8),
            _reference_init_block(0, 0, 3, 2**32, 8),
        )

    def test_empty_shapes(self):
        from repro.core.rng_init import random_init_block

        assert random_init_block(0, 0, 0, 10, 4).shape == (0, 4)
