"""Failure-injection and adversarial-input tests.

A production library must degrade predictably on hostile inputs: NaN
rows, duplicate points, adversarial graph topologies, zero vectors under
cosine, non-contiguous arrays, and wrong dtypes.
"""

import numpy as np
import pytest

from repro import CagraIndex, FixedDegreeGraph, GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.core.search import search_batch


class TestHostileData:
    def test_duplicate_points(self):
        """Many exact duplicates must not break the build or the search."""
        rng = np.random.default_rng(0)
        base = rng.standard_normal((100, 8)).astype(np.float32)
        data = np.vstack([base, base, base])  # every point x3
        index = CagraIndex.build(data, GraphBuildConfig(graph_degree=8))
        result = index.search(base[:10], 3, SearchConfig(itopk=16))
        assert np.isfinite(result.distances[:, 0]).all()
        assert (result.distances[:, 0] < 1e-3).all()  # finds a duplicate

    def test_zero_vectors_cosine(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((200, 8)).astype(np.float32)
        data[17] = 0.0
        data[93] = 0.0
        index = CagraIndex.build(
            data, GraphBuildConfig(graph_degree=8, metric="cosine")
        )
        result = index.search(data[:5], 3, SearchConfig(itopk=16))
        assert result.indices.shape == (5, 3)

    def test_constant_dataset(self):
        """All-identical points: distances are all zero; search still
        returns k distinct ids."""
        data = np.ones((50, 6), dtype=np.float32)
        index = CagraIndex.build(data, GraphBuildConfig(graph_degree=4))
        result = index.search(data[:3], 4, SearchConfig(itopk=8))
        for row in result.indices:
            assert len(set(row.tolist())) == 4

    def test_float64_input_accepted(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((150, 8))  # float64
        index = CagraIndex.build(data, GraphBuildConfig(graph_degree=8))
        assert index.dataset.dtype == np.float32  # storage-normalized

    def test_non_contiguous_input(self):
        rng = np.random.default_rng(3)
        wide = rng.standard_normal((200, 16)).astype(np.float32)
        data = wide[:, ::2]  # stride-2 view
        index = CagraIndex.build(data, GraphBuildConfig(graph_degree=8))
        result = index.search(np.ascontiguousarray(data[:4]), 3, SearchConfig(itopk=16))
        assert result.indices.shape == (4, 3)

    def test_huge_magnitude_values(self):
        rng = np.random.default_rng(4)
        data = (rng.standard_normal((150, 8)) * 1e18).astype(np.float32)
        index = CagraIndex.build(data, GraphBuildConfig(graph_degree=8))
        result = index.search(data[:4], 3, SearchConfig(itopk=16))
        assert result.indices.shape == (4, 3)


class TestAdversarialGraphs:
    def test_star_graph_search_terminates(self, small_data):
        """Every node points at the same d hubs: the search must converge
        quickly instead of looping."""
        n = len(small_data)
        hubs = np.arange(8, dtype=np.uint32)
        neighbors = np.tile(hubs, (n, 1))
        graph = FixedDegreeGraph(neighbors)
        result = search_batch(
            small_data, graph, small_data[:5], 4, SearchConfig(itopk=16, max_iterations=64)
        )
        assert result.indices.shape == (5, 4)
        # Few distinct reachable nodes: iterations stay near the minimum.
        assert result.report.iterations < 5 * 64

    def test_self_referential_rows_tolerated_by_search(self, small_data):
        """A corrupt graph whose rows contain the node itself must not
        produce self-free guarantees, but must terminate and not crash."""
        n = len(small_data)
        neighbors = np.tile(np.arange(4, dtype=np.uint32), (n, 1))
        neighbors[:, 0] = np.arange(n, dtype=np.uint32)  # self-loop column
        graph = FixedDegreeGraph(neighbors)
        result = search_batch(
            small_data, graph, small_data[:3], 2, SearchConfig(itopk=8, max_iterations=32)
        )
        assert result.indices.shape == (3, 2)

    def test_ring_graph_low_recall_but_valid(self, small_data, small_queries):
        """A ring graph is connected but unnavigable: recall may be poor,
        output contracts must still hold."""
        n = len(small_data)
        neighbors = np.stack(
            [(np.arange(n) + 1) % n, (np.arange(n) + 2) % n], axis=1
        ).astype(np.uint32)
        graph = FixedDegreeGraph(neighbors)
        result = search_batch(
            small_data, graph, small_queries[:5], 5,
            SearchConfig(itopk=16, max_iterations=32),
        )
        finite = np.isfinite(result.distances)
        for row, mask in zip(result.distances, finite):
            assert (np.diff(row[mask]) >= 0).all()


class TestQueryEdgeCases:
    def test_query_equals_dataset_row(self, small_index, small_data):
        result = small_index.search(small_data[42], 1, SearchConfig(itopk=32))
        assert result.indices[0, 0] == 42 or result.distances[0, 0] < 1e-4

    def test_far_away_query(self, small_index):
        query = np.full(small_index.dim, 1e6, dtype=np.float32)
        result = small_index.search(query, 5, SearchConfig(itopk=32))
        assert np.isfinite(result.distances).all()

    def test_k_equals_itopk(self, small_index, small_queries, small_truth):
        result = small_index.search(small_queries, 10, SearchConfig(itopk=10))
        assert recall(result.indices, small_truth) > 0.5

    def test_many_queries_shape(self, small_index, small_data):
        result = small_index.search(small_data[:200], 1, SearchConfig(itopk=16))
        assert result.indices.shape == (200, 1)


class TestSerializationRobustness:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CagraIndex.load(str(tmp_path / "nope.npz"))

    def test_load_wrong_archive(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(KeyError):
            CagraIndex.load(path)

    def test_tampered_graph_rejected(self, small_index, tmp_path):
        """A graph with out-of-range neighbor ids must fail validation on
        load, not corrupt searches later."""
        path = str(tmp_path / "tampered.npz")
        bad = small_index.graph.neighbors.copy()
        bad[0, 0] = 2**31 - 2  # far beyond num_nodes
        np.savez(
            path,
            dataset=small_index.dataset,
            neighbors=bad,
            metric=np.array("sqeuclidean"),
        )
        with pytest.raises(ValueError, match="out of range"):
            CagraIndex.load(path)
