"""repro.resilience: fault injection, retry/backoff, breakers, degradation.

Covers the failure-handling contract end to end (``docs/resilience.md``):

* the :class:`FaultPlan` / :class:`FaultInjector` chaos harness itself
  (JSON round trips, context matching, hit counting, every fault kind);
* :class:`RetryPolicy` seeded backoff determinism and the executor's
  retry / watchdog / pool-recycle machinery, including a real mid-map
  worker death (``os._exit``) on the process backend;
* :class:`CircuitBreaker` closed → open → half-open → closed cycling on
  an injected clock (no sleeping);
* graceful degradation of :class:`ShardedCagraIndex` — partial merges,
  quorum boundaries, and bitwise-identical degraded results across the
  serial/thread/process backends under the same seeded fault plan;
* :class:`CagraServer` batch bisection, per-shard breakers, ``health()``,
  and the ``serve.execute`` fault point;
* the CLI resilience surface (``--fault-plan``, ``--on-shard-failure``,
  ``--min-quorum``, degraded JSON output, the ``index.load`` point).
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.cli import build_parser, main
from repro.serve import CagraServer, ServeConfig
from repro.core.graph import INDEX_MASK
from repro.core.metrics import recall as recall_of
from repro.core.sharding import ShardQuorumError, ShardedCagraIndex
from repro.datasets import write_fvecs
from repro.parallel import ParallelConfig, ShardExecutor
from repro.resilience import (
    CircuitBreaker,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TaskTimeout,
    WorkerCrash,
    resolve_fault_plan,
)


def _plan(*specs) -> str:
    """JSON for a list of spec dicts (what configs and the CLI carry)."""
    return json.dumps(list(specs))


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan / resolve_fault_plan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec(point="nope")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="shard.search", kind="explode")
        with pytest.raises(ValueError, match="delay_ms"):
            FaultSpec(point="shard.search", kind="delay", delay_ms=-1)
        with pytest.raises(ValueError, match="attempt"):
            FaultSpec(point="shard.search", attempt=-1)

    def test_json_round_trip(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="shard.search", kind="crash", match={"shard": 3}),
            FaultSpec(point="serve.execute", kind="delay",
                      delay_ms=5.0, after=2, times=1),
        ))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_bare_list_shorthand(self):
        plan = FaultPlan.from_json(_plan({"point": "shard.build"}))
        assert plan.specs[0].point == "shard.build"
        assert plan.specs[0].kind == "raise"  # default

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec field"):
            FaultPlan.from_json(_plan({"point": "shard.build", "sharrd": 1}))
        with pytest.raises(ValueError, match="specs"):
            FaultPlan.from_json('{"plans": []}')

    def test_match_semantics(self):
        spec = FaultSpec(point="shard.search", match={"shard": 3})
        assert spec.matches({"shard": 3, "op": "search"})
        assert not spec.matches({"shard": 2})
        assert not spec.matches({})  # missing key != wanted value
        transient = FaultSpec(point="shard.search", attempt=0)
        assert transient.matches({"attempt": 0})
        assert not transient.matches({"attempt": 1})

    def test_resolve_empty_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert resolve_fault_plan("") is None

    def test_resolve_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", _plan({"point": "pool.spawn"})
        )
        plan = resolve_fault_plan(_plan({"point": "index.load"}))
        assert plan.specs[0].point == "index.load"
        assert resolve_fault_plan("").specs[0].point == "pool.spawn"

    def test_resolve_at_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(_plan({"point": "shard.search", "kind": "corrupt"}))
        plan = resolve_fault_plan(f"@{path}")
        assert plan.specs[0].kind == "corrupt"


class TestFaultInjector:
    def test_raise_kind(self):
        injector = FaultInjector.from_json(_plan({"point": "serve.execute"}))
        with pytest.raises(FaultInjected):
            injector.fire("serve.execute")
        assert injector.fire("index.load") is None  # other points untouched

    def test_crash_kind_degrades_to_worker_crash_in_parent(self):
        # In the parent process there is no worker to os._exit; the crash
        # degrades to WorkerCrash so every backend sees "shard failed".
        injector = FaultInjector.from_json(
            _plan({"point": "shard.search", "kind": "crash"})
        )
        with pytest.raises(WorkerCrash):
            injector.fire("shard.search", shard=0)

    def test_delay_kind_sleeps_then_continues(self):
        injector = FaultInjector.from_json(
            _plan({"point": "shard.search", "kind": "delay", "delay_ms": 30})
        )
        started = time.perf_counter()
        assert injector.fire("shard.search") is None
        assert time.perf_counter() - started >= 0.025

    def test_corrupt_kind_returned_to_caller(self):
        injector = FaultInjector.from_json(
            _plan({"point": "shard.search", "kind": "corrupt"})
        )
        spec = injector.fire("shard.search")
        assert spec is not None and spec.kind == "corrupt"

    def test_after_and_times_counting(self):
        injector = FaultInjector.from_json(
            _plan({"point": "serve.execute", "after": 1, "times": 2})
        )
        fired = []
        for _ in range(5):
            try:
                injector.fire("serve.execute")
                fired.append(False)
            except FaultInjected:
                fired.append(True)
        # Skips the first hit, fires twice, then is exhausted.
        assert fired == [False, True, True, False, False]

    def test_first_match_wins(self):
        injector = FaultInjector.from_json(_plan(
            {"point": "shard.search", "kind": "corrupt", "match": {"shard": 1}},
            {"point": "shard.search", "kind": "raise"},
        ))
        assert injector.fire("shard.search", shard=1).kind == "corrupt"
        with pytest.raises(FaultInjected):
            injector.fire("shard.search", shard=0)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_ms=100.0, backoff_max_ms=50.0)

    def test_backoff_deterministic_and_seeded(self):
        policy = RetryPolicy(backoff_base_ms=10.0, seed=5)
        assert policy.backoff_seconds(2, 1) == policy.backoff_seconds(2, 1)
        assert policy.backoff_seconds(2, 1) != policy.backoff_seconds(3, 1)
        assert (
            RetryPolicy(seed=6).backoff_seconds(2, 1)
            != policy.backoff_seconds(2, 1)
        )

    def test_backoff_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_ms=10.0, backoff_max_ms=40.0)
        for attempt, cap_ms in [(0, 10.0), (1, 20.0), (2, 40.0), (5, 40.0)]:
            seconds = policy.backoff_seconds(0, attempt)
            # jitter keeps each delay in [cap/2, cap)
            assert cap_ms / 2e3 <= seconds < cap_ms / 1e3

    def test_backoff_truncated_to_deadline_budget(self):
        """Regression: backoff must never sleep past the request deadline."""
        policy = RetryPolicy(backoff_base_ms=1000.0, backoff_max_ms=4000.0)
        clock = lambda: 100.0  # noqa: E731 - fixed fake clock
        untruncated = policy.backoff_seconds(0, 2)
        assert untruncated > 1.0  # would overshoot a near deadline
        # 50ms of budget left: the sleep is clipped to it.
        clipped = policy.backoff_seconds(0, 2, deadline=100.05, clock=clock)
        assert clipped == pytest.approx(0.05)
        # Expired deadline: retry immediately rather than sleeping.
        assert policy.backoff_seconds(0, 2, deadline=99.0, clock=clock) == 0.0
        # A distant deadline leaves the jittered value untouched.
        assert (
            policy.backoff_seconds(0, 2, deadline=1000.0, clock=clock)
            == untruncated
        )


# ----------------------------------------------------------------------
# CircuitBreaker (injected clock: no sleeping)
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)

    def test_full_cycle(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0, clock=clock)
        assert breaker.allow() and breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        assert breaker.record_failure() is True  # trips
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.now += 9.0
        assert not breaker.allow()  # cooldown not elapsed
        clock.now += 1.5
        assert breaker.allow()  # admits the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        """Regression: concurrent callers must not all become the probe."""
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()  # this caller owns the probe slot
        # Everyone else is rejected while the probe is in flight.
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.snapshot()["probe_rejections"] == 2
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_slot_reclaimed_after_silence(self):
        """A probe that never reports must not wedge the breaker."""
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow()  # probe taken, outcome never recorded
        assert not breaker.allow()
        clock.now += 5.0  # a whole cooldown of silence: slot reclaimed
        assert breaker.allow()
        assert not breaker.allow()  # and the new probe again excludes others

    def test_half_open_single_probe_under_threads(self):
        """Threaded regression: N racers, exactly one admitted per window."""
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0, clock=clock)
        breaker.record_failure()
        clock.now += 30.0
        admitted = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            if breaker.allow():
                with lock:
                    admitted.append(threading.get_ident())

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 1
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # The losing racers were counted as rejected, not silently dropped.
        assert breaker.snapshot()["probe_rejections"] == 7

    def test_half_open_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # probe failed: reopen
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # never 3 in a row

    def test_snapshot(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0, clock=clock)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == CircuitBreaker.OPEN
        assert snap["opens"] == 1
        assert 0.0 < snap["seconds_until_probe"] <= 30.0


# ----------------------------------------------------------------------
# Executor retry / crash / watchdog (the fault-instrumented task body
# mirrors repro.parallel.shards: plan JSON travels in the payload)
# ----------------------------------------------------------------------
def _fault_task(payload):
    value, task_no, fault_json = payload
    if fault_json:
        spec = FaultInjector.from_json(fault_json).fire(
            "shard.search", shard=task_no, op="test"
        )
        if spec is not None and spec.kind == "corrupt":
            return -value
    return value * 2


def _payloads(fault_json, n=4):
    return [(i * 10, i, fault_json) for i in range(n)]


class TestExecutorRetry:
    def test_transient_fault_retried(self):
        # attempt=0 makes the fault transient: the retry must succeed.
        plan = _plan({"point": "shard.search", "attempt": 0,
                      "match": {"shard": 1}})
        with ShardExecutor(
            retry=RetryPolicy(max_retries=2, backoff_base_ms=1.0)
        ) as executor:
            outcomes = executor.map_outcomes(_fault_task, _payloads(plan))
        assert [o.value for o in outcomes] == [0, 20, 40, 60]
        assert outcomes[1].attempts == 2
        assert executor.stats.retries == 1
        assert executor.stats.completed == 4

    def test_exhausted_retries_yield_error_outcome(self):
        plan = _plan({"point": "shard.search", "match": {"shard": 2}})
        with ShardExecutor(
            retry=RetryPolicy(max_retries=1, backoff_base_ms=1.0)
        ) as executor:
            outcomes = executor.map_outcomes(_fault_task, _payloads(plan))
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert isinstance(outcomes[2].error, FaultInjected)
        assert outcomes[2].attempts == 2
        assert executor.stats.failed == 1

    def test_map_raises_first_error_in_payload_order(self):
        plan = _plan({"point": "shard.search"})  # every task fails
        with ShardExecutor(retry=RetryPolicy(max_retries=0)) as executor:
            with pytest.raises(FaultInjected, match="'shard': 0"):
                executor.map(_fault_task, _payloads(plan))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_fault_plan_replay_identical_across_backends(self, backend):
        plan = _plan(
            {"point": "shard.search", "kind": "corrupt", "match": {"shard": 0}},
            {"point": "shard.search", "attempt": 0, "match": {"shard": 2}},
            {"point": "shard.search", "match": {"shard": 3}},
        )
        with ShardExecutor(
            num_workers=2, backend=backend,
            retry=RetryPolicy(max_retries=1, backoff_base_ms=1.0),
        ) as executor:
            outcomes = executor.map_outcomes(_fault_task, _payloads(plan))
        # Same plan, same payloads => same terminal state on every backend.
        assert [o.ok for o in outcomes] == [True, True, True, False]
        assert [o.value for o in outcomes[:3]] == [-0, 20, 40]
        assert [o.attempts for o in outcomes] == [1, 1, 2, 2]
        assert isinstance(outcomes[3].error, FaultInjected)


class TestExecutorCrash:
    def test_worker_death_mid_map_recovers(self):
        # A real os._exit in a pool worker: BrokenProcessPool, recycle,
        # resubmit.  attempt=0 keeps the crash transient so every payload
        # still completes.
        plan = _plan({"point": "shard.search", "kind": "crash",
                      "attempt": 0, "match": {"shard": 1}})
        with ShardExecutor(
            num_workers=2, backend="process",
            retry=RetryPolicy(max_retries=2, backoff_base_ms=1.0),
        ) as executor:
            outcomes = executor.map_outcomes(_fault_task, _payloads(plan))
        assert [o.value for o in outcomes] == [0, 20, 40, 60]
        assert executor.stats.pool_recycles >= 1

    def test_permanent_crash_fails_only_its_task(self):
        plan = _plan({"point": "shard.search", "kind": "crash",
                      "match": {"shard": 1}})
        with ShardExecutor(
            num_workers=2, backend="process",
            retry=RetryPolicy(max_retries=0),
        ) as executor:
            outcomes = executor.map_outcomes(_fault_task, _payloads(plan))
        assert [o.ok for o in outcomes] == [True, False, True, True]
        # The terminal inline attempt has no worker process to kill, so
        # the crash surfaces as WorkerCrash — same failure the serial
        # backend reports, which is what keeps degraded merges identical.
        assert isinstance(outcomes[1].error, WorkerCrash)


class TestExecutorWatchdog:
    def test_hung_worker_fails_over_and_retries(self):
        plan = _plan({"point": "shard.search", "kind": "delay",
                      "delay_ms": 4000, "attempt": 0, "match": {"shard": 1}})
        policy = RetryPolicy(
            max_retries=1, task_timeout_s=0.4, backoff_base_ms=1.0
        )
        started = time.perf_counter()
        with ShardExecutor(
            num_workers=2, backend="process", retry=policy
        ) as executor:
            outcomes = executor.map_outcomes(_fault_task, _payloads(plan))
        elapsed = time.perf_counter() - started
        assert [o.value for o in outcomes] == [0, 20, 40, 60]
        assert executor.stats.timeouts >= 1
        assert executor.stats.pool_recycles >= 1  # hung worker was killed
        assert elapsed < 3.0  # failed over, never waited out the hang

    def test_permanent_hang_yields_task_timeout(self):
        plan = _plan({"point": "shard.search", "kind": "delay",
                      "delay_ms": 4000, "match": {"shard": 0}})
        policy = RetryPolicy(max_retries=0, task_timeout_s=0.3)
        with ShardExecutor(
            num_workers=2, backend="process", retry=policy
        ) as executor:
            outcomes = executor.map_outcomes(
                _fault_task, _payloads(plan, n=2)
            )
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, TaskTimeout)
        assert outcomes[1].value == 20


# ----------------------------------------------------------------------
# Graceful shard degradation
# ----------------------------------------------------------------------
def _serial(fault_plan="", max_retries=0, **kw) -> ParallelConfig:
    return ParallelConfig(
        backend="serial", fault_plan=fault_plan, max_retries=max_retries,
        backoff_base_ms=1.0, **kw,
    )


@pytest.fixture(scope="module")
def eight_shard():
    """An 8-shard index + queries (the acceptance-criteria geometry)."""
    rng = np.random.default_rng(42)
    data = rng.standard_normal((640, 16)).astype(np.float32)
    queries = rng.standard_normal((25, 16)).astype(np.float32)
    index = ShardedCagraIndex.build(
        data, 8, GraphBuildConfig(graph_degree=8, seed=3), parallel=_serial()
    )
    yield index, data, queries
    index.close()


def _with_parallel(index: ShardedCagraIndex, parallel: ParallelConfig):
    """A view of the same shards under a different execution policy."""
    return ShardedCagraIndex(index.shards, index.assignments, parallel=parallel)


_CRASH_SHARD_3 = '[{"point": "shard.search", "kind": "crash", "match": {"shard": 3}}]'


class TestDegradedShardedSearch:
    def test_raise_mode_propagates(self, eight_shard):
        index, _, queries = eight_shard
        view = _with_parallel(index, _serial(_CRASH_SHARD_3))
        try:
            with pytest.raises(WorkerCrash):
                view.search(queries, 10, SearchConfig(itopk=32))
        finally:
            view.close()

    def test_partial_mode_reports_degraded(self, eight_shard):
        index, _, queries = eight_shard
        view = _with_parallel(index, _serial(_CRASH_SHARD_3))
        try:
            result = view.search(
                queries, 10, SearchConfig(itopk=32), on_shard_failure="partial"
            )
        finally:
            view.close()
        assert result.degraded
        assert result.failed_shards == [3]
        assert result.skipped_shards == []
        # No id from the dead shard (round-robin: ids ≡ 3 mod 8) can
        # appear, and every slot is either a live id or a sentinel.
        filled = result.indices != INDEX_MASK
        assert not np.any(result.indices[filled] % 8 == 3)

    def test_degraded_recall_within_bound(self, eight_shard):
        """Losing 1 shard of 8 loses ~1/8 of the *candidates* by
        construction, so recall is measured against the ground truth over
        the rows that are still reachable: on that truth the degraded
        search must be within 0.05 of the fault-free search's full-truth
        recall (the surviving shards' quality is untouched)."""
        index, data, queries = eight_shard
        k = 10
        clean = index.search(queries, k, SearchConfig(itopk=64))
        truth, _ = exact_search(data, queries, k)
        clean_recall = recall_of(clean.indices, truth)

        view = _with_parallel(index, _serial(_CRASH_SHARD_3))
        try:
            degraded = view.search(
                queries, k, SearchConfig(itopk=64), on_shard_failure="partial"
            )
        finally:
            view.close()
        available = np.setdiff1d(
            np.arange(data.shape[0]), index.assignments[3]
        )
        avail_truth_local, _ = exact_search(data[available], queries, k)
        avail_truth = available[avail_truth_local]
        degraded_recall = recall_of(degraded.indices, avail_truth)
        assert degraded_recall >= clean_recall - 0.05

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_degraded_results_identical_across_backends(
        self, eight_shard, backend
    ):
        """The same seeded fault plan produces bitwise-identical degraded
        output on every backend — crash is a real worker death under the
        process pool and a WorkerCrash everywhere else, but the merge
        cannot tell the difference."""
        index, _, queries = eight_shard
        view = _with_parallel(
            index,
            ParallelConfig(
                backend=backend, num_workers=2, fault_plan=_CRASH_SHARD_3,
                max_retries=0, backoff_base_ms=1.0,
            ),
        )
        try:
            result = view.search(
                queries, 10, SearchConfig(itopk=32, seed=9),
                on_shard_failure="partial",
            )
        finally:
            view.close()
        assert result.degraded and result.failed_shards == [3]
        baseline = _with_parallel(index, _serial(_CRASH_SHARD_3))
        try:
            expected = baseline.search(
                queries, 10, SearchConfig(itopk=32, seed=9),
                on_shard_failure="partial",
            )
        finally:
            baseline.close()
        np.testing.assert_array_equal(result.indices, expected.indices)
        np.testing.assert_array_equal(result.distances, expected.distances)

    def test_corrupt_fault_masked_by_merge(self, eight_shard):
        """A corrupt-kind fault (sentinel ids + NaN distances) never
        leaks: the merge masks poisoned slots to (INDEX_MASK, inf)."""
        index, _, queries = eight_shard
        plan = _plan({"point": "shard.search", "kind": "corrupt",
                      "match": {"shard": 5}})
        view = _with_parallel(index, _serial(plan))
        try:
            result = view.search(queries, 10, SearchConfig(itopk=32))
        finally:
            view.close()
        filled = result.indices != INDEX_MASK
        assert np.isfinite(result.distances[filled]).all()
        assert result.indices[filled].max() < index.size
        assert not result.degraded  # poisoned, not failed

    def test_executor_stats_exposed(self, eight_shard):
        index, _, queries = eight_shard
        view = _with_parallel(index, _serial(_CRASH_SHARD_3, max_retries=1))
        try:
            view.search(queries, 5, on_shard_failure="partial")
            stats = view.executor_stats
        finally:
            view.close()
        assert stats["retries"] >= 1
        assert stats["failed"] == 1


class TestQuorum:
    def test_all_shards_failing_raises(self, eight_shard):
        index, _, queries = eight_shard
        view = _with_parallel(
            index, _serial(_plan({"point": "shard.search", "kind": "crash"}))
        )
        try:
            with pytest.raises(ShardQuorumError, match="0 of 8"):
                view.search(queries, 10, on_shard_failure="partial")
        finally:
            view.close()

    def test_exactly_quorum_survivors_ok(self, eight_shard):
        index, _, queries = eight_shard
        plan = _plan(*[
            {"point": "shard.search", "kind": "crash", "match": {"shard": s}}
            for s in range(7)
        ])
        view = _with_parallel(index, _serial(plan))
        try:
            result = view.search(
                queries, 10, on_shard_failure="partial", min_shard_quorum=1
            )
            assert result.failed_shards == list(range(7))
            with pytest.raises(ShardQuorumError):
                view.search(
                    queries, 10, on_shard_failure="partial", min_shard_quorum=2
                )
        finally:
            view.close()

    def test_skip_shards_counted_against_quorum(self, eight_shard):
        index, _, queries = eight_shard
        result = index.search(
            queries, 10, on_shard_failure="partial", skip_shards=[1, 4]
        )
        assert result.degraded and result.skipped_shards == [1, 4]
        with pytest.raises(ShardQuorumError):
            index.search(
                queries, 10, on_shard_failure="partial",
                skip_shards=[0, 1, 2, 4, 5, 6, 7], min_shard_quorum=2,
            )
        with pytest.raises(ShardQuorumError, match="skipped"):
            index.search(queries, 10, skip_shards=list(range(8)))

    def test_parameter_validation(self, eight_shard):
        index, _, queries = eight_shard
        with pytest.raises(ValueError, match="on_shard_failure"):
            index.search(queries, 5, on_shard_failure="ignore")
        with pytest.raises(ValueError, match="min_shard_quorum"):
            index.search(queries, 5, min_shard_quorum=0)
        with pytest.raises(ValueError, match="out of range"):
            index.search(queries, 5, skip_shards=[11])


# ----------------------------------------------------------------------
# Serving-layer resilience
# ----------------------------------------------------------------------
_POISON_MARK = 999.0


class _PoisonIndex:
    """AnnIndex wrapper that raises on any query whose first coordinate is
    the poison marker — models one bad request inside a healthy batch."""

    def __init__(self, inner):
        from repro.api import as_ann_index

        self._inner = as_ann_index(inner)

    @property
    def dim(self):
        return self._inner.dim

    @property
    def metric(self):
        return self._inner.metric

    @property
    def size(self):
        return self._inner.size

    def search(self, queries, k=10, **kwargs):
        if np.any(np.atleast_2d(queries)[:, 0] == _POISON_MARK):
            raise RuntimeError("poisoned query")
        return self._inner.search(queries, k, **kwargs)


def _make_server(index, **overrides) -> CagraServer:
    defaults = dict(max_batch=8, max_wait_ms=2.0, cache_capacity=0)
    defaults.update(overrides)
    return CagraServer(
        index, ServeConfig(**defaults),
        search_config=SearchConfig(itopk=32, seed=5),
    )


class TestServeConfigResilience:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(on_shard_failure="retry"),
            dict(min_shard_quorum=0),
            dict(breaker_failure_threshold=-1),
            dict(breaker_cooldown_s=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestServerBisection:
    def test_poisoned_request_fails_alone(self, small_index):
        rng = np.random.default_rng(13)
        good = rng.standard_normal((5, small_index.dim)).astype(np.float32)
        poisoned = good[0].copy()
        poisoned[0] = _POISON_MARK
        server = _make_server(_PoisonIndex(small_index), max_wait_ms=30.0)
        handles = [server.submit(q, k=5) for q in good[:3]]
        handles.append(server.submit(poisoned, k=5))
        handles += [server.submit(q, k=5) for q in good[3:]]
        with server:
            results = []
            for i, handle in enumerate(handles):
                if i == 3:
                    with pytest.raises(RuntimeError, match="poisoned"):
                        handle.result()
                else:
                    results.append(handle.result())
        assert len(results) == 5
        assert all(np.isfinite(r.distances).all() for r in results)
        stats = server.stats()
        assert stats.batch_splits >= 1
        assert stats.failed == 1 and stats.completed == 5

    def test_serve_execute_fault_split_retries(self, small_index):
        # One transient batch-level fault: bisection re-runs the halves
        # and every request is still answered.
        rng = np.random.default_rng(14)
        good = rng.standard_normal((6, small_index.dim)).astype(np.float32)
        server = _make_server(
            small_index, max_wait_ms=30.0,
            fault_plan=_plan({"point": "serve.execute", "times": 1}),
        )
        handles = [server.submit(q, k=5) for q in good]
        with server:
            results = [handle.result() for handle in handles]
        assert len(results) == 6
        assert server.stats().batch_splits >= 1
        assert server.stats().failed == 0

    def test_corrupt_result_served_but_not_cached(self, small_index):
        rng = np.random.default_rng(15)
        query = rng.standard_normal(small_index.dim).astype(np.float32)
        server = _make_server(
            small_index, cache_capacity=16,
            fault_plan=_plan(
                {"point": "serve.execute", "kind": "corrupt", "times": 1}
            ),
        )
        with server:
            poisoned = server.search(query, k=5)
            clean = server.search(query, k=5)
        assert np.all(poisoned.indices == INDEX_MASK)
        assert np.isnan(poisoned.distances).all()
        # The corrupt answer must not have been cached.
        assert not clean.from_cache
        assert np.isfinite(clean.distances).all()


class TestServerBreaker:
    def test_breaker_full_cycle_over_live_traffic(
        self, eight_shard, monkeypatch
    ):
        """Trip a shard breaker with injected faults, watch the server
        skip the shard while open, then recover through a half-open
        probe once the fault is lifted."""
        index, _, queries = eight_shard
        view = _with_parallel(index, _serial())
        server = _make_server(
            view,
            on_shard_failure="partial",
            breaker_failure_threshold=2,
            breaker_cooldown_s=0.05,
        )
        fault = _plan(
            {"point": "shard.search", "kind": "raise", "match": {"shard": 1}}
        )
        monkeypatch.setenv("REPRO_FAULT_PLAN", fault)
        try:
            with server:
                server.search(queries[0], k=5)
                server.search(queries[1], k=5)  # second failure: trips
                health = server.health()
                assert health["status"] == "degraded"
                assert health["open_shards"] == [1]
                assert health["breakers"]["1"]["state"] == "open"
                # Open breaker: shard 1 is skipped, not searched.
                server.search(queries[2], k=5)
                assert server.stats().shard_failures == 2
                # Lift the fault and wait out the cooldown: the next
                # search admits a half-open probe, which succeeds.
                monkeypatch.delenv("REPRO_FAULT_PLAN")
                time.sleep(0.08)
                server.search(queries[3], k=5)
                health = server.health()
                assert health["open_shards"] == []
                assert health["breakers"]["1"]["state"] == "closed"
                assert health["breakers"]["1"]["closes"] == 1
            stats = server.stats()
            assert stats.breaker_trips == 1
            assert stats.degraded_batches == 3  # 2 failures + 1 skip
            assert stats.failed == 0  # partial mode answered everything
        finally:
            view.close()

    def test_quorum_error_fails_batch_without_split(self, eight_shard):
        index, _, queries = eight_shard
        view = _with_parallel(
            index, _serial(_plan({"point": "shard.search", "kind": "crash"}))
        )
        server = _make_server(view, on_shard_failure="partial", max_wait_ms=30.0)
        handles = [server.submit(q, k=5) for q in queries[:4]]
        try:
            with server:
                for handle in handles:
                    with pytest.raises(ShardQuorumError):
                        handle.result()
            # Query-independent failure: no bisection attempted.
            assert server.stats().batch_splits == 0
            assert server.stats().failed == 4
        finally:
            view.close()

    def test_health_snapshot_when_ok(self, small_index):
        server = _make_server(small_index)
        with server:
            server.search(
                np.zeros(small_index.dim, dtype=np.float32), k=5
            )
            health = server.health()
            assert health["status"] == "ok"
            assert health["accepting"] is True
            assert health["breakers"] == {}
        assert server.health()["status"] == "stopped"


# ----------------------------------------------------------------------
# CLI resilience surface
# ----------------------------------------------------------------------
class TestCLIResilience:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["search", "--index", "x.npz"])
        assert args.on_shard_failure == "raise"
        assert args.min_quorum == 1
        assert args.fault_plan == ""
        args = build_parser().parse_args(["serve"])
        assert args.breaker_threshold == 0
        assert args.breaker_cooldown_s == 30.0

    def test_index_load_fault_point(self, tmp_path):
        plan = _plan({"point": "index.load"})
        with pytest.raises(FaultInjected):
            main([
                "search", "--index", str(tmp_path / "missing.npz"),
                "--fault-plan", plan,
            ])

    @pytest.fixture(scope="class")
    def cli_artifacts(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-resilience")
        rng = np.random.default_rng(23)
        data = rng.standard_normal((320, 16)).astype(np.float32)
        index = ShardedCagraIndex.build(
            data, 4, GraphBuildConfig(graph_degree=8, seed=3),
            parallel=_serial(),
        )
        index_path = str(root / "sharded.npz")
        index.save(index_path)
        index.close()
        fvecs_path = str(root / "data.fvecs")
        write_fvecs(fvecs_path, data)
        return index_path, fvecs_path

    def test_degraded_search_json(self, cli_artifacts, capsys):
        index_path, fvecs = cli_artifacts
        rc = main([
            "search", "--index", index_path, "--fvecs", fvecs,
            "--queries", "6", "--backend", "serial",
            "--fault-plan",
            _plan({"point": "shard.search", "kind": "crash",
                   "match": {"shard": 2}}),
            "--on-shard-failure", "partial", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] is True
        assert payload["failed_shards"] == [2]

    def test_quorum_violation_fails_loudly(self, cli_artifacts):
        index_path, fvecs = cli_artifacts
        with pytest.raises(ShardQuorumError):
            main([
                "search", "--index", index_path, "--fvecs", fvecs,
                "--queries", "4", "--backend", "serial",
                "--fault-plan", _plan({"point": "shard.search"}),
                "--on-shard-failure", "partial",
            ])

    def test_clean_search_not_degraded(self, cli_artifacts, capsys):
        index_path, fvecs = cli_artifacts
        rc = main([
            "search", "--index", index_path, "--fvecs", fvecs,
            "--queries", "4", "--backend", "serial", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] is False
        assert "failed_shards" not in payload

    def test_serve_reports_health(self, cli_artifacts, capsys):
        index_path, fvecs = cli_artifacts
        rc = main([
            "serve", "--index", index_path, "--fvecs", fvecs,
            "--queries", "8", "--requests", "20", "--rate", "400",
            "--backend", "serial", "--breaker-threshold", "3",
            "--on-shard-failure", "partial", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["status"] in ("ok", "degraded")
        assert set(payload["health"]["breakers"]) == {"0", "1", "2", "3"}
