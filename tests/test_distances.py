"""Unit tests for repro.core.distances."""

import numpy as np
import pytest

from repro.core.distances import (
    METRICS,
    as_storage_dtype,
    distance_function,
    distances_to_query,
    gathered_distances,
    normalize_rows,
    pairwise_distances,
)


class TestPairwiseDistances:
    def test_sqeuclidean_matches_manual(self, tiny_data):
        d = pairwise_distances(tiny_data[:10], tiny_data[:20])
        manual = np.array(
            [
                [((a.astype(np.float64) - b) ** 2).sum() for b in tiny_data[:20]]
                for a in tiny_data[:10].astype(np.float64)
            ]
        )
        np.testing.assert_allclose(d, manual, rtol=1e-4, atol=1e-3)

    def test_self_distance_is_zero(self, tiny_data):
        d = pairwise_distances(tiny_data, tiny_data)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-2)

    def test_nonnegative(self, tiny_data):
        d = pairwise_distances(tiny_data, tiny_data)
        assert (d >= 0).all()

    def test_symmetry(self, tiny_data):
        d = pairwise_distances(tiny_data, tiny_data)
        np.testing.assert_allclose(d, d.T, rtol=1e-5, atol=1e-3)

    def test_inner_product_is_negated(self):
        a = np.array([[1.0, 0.0]], dtype=np.float32)
        b = np.array([[2.0, 0.0], [-3.0, 0.0]], dtype=np.float32)
        d = pairwise_distances(a, b, metric="inner_product")
        np.testing.assert_allclose(d, [[-2.0, 3.0]])

    def test_cosine_range(self, tiny_data):
        d = pairwise_distances(tiny_data, tiny_data, metric="cosine")
        assert d.min() >= -1.0 - 1e-6
        assert d.max() <= 1.0 + 1e-6

    def test_cosine_self_is_minus_one(self, tiny_data):
        d = pairwise_distances(tiny_data, tiny_data, metric="cosine")
        np.testing.assert_allclose(np.diag(d), -1.0, atol=1e-5)

    def test_unknown_metric_raises(self, tiny_data):
        with pytest.raises(ValueError, match="unknown metric"):
            pairwise_distances(tiny_data, tiny_data, metric="manhattan")

    def test_smaller_is_better_ordering_consistent(self, tiny_data):
        """Top-1 under each metric must agree with the scalar reference."""
        for metric in METRICS:
            d = pairwise_distances(tiny_data[:5], tiny_data, metric=metric)
            f = distance_function(metric)
            for i in range(5):
                ref = np.array([f(tiny_data[i], row) for row in tiny_data])
                assert np.argmin(d[i]) == np.argmin(ref)


class TestDistancesToQuery:
    def test_matches_pairwise(self, tiny_data):
        q = tiny_data[3]
        d = distances_to_query(tiny_data, q)
        full = pairwise_distances(q[None, :], tiny_data)[0]
        np.testing.assert_allclose(d, full, rtol=1e-4, atol=1e-3)

    def test_subset_indices(self, tiny_data):
        idx = np.array([5, 17, 3])
        d = distances_to_query(tiny_data, tiny_data[0], idx)
        full = distances_to_query(tiny_data, tiny_data[0])
        np.testing.assert_allclose(d, full[idx], rtol=1e-5)

    @pytest.mark.parametrize("metric", METRICS)
    def test_all_metrics_shapes(self, tiny_data, metric):
        d = distances_to_query(tiny_data, tiny_data[0], metric=metric)
        assert d.shape == (len(tiny_data),)

    def test_zero_query_cosine(self, tiny_data):
        d = distances_to_query(tiny_data, np.zeros(16, dtype=np.float32), metric="cosine")
        assert np.isfinite(d).all()


class TestGatheredDistances:
    def test_matches_per_query(self, tiny_data):
        queries = tiny_data[:4]
        indices = np.array([[1, 2, 3], [4, 5, 6], [7, 8, 9], [0, 10, 11]])
        d = gathered_distances(tiny_data, queries, indices)
        for i in range(4):
            ref = distances_to_query(tiny_data, queries[i], indices[i])
            np.testing.assert_allclose(d[i], ref, rtol=1e-4, atol=1e-3)

    @pytest.mark.parametrize("metric", METRICS)
    def test_metrics_shapes(self, tiny_data, metric):
        indices = np.tile(np.arange(5), (3, 1))
        d = gathered_distances(tiny_data, tiny_data[:3], indices, metric=metric)
        assert d.shape == (3, 5)

    def test_inner_product_matches_reference(self, tiny_data):
        indices = np.array([[0, 1], [2, 3]])
        d = gathered_distances(tiny_data, tiny_data[:2], indices, metric="inner_product")
        f = distance_function("inner_product")
        for q in range(2):
            for j in range(2):
                assert d[q, j] == pytest.approx(
                    f(tiny_data[q], tiny_data[indices[q, j]]), rel=1e-4
                )


class TestNormalizeRows:
    def test_unit_norms(self, tiny_data):
        normed = normalize_rows(tiny_data.astype(np.float64))
        np.testing.assert_allclose(np.linalg.norm(normed, axis=1), 1.0, rtol=1e-6)

    def test_zero_row_untouched(self):
        data = np.zeros((2, 4))
        data[1] = [3.0, 4.0, 0.0, 0.0]
        normed = normalize_rows(data)
        np.testing.assert_allclose(normed[0], 0.0)
        np.testing.assert_allclose(np.linalg.norm(normed[1]), 1.0)


class TestStorageDtype:
    def test_float16_quantizes(self):
        data = np.array([[1.0001]], dtype=np.float32)
        half = as_storage_dtype(data, "float16")
        assert half.dtype == np.float16
        assert half[0, 0] != np.float32(1.0001) or True  # representable check below
        assert abs(float(half[0, 0]) - 1.0001) < 1e-3

    def test_float32_roundtrip(self, tiny_data):
        out = as_storage_dtype(tiny_data, "float32")
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, tiny_data)

    def test_invalid_dtype_raises(self, tiny_data):
        with pytest.raises(ValueError, match="float32 or float16"):
            as_storage_dtype(tiny_data, "int8")

    def test_fp16_search_quality_preserved(self, tiny_data):
        """FP16 storage must not reorder top-1 results materially."""
        half = as_storage_dtype(tiny_data, "float16")
        d32 = pairwise_distances(tiny_data[:10], tiny_data)
        d16 = pairwise_distances(half[:10], half)
        agree = sum(
            np.argmin(d32[i]) == np.argmin(d16[i]) for i in range(10)
        )
        assert agree >= 9
