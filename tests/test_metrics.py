"""Unit tests for repro.core.metrics (recall, strong CC, 2-hop counts)."""

import numpy as np
import pytest

from repro.core.graph import FixedDegreeGraph
from repro.core.metrics import (
    average_two_hop_count,
    recall,
    recall_per_query,
    strong_connected_components,
    two_hop_counts,
    weak_connected_components,
)


def graph_from_rows(rows) -> FixedDegreeGraph:
    return FixedDegreeGraph(np.array(rows, dtype=np.uint32))


class TestRecall:
    def test_perfect(self):
        found = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall(found, found) == 1.0

    def test_order_independent(self):
        found = np.array([[3, 2, 1]])
        truth = np.array([[1, 2, 3]])
        assert recall(found, truth) == 1.0

    def test_partial(self):
        found = np.array([[1, 2, 9]])
        truth = np.array([[1, 2, 3]])
        assert recall(found, truth) == pytest.approx(2 / 3)

    def test_zero(self):
        assert recall(np.array([[7, 8]]), np.array([[1, 2]])) == 0.0

    def test_per_query_vector(self):
        found = np.array([[1, 2], [3, 9]])
        truth = np.array([[1, 2], [3, 4]])
        np.testing.assert_allclose(recall_per_query(found, truth), [1.0, 0.5])

    def test_mismatched_counts_raise(self):
        with pytest.raises(ValueError):
            recall_per_query(np.array([[1]]), np.array([[1], [2]]))

    def test_recall_at_k_less_than_truth(self):
        """recall@k with a wider truth set divides by |truth| (Eq. 2)."""
        found = np.array([[1, 2]])
        truth = np.array([[1, 2, 3, 4]])
        assert recall(found, truth) == 0.5


class TestStrongCC:
    def test_cycle_is_one_scc(self):
        g = graph_from_rows([[1], [2], [0]])
        assert strong_connected_components(g) == 1

    def test_chain_is_n_sccs(self):
        # 0 -> 1 -> 2 -> 2 (sink with self-loop-ish edge to itself is
        # disallowed; use 2 -> 1 which merges {1, 2}).
        g = graph_from_rows([[1], [2], [1]])
        assert strong_connected_components(g) == 2

    def test_two_disjoint_cycles(self):
        g = graph_from_rows([[1], [0], [3], [2]])
        assert strong_connected_components(g) == 2

    def test_matches_scipy(self, small_index):
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components

        g = small_index.graph
        n, d = g.neighbors.shape
        indptr = np.arange(0, n * d + 1, d)
        matrix = csr_matrix(
            (np.ones(n * d), g.neighbors.ravel().astype(np.int64), indptr),
            shape=(n, n),
        )
        expected, _ = connected_components(matrix, directed=True, connection="strong")
        assert strong_connected_components(g) == expected

    def test_matches_networkx_random(self):
        import networkx as nx

        rng = np.random.default_rng(0)
        rows = rng.integers(0, 40, size=(40, 3))
        g = graph_from_rows(rows)
        nxg = nx.DiGraph(
            (i, int(j)) for i in range(40) for j in rows[i]
        )
        nxg.add_nodes_from(range(40))
        assert strong_connected_components(g) == nx.number_strongly_connected_components(nxg)


class TestWeakCC:
    def test_connected_ring(self):
        g = graph_from_rows([[1], [2], [0]])
        assert weak_connected_components(g) == 1

    def test_two_islands(self):
        g = graph_from_rows([[1], [0], [3], [2]])
        assert weak_connected_components(g) == 2

    def test_weak_leq_strong(self, small_index):
        weak = weak_connected_components(small_index.graph)
        strong = strong_connected_components(small_index.graph)
        assert weak <= strong


class TestTwoHop:
    def test_complete_graph_maximal(self):
        # K4 as fixed-degree-3: every node reaches the other 3 in one hop.
        rows = [[j for j in range(4) if j != i] for i in range(4)]
        g = graph_from_rows(rows)
        counts = two_hop_counts(g)
        np.testing.assert_array_equal(counts, [3, 3, 3, 3])

    def test_ring_two_hop(self):
        # Directed ring 0->1->2->3->4->0: each node reaches 2 others.
        g = graph_from_rows([[1], [2], [3], [4], [0]])
        np.testing.assert_array_equal(two_hop_counts(g), [2, 2, 2, 2, 2])

    def test_upper_bound_d_plus_d_squared(self, small_index):
        d = small_index.graph.degree
        counts = two_hop_counts(small_index.graph, sample=100, seed=0)
        assert counts.max() <= d + d * d

    def test_excludes_self(self):
        # 0 <-> 1: from 0 reach 1 (1 hop) and 0 (2 hops, excluded).
        g = graph_from_rows([[1], [0]])
        np.testing.assert_array_equal(two_hop_counts(g), [1, 1])

    def test_sampling_reproducible(self, small_index):
        a = average_two_hop_count(small_index.graph, sample=50, seed=5)
        b = average_two_hop_count(small_index.graph, sample=50, seed=5)
        assert a == b

    def test_sample_larger_than_n_means_full(self, small_index):
        full = average_two_hop_count(small_index.graph)
        capped = average_two_hop_count(small_index.graph, sample=10**9)
        assert full == capped
