"""Tests for the concurrency/contract lint rules (RL101–RL104,
RL201–RL203) and the thread-sanitizer-lite runtime mode (RL301/RL302).

Each static rule gets positive, negative, and waived cases; the
sanitizer is exercised against a seeded two-lock deadlock and the
pre-fix ``ExecutorStats`` unlocked-increment race.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import lint_source
from repro.lint.sanitizer import ThreadSanitizer

CONCURRENCY_FIXTURES = Path(__file__).parent / "fixtures" / "lint" / "concurrency"
API_FIXTURES = Path(__file__).parent / "fixtures" / "lint" / "api"


def rules_of(source: str, path: str = "repro/serve/mod.py") -> set[str]:
    return {v.rule for v in lint_source(source, path)}


# ----------------------------------------------------------------------
# RL101 — lock-guarded attribute accessed without its lock
# ----------------------------------------------------------------------
LOCKED_CLASS = (
    "import threading\n"
    "class C:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.total = 0\n"
    "    def add(self, n):\n"
    "        with self._lock:\n"
    "            self.total = self.total + n\n"
)


class TestRL101:
    def test_unguarded_write_is_flagged(self):
        src = LOCKED_CLASS + "    def reset(self):\n        self.total = 0\n"
        assert "RL101" in rules_of(src)

    def test_unguarded_read_is_flagged(self):
        src = LOCKED_CLASS + "    def peek(self):\n        return self.total\n"
        assert "RL101" in rules_of(src)

    def test_all_guarded_passes(self):
        src = LOCKED_CLASS + (
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self.total\n"
        )
        assert "RL101" not in rules_of(src)

    def test_init_writes_are_exempt(self):
        assert "RL101" not in rules_of(LOCKED_CLASS)

    def test_class_without_lock_is_ignored(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.total = 0\n"
            "    def add(self, n):\n"
            "        self.total += n\n"
        )
        assert "RL101" not in rules_of(src)

    def test_unguarded_attribute_stays_free(self):
        # An attribute never written under the lock has no discipline.
        src = LOCKED_CLASS + (
            "    def tick(self):\n"
            "        self.beats = 1\n"
            "    def tock(self):\n"
            "        return self.beats\n"
        )
        assert "RL101" not in rules_of(src)

    def test_waiver_suppresses(self):
        src = LOCKED_CLASS + (
            "    def reset(self):\n"
            "        self.total = 0"
            "  # repro-lint: disable=RL101 — single-threaded teardown\n"
        )
        assert "RL101" not in rules_of(src)

    def test_locked_suffix_method_assumes_lock_held(self):
        # `*_locked` methods declare "caller holds the lock".
        src = LOCKED_CLASS + (
            "    def reset_locked(self):\n"
            "        self.total = 0\n"
        )
        assert "RL101" not in rules_of(src)


# ----------------------------------------------------------------------
# RL006 — tombstone/mask visibility state guarded by declaration
# ----------------------------------------------------------------------
STREAM_CLASS = (
    "import threading\n"
    "class S:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._tombstones = []\n"
    "        self.counter = 0\n"
)


class TestRL006:
    def test_unlocked_rebind_is_flagged(self):
        src = STREAM_CLASS + (
            "    def swap(self, fresh):\n"
            "        self._tombstones = fresh\n"
        )
        assert "RL006" in rules_of(src)

    def test_unlocked_element_store_is_flagged(self):
        src = STREAM_CLASS + (
            "    def delete(self, row):\n"
            "        self._tombstones[row] = True\n"
        )
        assert "RL006" in rules_of(src)

    def test_unlocked_inplace_mutator_is_flagged(self):
        src = STREAM_CLASS + (
            "    def delete(self, row):\n"
            "        self._tombstones.append(row)\n"
        )
        assert "RL006" in rules_of(src)

    def test_locked_write_passes(self):
        src = STREAM_CLASS + (
            "    def delete(self, row):\n"
            "        with self._lock:\n"
            "            self._tombstones[row] = True\n"
        )
        assert "RL006" not in rules_of(src)

    def test_flagged_even_when_class_never_locks_it(self):
        # RL101 only learns from writes it has seen under a lock; RL006
        # guards the name family by declaration, so a class that forgot
        # to lock these writes entirely is still caught.
        src = STREAM_CLASS + (
            "    def delete(self, row):\n"
            "        self._tombstones[row] = True\n"
        )
        assert "RL101" not in rules_of(src)
        assert "RL006" in rules_of(src)

    def test_locked_suffix_method_is_exempt(self):
        src = STREAM_CLASS + (
            "    def _delete_locked(self, row):\n"
            "        self._tombstones[row] = True\n"
        )
        assert "RL006" not in rules_of(src)

    def test_unrelated_attribute_is_ignored(self):
        src = STREAM_CLASS + (
            "    def bump(self):\n"
            "        self.counter = self.counter + 1\n"
        )
        assert "RL006" not in rules_of(src)

    def test_class_without_lock_is_ignored(self):
        src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self._tombstones = []\n"
            "    def delete(self, row):\n"
            "        self._tombstones.append(row)\n"
        )
        assert "RL006" not in rules_of(src)

    def test_waiver_suppresses(self):
        src = STREAM_CLASS + (
            "    def delete(self, row):\n"
            "        self._tombstones[row] = True"
            "  # repro-lint: disable=RL006 — single-threaded tool\n"
        )
        assert "RL006" not in rules_of(src)


# ----------------------------------------------------------------------
# RL102 — shared-state mutation in thread targets
# ----------------------------------------------------------------------
class TestRL102:
    def test_unlocked_closure_mutation_is_flagged(self):
        src = (
            "import threading\n"
            "def run():\n"
            "    out = []\n"
            "    def worker():\n"
            "        out.append(1)\n"
            "    threading.Thread(target=worker).start()\n"
        )
        assert "RL102" in rules_of(src)

    def test_locked_mutation_passes(self):
        src = (
            "import threading\n"
            "def run():\n"
            "    out = []\n"
            "    lock = threading.Lock()\n"
            "    def worker():\n"
            "        with lock:\n"
            "            out.append(1)\n"
            "    threading.Thread(target=worker).start()\n"
        )
        assert "RL102" not in rules_of(src)

    def test_local_mutation_passes(self):
        src = (
            "import threading\n"
            "def worker():\n"
            "    mine = []\n"
            "    mine.append(1)\n"
            "def run():\n"
            "    threading.Thread(target=worker).start()\n"
        )
        assert "RL102" not in rules_of(src)

    def test_executor_submit_callback_is_covered(self):
        src = (
            "shared = {}\n"
            "def task(n):\n"
            "    shared[n] = n\n"
            "def run(pool):\n"
            "    pool.submit(task, 3)\n"
        )
        assert "RL102" in rules_of(src)

    def test_waiver_suppresses(self):
        src = (
            "import threading\n"
            "def run():\n"
            "    out = []\n"
            "    def worker():\n"
            "        # repro-lint: disable=RL102 — joined before reads\n"
            "        out.append(1)\n"
            "    threading.Thread(target=worker).start()\n"
        )
        assert "RL102" not in rules_of(src)


# ----------------------------------------------------------------------
# RL103 — fork-unsafety in pool task bodies
# ----------------------------------------------------------------------
class TestRL103:
    def test_os_exit_in_task_is_flagged(self):
        src = (
            "import os\n"
            "def task(p):\n"
            "    os._exit(1)\n"
            "def run(pool, items):\n"
            "    return [pool.submit(task, p) for p in items]\n"
        )
        assert "RL103" in rules_of(src)

    def test_lock_acquisition_in_task_is_flagged(self):
        src = (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def task(p):\n"
            "    with _lock:\n"
            "        return p\n"
            "def run(executor, items):\n"
            "    return executor.map(task, items)\n"
        )
        assert "RL103" in rules_of(src)

    def test_module_rng_in_task_is_flagged(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "def task(p):\n"
            "    return rng.random()\n"
            "def run(pool, items):\n"
            "    return [pool.submit(task, p) for p in items]\n"
        )
        assert "RL103" in rules_of(src)

    def test_clean_task_passes(self):
        src = (
            "def task(p):\n"
            "    return p * p\n"
            "def run(pool, items):\n"
            "    return [pool.submit(task, p) for p in items]\n"
        )
        assert "RL103" not in rules_of(src)

    def test_resilience_fault_points_are_sanctioned(self):
        src = (
            "import os\n"
            "def task(p):\n"
            "    os._exit(1)\n"
            "def run(pool, items):\n"
            "    return [pool.submit(task, p) for p in items]\n"
        )
        assert "RL103" not in rules_of(src, path="repro/resilience/faults.py")

    def test_waiver_suppresses(self):
        src = (
            "import os\n"
            "def task(p):\n"
            "    os._exit(1)  # repro-lint: disable=RL103 — crash fixture\n"
            "def run(pool, items):\n"
            "    return [pool.submit(task, p) for p in items]\n"
        )
        assert "RL103" not in rules_of(src)


# ----------------------------------------------------------------------
# RL104 — blocking calls while holding a lock
# ----------------------------------------------------------------------
class TestRL104:
    def test_queue_get_without_timeout_is_flagged(self):
        src = (
            "def drain(self):\n"
            "    with self._lock:\n"
            "        return self._queue.get()\n"
        )
        assert "RL104" in rules_of(src)

    def test_queue_get_with_timeout_passes(self):
        src = (
            "def drain(self):\n"
            "    with self._lock:\n"
            "        return self._queue.get(timeout=0.5)\n"
        )
        assert "RL104" not in rules_of(src)

    def test_future_result_under_lock_is_flagged(self):
        src = (
            "def wait(self, future):\n"
            "    with self._lock:\n"
            "        return future.result()\n"
        )
        assert "RL104" in rules_of(src)

    def test_nested_locks_are_flagged(self):
        src = (
            "def both(self):\n"
            "    with self._swap_lock:\n"
            "        with self._stats_lock:\n"
            "            return 1\n"
        )
        assert "RL104" in rules_of(src)

    def test_blocking_outside_lock_passes(self):
        src = (
            "def drain(self):\n"
            "    item = self._queue.get()\n"
            "    with self._lock:\n"
            "        return item\n"
        )
        assert "RL104" not in rules_of(src)

    def test_waiver_suppresses(self):
        src = (
            "def wait(self, future):\n"
            "    with self._lock:\n"
            "        # repro-lint: disable=RL104 — future already done\n"
            "        return future.result()\n"
        )
        assert "RL104" not in rules_of(src)


# ----------------------------------------------------------------------
# RL201 / RL202 — AnnIndex search contract
# ----------------------------------------------------------------------
ADAPTER_PATH = "repro/api/adapters.py"


class TestRL201:
    def test_raw_tuple_return_is_flagged(self):
        src = (
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        return self._inner.raw_topk(queries, k)\n"
        )
        assert "RL201" in rules_of(src, path=ADAPTER_PATH)

    def test_searchresult_without_normalize_is_flagged(self):
        src = (
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        ids, dists = self._inner.raw_topk(queries, k)\n"
            "        return SearchResult(indices=ids, distances=dists)\n"
        )
        assert "RL201" in rules_of(src, path=ADAPTER_PATH)

    def test_contract_compliant_search_passes(self):
        src = (
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        ids, dists = self._inner.raw_topk(queries, k)\n"
            "        out_ids, out_dists = normalize_results(ids, dists)\n"
            "        return SearchResult(indices=out_ids, distances=out_dists)\n"
        )
        assert "RL201" not in rules_of(src, path=ADAPTER_PATH)

    def test_native_baseline_class_is_exempt(self):
        src = (
            "class HnswIndex:\n"
            "    def search(self, queries, k):\n"
            "        return self._ids, self._dists\n"
        )
        assert "RL201" not in rules_of(src, path="repro/baselines/hnsw.py")

    def test_out_of_scope_path_is_exempt(self):
        src = (
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        return self._inner.raw_topk(queries, k)\n"
        )
        assert "RL201" not in rules_of(src, path="repro/bench/mod.py")

    def test_waiver_suppresses(self):
        src = (
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        # repro-lint: disable=RL201 — legacy shim\n"
            "        return self._inner.raw_topk(queries, k)\n"
        )
        assert "RL201" not in rules_of(src, path=ADAPTER_PATH)


class TestRL202:
    def test_int64_ids_into_searchresult_are_flagged(self):
        src = (
            "import numpy as np\n"
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        ids = np.zeros((2, k), dtype=np.int64)\n"
            "        return SearchResult(indices=ids, distances=None)\n"
        )
        assert "RL202" in rules_of(src, path=ADAPTER_PATH)

    def test_normalized_ids_pass(self):
        src = (
            "import numpy as np\n"
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        ids = np.zeros((2, k), dtype=np.int64)\n"
            "        ids, dists = normalize_results(ids, ids)\n"
            "        return SearchResult(indices=ids, distances=dists)\n"
        )
        assert "RL202" not in rules_of(src, path=ADAPTER_PATH)

    def test_float_equality_on_result_path_is_flagged(self):
        src = (
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        ids, dists = normalize_results(*self._raw(queries, k))\n"
            "        mask = dists == 0.0\n"
            "        return SearchResult(indices=ids, distances=dists)\n"
        )
        assert "RL202" in rules_of(src, path=ADAPTER_PATH)

    def test_waiver_suppresses(self):
        src = (
            "import numpy as np\n"
            "class FlatAnnIndex:\n"
            "    kind = 'flat'\n"
            "    def search(self, queries, k):\n"
            "        ids = np.zeros((2, k), dtype=np.int64)\n"
            "        # repro-lint: disable=RL202 — ids proven < 2**31\n"
            "        return SearchResult(indices=ids, distances=None)\n"
        )
        assert "RL202" not in rules_of(src, path=ADAPTER_PATH)


class TestRL203:
    def test_builder_drift_is_flagged(self):
        src = (
            "INDEX_KINDS = ('cagra', 'flat')\n"
            "_BUILDERS = {'cagra': None}\n"
        )
        assert "RL203" in rules_of(src)

    def test_extra_builder_is_flagged(self):
        src = (
            "INDEX_KINDS = ('cagra',)\n"
            "_BUILDERS = {'cagra': None, 'flat': None}\n"
        )
        assert "RL203" in rules_of(src)

    def test_synced_registries_pass(self):
        src = (
            "INDEX_KINDS = ('cagra', 'flat')\n"
            "_BUILDERS = {'cagra': None, 'flat': None}\n"
        )
        assert "RL203" not in rules_of(src)

    def test_missing_format_is_flagged(self):
        src = (
            "INDEX_KINDS = ('cagra', 'flat')\n"
            "_BUILDERS = {'cagra': None, 'flat': None}\n"
            "INDEX_FORMATS = [IndexFormat('cagra', None, None, None, None)]\n"
        )
        assert "RL203" in rules_of(src)

    def test_cross_file_drift_is_detected(self, tmp_path, capsys):
        (tmp_path / "factory.py").write_text(
            "__all__ = ['INDEX_KINDS']\n"
            "INDEX_KINDS = ('cagra', 'flat')\n"
            "_BUILDERS = {'cagra': None, 'flat': None}\n"
        )
        (tmp_path / "persistence.py").write_text(
            "__all__ = ['INDEX_FORMATS']\n"
            "INDEX_FORMATS = [IndexFormat('cagra', None)]\n"
        )
        assert main(["lint", str(tmp_path), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "RL203" in out and "flat" in out

    def test_waiver_suppresses(self):
        src = (
            "# repro-lint: disable-file=RL203\n"
            "INDEX_KINDS = ('cagra', 'flat')\n"
            "_BUILDERS = {'cagra': None}\n"
        )
        assert "RL203" not in rules_of(src)


# ----------------------------------------------------------------------
# committed fixtures through the CLI
# ----------------------------------------------------------------------
class TestFixturesThroughCli:
    @pytest.mark.parametrize(
        "fixtures, rule_id",
        [
            (CONCURRENCY_FIXTURES, "RL006"),
            (CONCURRENCY_FIXTURES, "RL101"),
            (CONCURRENCY_FIXTURES, "RL102"),
            (CONCURRENCY_FIXTURES, "RL103"),
            (CONCURRENCY_FIXTURES, "RL104"),
            (API_FIXTURES, "RL201"),
            (API_FIXTURES, "RL202"),
            (API_FIXTURES, "RL203"),
        ],
    )
    def test_each_fixture_fails_strict_lint(self, fixtures, rule_id, capsys):
        fixture = next(fixtures.glob(f"{rule_id.lower()}_*.py"))
        assert main(["lint", str(fixture), "--strict"]) == 1
        assert rule_id in capsys.readouterr().out


# ----------------------------------------------------------------------
# thread-sanitizer-lite (RL301 / RL302)
# ----------------------------------------------------------------------
def _run_thread(fn, name="worker"):
    thread = threading.Thread(target=fn, name=name)
    thread.start()
    thread.join()


class TestSanitizerDeadlock:
    def test_seeded_two_lock_cycle_is_flagged(self):
        with ThreadSanitizer() as sanitizer:
            a, b = threading.Lock(), threading.Lock()

            def order_ab():
                with a:
                    with b:
                        pass

            def order_ba():
                with b:
                    with a:
                        pass

            _run_thread(order_ab, "t-ab")
            _run_thread(order_ba, "t-ba")
        reports = [v for v in sanitizer.violations() if v.rule == "RL301"]
        assert len(reports) == 1
        assert "potential deadlock" in reports[0].message
        # both acquisition sites are named in the report
        assert reports[0].message.count(__file__.rsplit(os.sep, 1)[-1]) >= 1

    def test_consistent_order_is_clean(self):
        with ThreadSanitizer() as sanitizer:
            a, b = threading.Lock(), threading.Lock()

            def nested():
                with a:
                    with b:
                        pass

            _run_thread(nested, "t-1")
            _run_thread(nested, "t-2")
        assert sanitizer.violations() == []

    def test_lock_factory_is_restored_after_disable(self):
        original = threading.Lock
        with ThreadSanitizer():
            assert threading.Lock is not original
        assert threading.Lock is original

    def test_waiver_at_acquisition_site_suppresses(self, tmp_path):
        module = tmp_path / "seeded_deadlock_mod.py"
        module.write_text(
            "import threading\n"
            "def run():\n"
            "    a, b = threading.Lock(), threading.Lock()\n"
            "    def ab():\n"
            "        with a:\n"
            "            with b:\n"
            "                pass\n"
            "    def ba():\n"
            "        with b:\n"
            "            # repro-lint: disable=RL301 — seeded fixture\n"
            "            with a:\n"
            "                pass\n"
            "    for fn in (ab, ba):\n"
            "        t = threading.Thread(target=fn)\n"
            "        t.start()\n"
            "        t.join()\n"
        )
        sys.path.insert(0, str(tmp_path))
        try:
            import seeded_deadlock_mod

            with ThreadSanitizer() as sanitizer:
                seeded_deadlock_mod.run()
            assert sanitizer.violations() == []
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("seeded_deadlock_mod", None)


class TestSanitizerWriteRaces:
    def test_prefix_executor_stats_race_is_tagged(self):
        """Regression: the pre-fix ``stats.retries += 1`` pattern — two
        threads doing unlocked read-modify-write — must be tagged RL302."""
        from repro.parallel.executor import ExecutorStats

        with ThreadSanitizer() as sanitizer:
            stats = ExecutorStats()
            barrier = threading.Barrier(2)

            def hammer():
                barrier.wait()
                for _ in range(500):
                    stats.retries = stats.retries + 1

            threads = [
                threading.Thread(target=hammer, name=f"h{i}") for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        reports = [v for v in sanitizer.violations() if v.rule == "RL302"]
        assert len(reports) == 1
        assert "ExecutorStats.retries" in reports[0].message

    def test_fixed_increment_path_is_clean_and_consistent(self):
        from repro.parallel.executor import ExecutorStats

        with ThreadSanitizer() as sanitizer:
            stats = ExecutorStats()

            def hammer():
                for _ in range(500):
                    stats.increment("retries")

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert stats.retries == 2000
        assert sanitizer.violations() == []

    def test_single_thread_handoff_is_not_tagged(self):
        from repro.parallel.executor import ExecutorStats

        with ThreadSanitizer() as sanitizer:
            stats = ExecutorStats()

            def solo():
                for _ in range(100):
                    stats.completed = stats.completed + 1

            _run_thread(solo)
        assert sanitizer.violations() == []


class TestSanitizerCli:
    def _run_cli(self, tmp_path, test_source):
        test_file = tmp_path / "test_sanitize_target.py"
        test_file.write_text(test_source)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--sanitize",
             str(test_file)],
            capture_output=True, text=True, env=env, timeout=120,
        )

    def test_sanitize_flags_seeded_deadlock(self, tmp_path):
        proc = self._run_cli(tmp_path, (
            "import threading\n"
            "def test_lock_order_cycle():\n"
            "    a, b = threading.Lock(), threading.Lock()\n"
            "    def ab():\n"
            "        with a:\n"
            "            with b:\n"
            "                pass\n"
            "    def ba():\n"
            "        with b:\n"
            "            with a:\n"
            "                pass\n"
            "    for fn in (ab, ba):\n"
            "        t = threading.Thread(target=fn)\n"
            "        t.start()\n"
            "        t.join()\n"
        ))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "RL301" in proc.stdout

    def test_sanitize_clean_run_exits_zero(self, tmp_path):
        proc = self._run_cli(tmp_path, (
            "import threading\n"
            "def test_single_lock():\n"
            "    lock = threading.Lock()\n"
            "    with lock:\n"
            "        pass\n"
        ))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
