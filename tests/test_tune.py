"""Tests for repro.tune: the auto-tuner and tuned-profile persistence."""

import json

import numpy as np
import pytest

from repro import SearchConfig
from repro.serve import CagraServer, ServeConfig
from repro.tune import (
    ProfileError,
    ProfileWarning,
    TuneGrid,
    TunedProfile,
    dataset_fingerprint,
    find_profile,
    load_profile,
    profile_filename,
    resolve_profile,
    sniff_profile,
    tune_search_params,
)

SMALL_GRID = TuneGrid(itopk_values=(16, 64), search_widths=(1, 2))


@pytest.fixture(scope="module")
def tuned(small_index, small_queries):
    return tune_search_params(
        small_index,
        k=10,
        recall_target=0.9,
        queries=small_queries,
        grid=SMALL_GRID,
        created="2026-08-08",
    )


class TestTuneGrid:
    def test_drops_itopk_below_k(self):
        points = list(TuneGrid(itopk_values=(8, 16, 64)).points(k=10))
        assert all(itopk >= 10 for itopk, _, _, _ in points)

    def test_never_empty(self):
        points = list(TuneGrid(itopk_values=(8,)).points(k=32))
        assert points and points[0][0] == 32

    def test_default_grid_sweeps_only_auto_team(self):
        """The v1-sized grid: team_size stays on the auto setting unless
        the caller opts into the v2 axis."""
        points = list(TuneGrid(itopk_values=(16,), search_widths=(1,)).points(k=10))
        assert [team for _, _, _, team in points] == [0]

    def test_team_size_axis_multiplies_grid(self):
        grid = TuneGrid(
            itopk_values=(16,), search_widths=(1,), team_size_values=(0, 8, 32)
        )
        assert [team for _, _, _, team in grid.points(k=10)] == [0, 8, 32]


class TestTuner:
    def test_chosen_meets_target(self, tuned):
        assert tuned.meets_target
        assert tuned.chosen.recall >= 0.9

    def test_chosen_beats_baseline_qps(self, tuned):
        """The itopk=64 default is itself on the grid, so the chosen
        point can only be at least as fast (acceptance criterion)."""
        assert tuned.baseline.itopk == 64
        assert tuned.chosen.qps >= tuned.baseline.qps
        assert tuned.speedup() >= 1.0

    def test_sweep_covers_grid(self, tuned):
        combos = {(p.itopk, p.search_width) for p in tuned.sweep}
        assert combos == {(16, 1), (16, 2), (64, 1), (64, 2)}

    def test_fingerprints_dataset(self, tuned, small_index):
        assert tuned.fingerprint == dataset_fingerprint(small_index.dataset)
        assert tuned.matches(small_index.dataset, "cagra", 10)
        assert not tuned.matches(small_index.dataset, "cagra", 5)

    def test_on_stage_events(self, small_index, small_queries):
        from repro.api import StageRecorder

        recorder = StageRecorder()
        tune_search_params(
            small_index, k=10, queries=small_queries[:5],
            grid=TuneGrid(itopk_values=(16,), search_widths=(1,)),
            on_stage=recorder.on_stage,
        )
        names = [event.name for event in recorder.events]
        assert names.count("tune.point") == 1

    def test_unreachable_target_flags_profile(self, small_index, small_queries):
        profile = tune_search_params(
            small_index, k=10, recall_target=1.1, queries=small_queries[:5],
            grid=TuneGrid(itopk_values=(16,), search_widths=(1,)),
        )
        assert not profile.meets_target


class TestProfileRoundTrip:
    def test_save_load_equal(self, tuned, tmp_path):
        path = str(tmp_path / "profile.json")
        tuned.save(path)
        assert load_profile(path) == tuned

    def test_sniff(self, tuned, tmp_path):
        path = str(tmp_path / "profile.json")
        tuned.save(path)
        meta = sniff_profile(path)
        from repro.tune.profile import PROFILE_SCHEMA_VERSION

        assert meta == {
            "fingerprint": tuned.fingerprint,
            "index_kind": "cagra",
            "k": 10,
            "version": PROFILE_SCHEMA_VERSION,
        }
        assert sniff_profile(str(tmp_path / "missing.json")) is None

    def test_loaded_config_equals_swept_optimum(self, tuned, tmp_path):
        """save → load → applied config is exactly the swept optimum."""
        path = str(tmp_path / "profile.json")
        tuned.save(path)
        config = load_profile(path).search_config()
        best = max(
            (p for p in tuned.sweep if p.recall >= 0.9), key=lambda p: p.qps
        )
        assert (config.itopk, config.search_width, config.max_iterations) == (
            best.itopk, best.search_width, best.max_iterations,
        )

    def test_base_and_overrides(self, tuned):
        config = tuned.search_config(
            base=SearchConfig(seed=5, team_size=8), itopk=96
        )
        assert config.seed == 5 and config.team_size == 8
        assert config.itopk == 96  # explicit override beats the profile
        assert config.search_width == tuned.chosen.search_width

    def test_newer_schema_rejected(self, tuned, tmp_path):
        path = str(tmp_path / "future.json")
        payload = tuned.to_dict()
        payload["version"] = 99
        (tmp_path / "future.json").write_text(json.dumps(payload))
        with pytest.raises(ProfileError, match="newer than supported"):
            load_profile(path)

    def test_malformed_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "k": "not-even"}))
        with pytest.raises(ProfileError):
            load_profile(str(path))

    def test_v1_payload_read_compat(self, tuned, tmp_path):
        """A v1 profile (no team_size anywhere) loads as team_size=0/auto
        and still applies cleanly over a base config."""
        payload = tuned.to_dict()
        payload["version"] = 1
        for point in [payload["chosen"], payload["baseline"], *payload["sweep"]]:
            point.pop("team_size", None)
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload))
        profile = load_profile(str(path))
        assert profile.version == 1
        assert profile.chosen.team_size == 0
        assert all(p.team_size == 0 for p in profile.sweep)
        config = profile.search_config(base=SearchConfig(team_size=16))
        assert config.itopk == profile.chosen.itopk
        assert config.team_size == 16  # auto never clobbers the base

    def test_tuned_team_size_applies_over_base(self, tuned):
        """A genuinely swept team_size (v2) does win over the base."""
        point = tuned.chosen
        v2_point = type(point)(
            itopk=point.itopk,
            search_width=point.search_width,
            max_iterations=point.max_iterations,
            recall=point.recall,
            qps=point.qps,
            distance_computations_per_query=point.distance_computations_per_query,
            team_size=8,
        )
        config = SearchConfig.from_mapping(
            v2_point.config_mapping(), base=SearchConfig(team_size=16)
        )
        assert config.team_size == 8


class TestResolveProfile:
    def test_explicit_path(self, tuned, small_index, tmp_path):
        path = str(tmp_path / "profile.json")
        tuned.save(path)
        assert resolve_profile(
            path, data=small_index.dataset, index_kind="cagra", k=10
        ) == tuned

    def test_stale_fingerprint_warns_and_falls_back(self, tuned, tmp_path):
        path = str(tmp_path / "profile.json")
        tuned.save(path)
        other = np.zeros((50, 4), dtype=np.float32)
        with pytest.warns(ProfileWarning, match="tuned for"):
            resolved = resolve_profile(path, data=other, index_kind="cagra", k=10)
        assert resolved is None

    def test_corrupt_file_warns_and_falls_back(self, small_index, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{definitely not json")
        with pytest.warns(ProfileWarning, match="ignoring profile"):
            resolved = resolve_profile(
                str(path), data=small_index.dataset, index_kind="cagra", k=10
            )
        assert resolved is None

    def test_auto_finds_canonical_file(self, tuned, small_index, tmp_path):
        tuned.save(str(tmp_path / profile_filename(tuned.fingerprint, "cagra", 10)))
        assert find_profile(
            str(tmp_path), small_index.dataset, "cagra", 10
        ) == tuned
        assert resolve_profile(
            "auto", data=small_index.dataset, index_kind="cagra", k=10,
            profile_dir=str(tmp_path),
        ) == tuned

    def test_auto_scans_noncanonical_names(self, tuned, small_index, tmp_path):
        tuned.save(str(tmp_path / "whatever.json"))
        assert find_profile(
            str(tmp_path), small_index.dataset, "cagra", 10
        ) == tuned

    def test_auto_empty_dir_warns(self, small_index, tmp_path):
        with pytest.warns(ProfileWarning, match="no tuned profile"):
            resolved = resolve_profile(
                "auto", data=small_index.dataset, index_kind="cagra", k=10,
                profile_dir=str(tmp_path),
            )
        assert resolved is None

    def test_empty_spec_is_silent_none(self, small_index):
        assert resolve_profile(
            "", data=small_index.dataset, index_kind="cagra", k=10
        ) is None


class TestServeConfigProfile:
    def test_profile_applied_to_server(self, tuned, small_index, tmp_path):
        path = str(tmp_path / "profile.json")
        tuned.save(path)
        server = CagraServer(
            small_index,
            ServeConfig(profile=path, default_k=10),
            search_config=SearchConfig(seed=9),
        )
        assert server.search_config.itopk == tuned.chosen.itopk
        assert server.search_config.search_width == tuned.chosen.search_width
        assert server.search_config.seed == 9  # base config preserved

    def test_stale_profile_leaves_defaults(self, tuned, small_index, tmp_path):
        path = str(tmp_path / "profile.json")
        tuned.save(path)
        with pytest.warns(ProfileWarning):
            server = CagraServer(
                small_index,
                ServeConfig(profile=path, default_k=5),  # tuned for k=10
                search_config=SearchConfig(itopk=48),
            )
        assert server.search_config.itopk == 48


class TestFingerprint:
    def test_sensitive_to_content_and_shape(self):
        a = np.arange(2000, dtype=np.float32).reshape(100, 20)
        assert dataset_fingerprint(a) == dataset_fingerprint(a.copy())
        assert dataset_fingerprint(a) != dataset_fingerprint(a * 2)
        assert dataset_fingerprint(a) != dataset_fingerprint(a[:50])
        assert dataset_fingerprint(a) != dataset_fingerprint(a.astype(np.float64))
