"""Unit tests for repro.datasets — generators, registry, texmex IO."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    load_dataset,
    read_fvecs,
    read_ivecs,
    write_fvecs,
    write_ivecs,
)
from repro.datasets.io import read_bvecs
from repro.datasets.synthetic import clustered_gaussian, hard_heavy_tailed, make_queries


class TestGenerators:
    def test_shapes_and_dtype(self):
        data = clustered_gaussian(500, 96, seed=0)
        assert data.shape == (500, 96)
        assert data.dtype == np.float32

    def test_deterministic(self):
        a = clustered_gaussian(200, 32, seed=5)
        b = clustered_gaussian(200, 32, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self):
        a = clustered_gaussian(200, 32, seed=5)
        b = clustered_gaussian(200, 32, seed=6)
        assert not np.array_equal(a, b)

    def test_hard_is_normalized(self):
        data = hard_heavy_tailed(300, 64, seed=0)
        np.testing.assert_allclose(np.linalg.norm(data, axis=1), 1.0, rtol=1e-4)

    def test_hard_unnormalized_option(self):
        data = hard_heavy_tailed(300, 64, seed=0, normalize=False)
        norms = np.linalg.norm(data, axis=1)
        assert norms.std() > 0.01

    def test_clustered_has_structure(self):
        """Clustered data must have lower NN distances than iid Gaussian."""
        rng = np.random.default_rng(0)
        clustered = clustered_gaussian(400, 64, seed=1)
        iid = rng.standard_normal((400, 64)).astype(np.float32)

        def mean_nn(data):
            d = ((data[:, None].astype(np.float64) - data[None]) ** 2).sum(-1)
            np.fill_diagonal(d, np.nan)
            return np.nanmean(np.nanmin(d, axis=1) / np.nanmean(d, axis=1))

        assert mean_nn(clustered) < mean_nn(iid)

    def test_knn_graph_connectivity(self):
        """The generated manifold must give connected k-NN graphs —
        the property that makes graph ANN meaningful (see module doc)."""
        from repro.core.metrics import weak_connected_components
        from repro.core.nn_descent import brute_force_knn_graph

        data = clustered_gaussian(600, 48, seed=2)
        knn = brute_force_knn_graph(data, 16)
        assert weak_connected_components(knn.graph) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            clustered_gaussian(0, 16)
        with pytest.raises(ValueError):
            hard_heavy_tailed(10, 1)

    def test_make_queries_shape(self):
        data = clustered_gaussian(300, 32, seed=0)
        queries = make_queries(data, 17, seed=1)
        assert queries.shape == (17, 32)
        assert queries.dtype == np.float32

    def test_make_queries_not_dataset_members(self):
        data = clustered_gaussian(300, 32, seed=0)
        queries = make_queries(data, 10, seed=1)
        d = ((queries[:, None].astype(np.float64) - data[None]) ** 2).sum(-1)
        assert d.min() > 1e-6

    def test_make_queries_count_validation(self):
        with pytest.raises(ValueError):
            make_queries(np.zeros((5, 3), dtype=np.float32), 0)


class TestRegistry:
    def test_table1_datasets_present(self):
        """The registry mirrors Table I of the paper."""
        expected = {
            "sift-1m": (128, 1_000_000, 32),
            "gist-1m": (960, 1_000_000, 48),
            "glove-200": (200, 1_183_514, 80),
            "nytimes": (256, 290_000, 64),
            "deep-1m": (96, 1_000_000, 32),
            "deep-10m": (96, 10_000_000, 32),
            "deep-100m": (96, 100_000_000, 32),
        }
        for name, (dim, size, degree) in expected.items():
            spec = DATASETS[name]
            assert spec.dim == dim
            assert spec.original_size == size
            assert spec.graph_degree == degree

    def test_load_scaled(self):
        bundle = load_dataset("deep-1m", scale=500, num_queries=10)
        assert bundle.data.shape == (500, 96)
        assert bundle.queries.shape == (10, 96)
        assert bundle.scale_factor == pytest.approx(1_000_000 / 500)

    def test_load_default_scale(self):
        bundle = load_dataset("nytimes", scale=300, num_queries=5)
        assert bundle.spec.metric == "inner_product"

    def test_case_insensitive(self):
        assert load_dataset("DEEP-1M", scale=100, num_queries=2).spec.name == "deep-1m"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_hard_datasets_use_hard_generator(self):
        glove = load_dataset("glove-200", scale=300, num_queries=2)
        np.testing.assert_allclose(np.linalg.norm(glove.data, axis=1), 1.0, rtol=1e-4)


class TestTexmexIo:
    def test_fvecs_roundtrip(self, tmp_path):
        data = np.random.default_rng(0).standard_normal((20, 7)).astype(np.float32)
        path = str(tmp_path / "x.fvecs")
        write_fvecs(path, data)
        loaded = read_fvecs(path)
        np.testing.assert_array_equal(loaded, data)

    def test_ivecs_roundtrip(self, tmp_path):
        data = np.random.default_rng(0).integers(0, 1000, size=(15, 10)).astype(np.int32)
        path = str(tmp_path / "x.ivecs")
        write_ivecs(path, data)
        np.testing.assert_array_equal(read_ivecs(path), data)

    def test_limit(self, tmp_path):
        data = np.arange(50, dtype=np.float32).reshape(10, 5)
        path = str(tmp_path / "x.fvecs")
        write_fvecs(path, data)
        loaded = read_fvecs(path, limit=3)
        np.testing.assert_array_equal(loaded, data[:3])

    def test_bvecs(self, tmp_path):
        # Hand-roll a bvecs file: int32 dim header + uint8 body per row.
        path = str(tmp_path / "x.bvecs")
        rows = np.random.default_rng(0).integers(0, 256, size=(6, 4)).astype(np.uint8)
        with open(path, "wb") as handle:
            for row in rows:
                np.array([4], dtype="<i4").tofile(handle)
                row.tofile(handle)
        np.testing.assert_array_equal(read_bvecs(path), rows)

    def test_corrupt_file_rejected(self, tmp_path):
        path = str(tmp_path / "bad.fvecs")
        with open(path, "wb") as handle:
            np.array([7], dtype="<i4").tofile(handle)
            np.zeros(3, dtype="<f4").tofile(handle)  # truncated record
        with pytest.raises(ValueError, match="not a multiple"):
            read_fvecs(path)

    def test_empty_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.fvecs")
        open(path, "wb").close()
        with pytest.raises(ValueError, match="empty"):
            read_fvecs(path)

    def test_write_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError):
            write_fvecs(str(tmp_path / "x.fvecs"), np.zeros(5, dtype=np.float32))
