"""Property-based tests (hypothesis) for the core data structures.

Invariants checked:

* hash tables behave like Python sets (insert-once semantics);
* bitonic sort equals NumPy sort for any key array;
* merge_topm equals a reference top-M selection for any inputs;
* detour-route counting equals the literal O(d²) reference on random
  graphs;
* NN-descent merge keeps rows sorted and deduplicated;
* graph reverse lists invert the edge relation exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.graph import FixedDegreeGraph, INDEX_MASK
from repro.core.hashtable import StandardHashTable
from repro.core.nn_descent import _merge_candidates
from repro.core.optimize import count_detourable_routes
from repro.core.topm import bitonic_sort, merge_topm

MAX_EXAMPLES = 40


@st.composite
def key_batches(draw):
    size = draw(st.integers(1, 60))
    return draw(
        arrays(np.uint32, size, elements=st.integers(0, 2**31 - 1))
    )


class TestHashTableProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(keys=key_batches())
    def test_behaves_like_set(self, keys):
        table = StandardHashTable(10)
        reference: set[int] = set()
        fresh = table.insert_unique(keys)
        for key, was_fresh in zip(keys.tolist(), fresh.tolist()):
            assert was_fresh == (key not in reference)
            reference.add(key)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(keys=key_batches())
    def test_contains_after_insert(self, keys):
        table = StandardHashTable(10)
        table.insert_unique(keys)
        for key in keys.tolist():
            assert table.contains(int(key))


class TestBitonicSortProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        keys=arrays(
            np.float64,
            st.integers(1, 80),
            elements=st.floats(
                allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
            ),
        )
    )
    def test_matches_numpy_sort(self, keys):
        values = np.arange(len(keys), dtype=np.uint32)
        sorted_keys, sorted_values = bitonic_sort(keys, values)
        np.testing.assert_allclose(sorted_keys, np.sort(keys))
        np.testing.assert_allclose(keys[sorted_values], sorted_keys)


class TestMergeTopmProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        topm=st.integers(1, 32),
        n_top=st.integers(0, 32),
        n_cand=st.integers(0, 64),
        seed=st.integers(0, 10_000),
    )
    def test_matches_reference_selection(self, topm, n_top, n_cand, seed):
        rng = np.random.default_rng(seed)
        top_ids = rng.choice(1000, size=n_top, replace=False).astype(np.uint32)
        top_d = np.sort(rng.random(n_top))
        cand_ids = rng.choice(np.arange(1000, 3000), size=n_cand, replace=False).astype(
            np.uint32
        )
        cand_d = rng.random(n_cand)
        ids, dists = merge_topm(top_ids, top_d, cand_ids, cand_d, topm)
        assert len(ids) == topm
        # Finite part equals the best of the union.
        union = np.sort(np.concatenate([top_d, cand_d]))[:topm]
        finite = dists[np.isfinite(dists)]
        np.testing.assert_allclose(finite, union[: len(finite)])
        # Sorted ascending, dummies (if any) at the end.
        assert (np.diff(dists[np.isfinite(dists)]) >= 0).all()

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 16))
    def test_no_duplicate_ids(self, seed, m):
        rng = np.random.default_rng(seed)
        pool = rng.choice(50, size=20, replace=True).astype(np.uint32)
        ids, _ = merge_topm(pool[:8], rng.random(8), pool[8:], rng.random(12), m)
        real = ids[ids != INDEX_MASK]
        bare = real & INDEX_MASK
        assert len(np.unique(bare)) == len(bare)


def _random_graph(rng, n, d):
    return np.array(
        [rng.choice([j for j in range(n) if j != i], size=d, replace=False)
         for i in range(n)]
    )


class TestDetourCountProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(10, 40), d=st.integers(2, 6))
    def test_matches_literal_reference(self, seed, n, d):
        from tests.test_optimize import reference_detour_counts

        rng = np.random.default_rng(seed)
        d = min(d, n - 1)
        neighbors = _random_graph(rng, n, d)
        fast = count_detourable_routes(neighbors, block=7)
        slow = reference_detour_counts(neighbors)
        np.testing.assert_array_equal(fast, slow)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_counts_bounded(self, seed):
        rng = np.random.default_rng(seed)
        neighbors = _random_graph(rng, 30, 5)
        counts = count_detourable_routes(neighbors)
        # An edge at rank r has at most r routes through lower-rank hops.
        bound = np.arange(5)[None, :]
        assert (counts <= bound).all() or (counts <= 5 * 5).all()


class TestNnDescentMergeProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(2, 12))
    def test_rows_sorted_and_unique(self, seed, k):
        rng = np.random.default_rng(seed)
        rows = 3
        ids = rng.integers(0, 100, size=(rows, k)).astype(np.int64)
        dists = np.sort(rng.random((rows, k)), axis=1)
        cand = rng.integers(0, 100, size=(rows, k)).astype(np.int64)
        cand_d = rng.random((rows, k))
        new_ids, new_dists, _ = _merge_candidates(ids, dists, cand, cand_d, k)
        for row_ids, row_dists in zip(new_ids, new_dists):
            finite = np.isfinite(row_dists)
            assert (np.diff(row_dists[finite]) >= 0).all()
            assert len(np.unique(row_ids[finite])) == finite.sum()


class TestBatchMergeProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        rows=st.integers(1, 4),
        m=st.integers(1, 12),
        n_cand=st.integers(0, 20),
    )
    def test_vectorized_merge_matches_scalar(self, seed, rows, m, n_cand):
        from repro.core.topm import merge_topm
        from repro.core.traversal import _merge_rows

        rng = np.random.default_rng(seed)
        topm_ids = np.stack(
            [rng.choice(200, size=m, replace=False) for _ in range(rows)]
        ).astype(np.uint32)
        topm_d = np.sort(rng.random((rows, m)), axis=1)
        cand_ids = rng.choice(200, size=(rows, n_cand), replace=True).astype(np.uint32)
        cand_d = rng.random((rows, n_cand))
        fast_ids, fast_d = _merge_rows(topm_ids, topm_d, cand_ids, cand_d, m)
        for r in range(rows):
            ref_ids, ref_d = merge_topm(
                topm_ids[r], topm_d[r], cand_ids[r], cand_d[r], m
            )
            np.testing.assert_allclose(fast_d[r], ref_d)
            finite = np.isfinite(ref_d)
            np.testing.assert_array_equal(fast_ids[r][finite], ref_ids[finite])


class TestReverseListProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(4, 30), d=st.integers(1, 4))
    def test_reverse_inverts_edges(self, seed, n, d):
        rng = np.random.default_rng(seed)
        d = min(d, n - 1)
        graph = FixedDegreeGraph(_random_graph(rng, n, d).astype(np.uint32))
        reverse = graph.reversed_edge_lists()
        forward_edges = {
            (i, int(j)) for i in range(n) for j in graph.neighbors[i]
        }
        reverse_edges = {
            (int(src), node) for node in range(n) for src in reverse[node]
        }
        assert forward_edges == reverse_edges


class TestSearchContractProperties:
    """End-to-end contract: for arbitrary small datasets, search returns
    k unique, in-range, distance-sorted ids, and never beats brute force."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(30, 120),
        dim=st.integers(3, 12),
        k=st.integers(1, 5),
    )
    def test_search_output_contract(self, seed, n, dim, k):
        from repro import CagraIndex, GraphBuildConfig, SearchConfig
        from repro.baselines import exact_search

        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim)).astype(np.float32)
        index = CagraIndex.build(
            data, GraphBuildConfig(graph_degree=4, nn_descent_iterations=3)
        )
        queries = rng.standard_normal((3, dim)).astype(np.float32)
        result = index.search(queries, k, SearchConfig(itopk=max(8, 2 * k)))
        _, exact_d = exact_search(data, queries, k)

        assert result.indices.shape == (3, k)
        assert (result.indices < n).all()
        for row_ids, row_d, best_d in zip(
            result.indices, result.distances, exact_d
        ):
            finite = np.isfinite(row_d)
            assert len(set(row_ids[finite].tolist())) == int(finite.sum())
            assert (np.diff(row_d[finite]) >= -1e-9).all()
            # ANN can never return a smaller distance than the exact best.
            if finite.any():
                assert row_d[0] >= best_d[0] - 1e-3

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fast_path_contract(self, seed):
        from repro import CagraIndex, GraphBuildConfig, SearchConfig

        rng = np.random.default_rng(seed)
        data = rng.standard_normal((80, 8)).astype(np.float32)
        index = CagraIndex.build(
            data, GraphBuildConfig(graph_degree=4, nn_descent_iterations=3)
        )
        queries = rng.standard_normal((4, 8)).astype(np.float32)
        result = index.search_fast(queries, 3, SearchConfig(itopk=8))
        assert result.indices.shape == (4, 3)
        assert (result.indices < 80).all()
