"""Per-rule unit tests for the repro invariant linter (RL001-RL005).

Every rule gets at least one positive case (the violation is reported)
and one negative case (compliant code passes), plus waiver handling and
CLI exit-code checks over the committed fixture files.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import RULES, lint_source

FIXTURES = Path(__file__).parent / "fixtures" / "lint" / "core"


def rules_of(source: str, path: str = "repro/core/mod.py") -> set[str]:
    return {v.rule for v in lint_source(source, path)}


# ----------------------------------------------------------------------
# RL001 — PARENT_FLAG masking
# ----------------------------------------------------------------------
class TestRL001:
    def test_unmasked_index_is_flagged(self):
        src = (
            "from repro.core.graph import PARENT_FLAG\n"
            "def f(data, ids):\n"
            "    flagged = ids | PARENT_FLAG\n"
            "    return data[flagged]\n"
        )
        assert "RL001" in rules_of(src)

    def test_masked_index_passes(self):
        src = (
            "from repro.core.graph import PARENT_FLAG, INDEX_MASK\n"
            "def f(data, ids):\n"
            "    flagged = ids | PARENT_FLAG\n"
            "    return data[flagged & INDEX_MASK]\n"
        )
        assert "RL001" not in rules_of(src)

    def test_augassign_taints_and_alias_propagates(self):
        src = (
            "from repro.core.graph import PARENT_FLAG\n"
            "def f(data, ids, pos):\n"
            "    ids[pos] |= PARENT_FLAG\n"
            "    alias = ids\n"
            "    return data[alias]\n"
        )
        assert "RL001" in rules_of(src)

    def test_cleansing_reassignment_untaints(self):
        src = (
            "from repro.core.graph import PARENT_FLAG, INDEX_MASK\n"
            "def f(data, ids):\n"
            "    ids = ids | PARENT_FLAG\n"
            "    ids = ids & INDEX_MASK\n"
            "    return data[ids]\n"
        )
        assert "RL001" not in rules_of(src)

    def test_take_along_axis_index_argument(self):
        src = (
            "import numpy as np\n"
            "from repro.core.graph import PARENT_FLAG\n"
            "def f(data, ids):\n"
            "    flagged = ids | PARENT_FLAG\n"
            "    return np.take_along_axis(data, flagged, axis=1)\n"
        )
        assert "RL001" in rules_of(src)

    def test_tainted_value_argument_is_not_an_index(self):
        src = (
            "import numpy as np\n"
            "from repro.core.graph import PARENT_FLAG\n"
            "def f(buffer, pos, entries):\n"
            "    flagged = entries | PARENT_FLAG\n"
            "    np.put_along_axis(buffer, pos, flagged, axis=1)\n"
        )
        assert "RL001" not in rules_of(src)


# ----------------------------------------------------------------------
# RL002 — explicit id dtypes
# ----------------------------------------------------------------------
class TestRL002:
    def test_arange_without_dtype_is_flagged(self):
        assert "RL002" in rules_of("import numpy as np\nids = np.arange(10)\n")

    def test_arange_with_dtype_passes(self):
        src = "import numpy as np\nids = np.arange(10, dtype=np.uint32)\n"
        assert "RL002" not in rules_of(src)

    def test_non_id_names_are_ignored(self):
        assert "RL002" not in rules_of("import numpy as np\nscores = np.zeros(4)\n")

    def test_negative_literal_comparison_is_flagged(self):
        src = "def f(ids):\n    return ids == -1\n"
        assert "RL002" in rules_of(src)

    def test_nonnegative_comparison_passes(self):
        src = "def f(ids, n):\n    return ids >= n\n"
        assert "RL002" not in rules_of(src)


# ----------------------------------------------------------------------
# RL003 — explicit Generators
# ----------------------------------------------------------------------
class TestRL003:
    def test_np_random_seed_is_flagged(self):
        assert "RL003" in rules_of("import numpy as np\nnp.random.seed(0)\n")

    def test_legacy_distribution_call_is_flagged(self):
        assert "RL003" in rules_of("import numpy as np\nx = np.random.rand(3)\n")

    def test_stdlib_random_is_flagged(self):
        assert "RL003" in rules_of("import random\nrandom.shuffle([1, 2])\n")

    def test_from_random_import_is_flagged(self):
        assert "RL003" in rules_of("from random import shuffle\n")

    def test_time_based_seed_is_flagged(self):
        src = "import time\nimport numpy as np\nrng = np.random.default_rng(int(time.time()))\n"
        assert "RL003" in rules_of(src)

    def test_default_rng_with_seed_passes(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.integers(0, 10, size=4, dtype=np.uint32)\n"
        )
        assert "RL003" not in rules_of(src)


# ----------------------------------------------------------------------
# RL004 — counted distance wrappers
# ----------------------------------------------------------------------
class TestRL004:
    def test_linalg_norm_in_core_is_flagged(self):
        src = "import numpy as np\ndef f(a, b):\n    return np.linalg.norm(a - b)\n"
        assert "RL004" in rules_of(src, path="repro/core/mod.py")

    def test_squared_diff_sum_is_flagged(self):
        src = "def f(a, b):\n    return ((a - b) ** 2).sum(axis=1)\n"
        assert "RL004" in rules_of(src, path="repro/baselines/mod.py")

    def test_matmul_is_flagged(self):
        src = "def f(a, b):\n    return -(a @ b.T)\n"
        assert "RL004" in rules_of(src, path="repro/core/mod.py")

    def test_self_dot_einsum_is_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(d):\n"
            "    return np.einsum('ij,ij->i', d, d)\n"
        )
        assert "RL004" in rules_of(src, path="repro/core/mod.py")

    def test_out_of_scope_path_passes(self):
        src = "import numpy as np\ndef f(a, b):\n    return np.linalg.norm(a - b)\n"
        assert "RL004" not in rules_of(src, path="repro/bench/mod.py")

    def test_distances_module_is_exempt(self):
        src = "import numpy as np\ndef f(a, b):\n    return np.linalg.norm(a - b)\n"
        assert "RL004" not in rules_of(src, path="repro/core/distances.py")

    def test_counted_wrapper_usage_passes(self):
        src = (
            "from repro.core.distances import distances_to_query\n"
            "def f(data, q, ids, report):\n"
            "    d = distances_to_query(data, q, ids)\n"
            "    report.distance_computations += len(ids)\n"
            "    return d\n"
        )
        assert "RL004" not in rules_of(src, path="repro/core/mod.py")


# ----------------------------------------------------------------------
# RL005 — float equality / __all__ drift
# ----------------------------------------------------------------------
class TestRL005:
    def test_float_equality_on_distances_is_flagged(self):
        src = "def f(dists):\n    return dists == 0.0\n"
        assert "RL005" in rules_of(src)

    def test_isinf_sentinel_check_passes(self):
        src = "import numpy as np\ndef f(dists):\n    return np.isinf(dists)\n"
        assert "RL005" not in rules_of(src)

    def test_integer_counter_comparison_passes(self):
        src = "def f(report):\n    return report.distance_computations == 0\n"
        assert "RL005" not in rules_of(src)

    def test_phantom_export_is_flagged(self):
        src = "__all__ = ['missing']\n"
        assert "RL005" in rules_of(src)

    def test_public_def_missing_from_all_is_flagged(self):
        src = "__all__ = []\n\ndef forgotten():\n    return 1\n"
        assert "RL005" in rules_of(src)

    def test_consistent_module_passes(self):
        src = "__all__ = ['f']\n\ndef f():\n    return 1\n\ndef _private():\n    return 2\n"
        assert "RL005" not in rules_of(src)


# ----------------------------------------------------------------------
# waivers
# ----------------------------------------------------------------------
class TestWaivers:
    def test_same_line_waiver_suppresses(self):
        src = (
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: disable=RL003 — fixture reason\n"
        )
        assert "RL003" not in rules_of(src)

    def test_preceding_line_waiver_suppresses(self):
        src = (
            "import numpy as np\n"
            "# repro-lint: disable=RL003 — fixture reason\n"
            "np.random.seed(0)\n"
        )
        assert "RL003" not in rules_of(src)

    def test_file_level_waiver_suppresses_everywhere(self):
        src = (
            "# repro-lint: disable-file=RL003\n"
            "import numpy as np\n\n\n"
            "np.random.seed(0)\n"
        )
        assert "RL003" not in rules_of(src)

    def test_waiver_only_covers_named_rule(self):
        src = (
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: disable=RL001 — wrong rule\n"
        )
        assert "RL003" in rules_of(src)


# ----------------------------------------------------------------------
# RL007 — @hot_path functions stay array-parallel
# ----------------------------------------------------------------------
_HOT_PREAMBLE = (
    "def hot_path(fn):\n"
    "    fn.__hot_path__ = True\n"
    "    return fn\n\n\n"
)


class TestRL007:
    def test_per_query_range_loop_is_flagged(self):
        src = _HOT_PREAMBLE + (
            "@hot_path\n"
            "def step(queries, batch):\n"
            "    for i in range(batch):\n"
            "        queries[i] += 1\n"
        )
        assert "RL007" in rules_of(src)

    def test_direct_iteration_over_queries_is_flagged(self):
        src = _HOT_PREAMBLE + (
            "@hot_path\n"
            "def step(queries):\n"
            "    for q in queries:\n"
            "        q.sum()\n"
        )
        assert "RL007" in rules_of(src)

    def test_shape_zero_loop_is_flagged(self):
        src = _HOT_PREAMBLE + (
            "@hot_path\n"
            "def step(rows):\n"
            "    for i in range(rows.shape[0]):\n"
            "        rows[i] += 1\n"
        )
        assert "RL007" in rules_of(src)

    def test_fixed_size_lane_and_probe_loops_pass(self):
        src = _HOT_PREAMBLE + (
            "@hot_path\n"
            "def step(self, keys, queries):\n"
            "    for _ in range(self.size):\n"
            "        pass\n"
            "    for lane in range(keys.shape[1]):\n"
            "        pass\n"
        )
        assert "RL007" not in rules_of(src)

    def test_while_convergence_loop_passes(self):
        src = _HOT_PREAMBLE + (
            "@hot_path\n"
            "def step(live, max_iter):\n"
            "    iteration = 0\n"
            "    while iteration < max_iter and live.any():\n"
            "        iteration += 1\n"
        )
        assert "RL007" not in rules_of(src)

    def test_undecorated_function_is_exempt(self):
        src = (
            "def cold(queries):\n"
            "    for q in queries:\n"
            "        q.sum()\n"
        )
        assert "RL007" not in rules_of(src)

    def test_nested_function_scope_is_its_own_decision(self):
        src = _HOT_PREAMBLE + (
            "@hot_path\n"
            "def step(queries):\n"
            "    def reporter():\n"
            "        for q in queries:\n"
            "            q.sum()\n"
            "    return reporter\n"
        )
        assert "RL007" not in rules_of(src)

    def test_waiver_with_reason_is_honoured(self):
        src = _HOT_PREAMBLE + (
            "@hot_path\n"
            "def step(queries, batch):\n"
            "    for i in range(batch):  # repro-lint: disable=RL007 — tail path\n"
            "        queries[i] += 1\n"
        )
        assert "RL007" not in rules_of(src)

    def test_shipped_traversal_engine_is_clean(self):
        import repro.core.traversal as traversal

        source = Path(traversal.__file__).read_text(encoding="utf-8")
        rules = {
            v.rule for v in lint_source(source, "src/repro/core/traversal.py")
        }
        assert "RL007" not in rules


# ----------------------------------------------------------------------
# registry + CLI over the committed fixtures
# ----------------------------------------------------------------------
class TestRegistryAndCli:
    def test_all_rules_registered(self):
        assert sorted(RULES) == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL101", "RL102", "RL103", "RL104",
            "RL201", "RL202",
        ]

    def test_project_rules_registered(self):
        from repro.lint import PROJECT_RULES

        assert sorted(PROJECT_RULES) == ["RL203"]

    @pytest.mark.parametrize(
        "rule_id", ["RL001", "RL002", "RL003", "RL004", "RL005", "RL007"]
    )
    def test_each_fixture_fails_strict_lint(self, rule_id, capsys):
        fixture = next(FIXTURES.glob(f"{rule_id.lower()}_*.py"))
        exit_code = main(["lint", str(fixture), "--strict"])
        out = capsys.readouterr().out
        assert exit_code != 0
        assert rule_id in out

    def test_json_format_is_parseable(self, capsys):
        fixture = next(FIXTURES.glob("rl003_*.py"))
        main(["lint", str(fixture), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1
        assert any(v["rule"] == "RL003" for v in payload["violations"])

    def test_non_strict_reports_but_exits_zero(self, capsys):
        fixture = next(FIXTURES.glob("rl001_*.py"))
        assert main(["lint", str(fixture)]) == 0
        assert "RL001" in capsys.readouterr().out

    def test_missing_path_is_an_error_not_a_clean_pass(self, capsys):
        # A typo'd path must not slip through a strict CI gate as
        # "clean: 0 violations in 0 file(s)".
        assert main(["lint", "/no/such/path.py"]) == 2
        assert "no such file" in capsys.readouterr().err
