"""Unit tests for repro.core.hashtable."""

import numpy as np
import pytest

from repro.core.hashtable import (
    ForgettableHashTable,
    StandardHashTable,
    standard_table_log2_size,
)


class TestStandardHashTable:
    def test_insert_then_contains(self):
        table = StandardHashTable(6)
        assert table.insert(42)
        assert table.contains(42)
        assert not table.contains(43)

    def test_double_insert_reports_seen(self):
        table = StandardHashTable(6)
        assert table.insert(7)
        assert not table.insert(7)

    def test_insert_unique_batch(self):
        table = StandardHashTable(8)
        keys = np.array([1, 2, 3, 2, 1], dtype=np.uint32)
        fresh = table.insert_unique(keys)
        np.testing.assert_array_equal(fresh, [True, True, True, False, False])

    def test_insert_unique_preserves_shape(self):
        table = StandardHashTable(8)
        keys = np.arange(6, dtype=np.uint32).reshape(2, 3)
        fresh = table.insert_unique(keys)
        assert fresh.shape == (2, 3)
        assert fresh.all()

    def test_collision_resolution(self):
        """Keys that collide must still all be retrievable (linear probing)."""
        table = StandardHashTable(4)  # 16 slots
        keys = np.arange(12, dtype=np.uint32) * 16  # many same-slot hashes
        for key in keys:
            assert table.insert(int(key))
        for key in keys:
            assert table.contains(int(key))

    def test_full_table_degrades_gracefully(self):
        table = StandardHashTable(2)  # 4 slots
        inserted = sum(table.insert(i) for i in range(10))
        assert inserted == 4
        # Subsequent inserts report "seen" (skipped distance computation).
        assert not table.insert(999)

    def test_occupancy(self):
        table = StandardHashTable(4)
        assert table.occupancy() == 0.0
        table.insert(1)
        table.insert(2)
        assert table.occupancy() == pytest.approx(2 / 16)

    def test_counters(self):
        table = StandardHashTable(8)
        table.insert(1)
        table.insert(1)
        table.contains(1)
        assert table.lookups == 3
        assert table.insertions == 1
        assert table.probes >= 3

    def test_reset_clears(self):
        table = StandardHashTable(6)
        table.insert(5)
        table.reset()
        assert not table.contains(5)
        assert table.resets == 1

    def test_size_bounds(self):
        with pytest.raises(ValueError):
            StandardHashTable(1)
        with pytest.raises(ValueError):
            StandardHashTable(29)

    def test_sizing_rule(self):
        """Paper: at least 2 * I_max * p * d entries."""
        log2 = standard_table_log2_size(max_iterations=32, search_width=1, degree=32)
        assert 2**log2 >= 2 * 32 * 1 * 32

    def test_sizing_rule_floor(self):
        assert standard_table_log2_size(1, 1, 1) >= 8


class TestForgettableHashTable:
    def test_reset_interval_one_resets_every_iteration(self):
        table = ForgettableHashTable(8, reset_interval=1)
        table.insert(100)
        assert table.maybe_reset(np.array([1, 2], dtype=np.uint32))
        assert not table.contains(100)
        # Top-M ids re-registered after the reset.
        assert table.contains(1)
        assert table.contains(2)

    def test_reset_interval_two(self):
        table = ForgettableHashTable(8, reset_interval=2)
        table.insert(100)
        assert not table.maybe_reset(np.array([], dtype=np.uint32))
        assert table.contains(100)
        assert table.maybe_reset(np.array([], dtype=np.uint32))
        assert not table.contains(100)

    def test_reset_counter(self):
        table = ForgettableHashTable(8, reset_interval=1)
        for _ in range(5):
            table.maybe_reset(np.array([], dtype=np.uint32))
        assert table.resets == 5

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            ForgettableHashTable(8, reset_interval=0)

    def test_forgetting_only_costs_recomputation(self):
        """After a reset, a forgotten node reads as fresh again — the
        behaviour the paper says cannot hurt correctness, only work."""
        table = ForgettableHashTable(8, reset_interval=1)
        assert table.insert(55)
        table.maybe_reset(np.array([], dtype=np.uint32))
        assert table.insert(55)  # fresh again: distance recomputed

    def test_paper_size_range(self):
        """Paper: 2^8 to 2^13 entries for the shared-memory table."""
        for log2 in range(8, 14):
            table = ForgettableHashTable(log2, reset_interval=2)
            assert table.size == 2**log2

    def test_reset_skips_index_mask_dummies(self):
        """Regression: unfilled top-M slots hold the INDEX_MASK sentinel
        (2**31 - 1), which is padding, not a visited node — re-registering
        it after a reset wasted a slot and could shadow a real id that
        hashes to the same bucket."""
        from repro.core.graph import INDEX_MASK

        table = ForgettableHashTable(8, reset_interval=1)
        topm = np.array([5, INDEX_MASK, 9, INDEX_MASK], dtype=np.uint32)
        assert table.maybe_reset(topm)
        assert table.contains(5)
        assert table.contains(9)
        assert not table.contains(int(INDEX_MASK))
        # Exactly the two real ids occupy slots.
        assert table.occupancy() == 2 / table.size

    def test_reset_with_all_dummy_topm(self):
        from repro.core.graph import INDEX_MASK

        table = ForgettableHashTable(8, reset_interval=1)
        table.insert(42)
        assert table.maybe_reset(np.full(4, INDEX_MASK, dtype=np.uint32))
        assert table.occupancy() == 0.0


class TestHashDistribution:
    def test_probe_counts_reasonable(self):
        """Multiplicative hashing should keep probe chains short at 50% load."""
        table = StandardHashTable(10)  # 1024 slots
        rng = np.random.default_rng(0)
        keys = rng.choice(2**31 - 1, size=512, replace=False).astype(np.uint32)
        table.insert_unique(keys)
        assert table.probes / table.lookups < 3.0


class TestOverflowSafety:
    """The 32-bit multiplicative hash must be exact and warning-free for
    every representable uint32 key (including flagged ids near 2^32)."""

    def test_extreme_keys_never_warn(self):
        import warnings

        table = StandardHashTable(12)
        extreme = [0, 1, 2**31 - 1, 2**31, 0x9E3779B9, 2**32 - 2]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning fails the test
            for key in extreme:
                assert table.insert(key)
            for key in extreme:
                assert table.contains(key)
                assert not table.insert(key)

    def test_key_masked_to_32_bits_before_mixing(self):
        table = StandardHashTable(10)
        # Keys equal mod 2^32 must land in the same slot.
        assert table._first_slot(5) == table._first_slot(5 + 2**32)

    def test_first_slot_in_range(self):
        for log2 in (2, 8, 12):
            table = StandardHashTable(log2)
            slots = {table._first_slot(k) for k in range(0, 2**32, 2**27)}
            assert all(0 <= s < table.size for s in slots)
            assert len(slots) > 1  # the hash actually mixes

    def test_sizing_rule_is_clamped_and_exact(self):
        # Exact powers of two must not round up a level.
        assert standard_table_log2_size(2, 1, 32) == max(8, (129 - 1).bit_length())
        # Gigantic parameters clamp to the constructor's supported range.
        log2 = standard_table_log2_size(10**6, 64, 64)
        assert log2 == 28
        StandardHashTable(log2)  # constructible without raising
