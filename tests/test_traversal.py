"""The array-parallel traversal engine (:mod:`repro.core.traversal`).

Acceptance suite for the hot-loop unification:

* all five production paths (reference-auto, fast, forced single-CTA,
  forced multi-CTA, sharded-fast) stay bitwise identical to the
  pre-engine regression fixture — ids, distances, and **every**
  ``CostReport`` counter the fixture pins;
* both reference dispatch arms (the scalar executable specification for
  small batches, the array-parallel slab for large ones) produce the
  same pinned results when forced onto the other arm's batch shape;
* fp16 dataset storage keeps recall within 0.01 of fp32 with mostly
  stable ids, halves the stamped storage width, and is deterministic;
* the chunk-size heuristic accounts for the per-live-query slab width
  (an fp16 engine never gets *smaller* chunks than fp32);
* the ``search_batch_fast`` / ``search_single_query`` deprecation shims
  warn and forward.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

import repro.core.traversal as traversal
from repro.baselines.bruteforce import exact_search
from repro.core.config import GraphBuildConfig, SearchConfig
from repro.core.index import CagraIndex
from repro.core.metrics import recall
from repro.core.traversal import PRECISIONS, TraversalEngine

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "cagra_regression.npz"
)


@pytest.fixture(scope="module")
def regression():
    rng = np.random.default_rng(7)
    data = rng.standard_normal((600, 24)).astype(np.float32)
    queries = rng.standard_normal((32, 24)).astype(np.float32)
    index = CagraIndex.build(data, GraphBuildConfig(graph_degree=16, seed=0))
    with np.load(FIXTURE) as archive:
        expected = {key: archive[key] for key in archive.files}
    return data, queries, index, expected


CONFIG = SearchConfig(itopk=64, seed=0)


def assert_pinned(result, expected, prefix):
    """Bitwise fixture parity: ids, distances, and all pinned counters."""
    np.testing.assert_array_equal(result.indices, expected[f"{prefix}_indices"])
    np.testing.assert_array_equal(
        result.distances, expected[f"{prefix}_distances"]
    )
    names = [str(name) for name in expected["counter_names"]]
    report = getattr(result, "report", None)
    source = result.counters if report is None else report.as_dict()
    got = np.array([source[name] for name in names], dtype=np.int64)
    want = expected[f"{prefix}_counters"]
    mismatch = {
        name: (int(g), int(w))
        for name, g, w in zip(names, got, want)
        if g != w
    }
    assert not mismatch, f"{prefix} counter drift: {mismatch}"


class TestFivePathFixtureParity:
    """Every production path, pinned bitwise against the pre-engine runs."""

    def test_reference_auto(self, regression):
        _, queries, index, expected = regression
        assert_pinned(index.search(queries, 10, config=CONFIG), expected, "ref")

    def test_fast(self, regression):
        _, queries, index, expected = regression
        assert_pinned(
            index.search_fast(queries, 10, config=CONFIG), expected, "fast"
        )

    def test_forced_single_cta(self, regression):
        _, queries, index, expected = regression
        result = index.search(
            queries, 10, config=CONFIG.with_overrides(algo="single_cta")
        )
        assert_pinned(result, expected, "single")

    def test_forced_multi_cta(self, regression):
        _, queries, index, expected = regression
        result = index.search(
            queries[:1], 10, config=CONFIG.with_overrides(algo="multi_cta")
        )
        assert_pinned(result, expected, "multi")

    def test_sharded_fast(self, regression):
        data, queries, _, expected = regression
        from repro.core.sharding import ShardedCagraIndex

        sharded = ShardedCagraIndex.build(
            data, 3, GraphBuildConfig(graph_degree=16, seed=0)
        )
        try:
            result = sharded.search_fast(queries, 10, config=CONFIG)
        finally:
            sharded.close()
        assert_pinned(result, expected, "sharded")


class TestDispatchArms:
    """The reference backend's two arms agree bitwise on either side of
    the latency crossover, so the dispatch threshold is pure policy."""

    def test_slab_arm_on_small_batch(self, regression, monkeypatch):
        """Forcing the array-parallel slab onto a batch-1 multi-CTA query
        reproduces the scalar arm's pinned fixture exactly."""
        _, queries, index, expected = regression
        monkeypatch.setattr(traversal, "_SCALAR_REFERENCE_ROWS", 0)
        result = index.search(
            queries[:1], 10, config=CONFIG.with_overrides(algo="multi_cta")
        )
        assert_pinned(result, expected, "multi")

    def test_scalar_arm_on_large_batch(self, regression, monkeypatch):
        """Forcing the sequential specification onto the batch-32 fixture
        reproduces the slab arm's pinned results exactly."""
        _, queries, index, expected = regression
        monkeypatch.setattr(traversal, "_SCALAR_REFERENCE_ROWS", 10**9)
        assert_pinned(index.search(queries, 10, config=CONFIG), expected, "ref")
        result = index.search(
            queries, 10, config=CONFIG.with_overrides(algo="single_cta")
        )
        assert_pinned(result, expected, "single")

    def test_default_threshold_routes_small_batches_scalar(
        self, regression, monkeypatch
    ):
        _, queries, index, _ = regression
        calls = []
        original = TraversalEngine._scalar_single_cta
        monkeypatch.setattr(
            TraversalEngine,
            "_scalar_single_cta",
            lambda self, *a, **kw: calls.append(1) or original(self, *a, **kw),
        )
        index.search(
            queries[:2], 10, config=CONFIG.with_overrides(algo="single_cta")
        )
        assert len(calls) == 2  # one scalar run per query below the threshold
        calls.clear()
        index.search(queries, 10, config=CONFIG.with_overrides(algo="single_cta"))
        assert not calls  # batch 32 goes through the array-parallel slab


class TestFp16Storage:
    def test_engine_quantizes_storage_only(self, regression):
        _, _, index, _ = regression
        engine = index.engine("fp16")
        assert engine.data.dtype == np.float16
        assert index.engine().data.dtype == np.float32

    def test_recall_within_0_01_of_fp32(self, regression):
        data, queries, index, _ = regression
        truth, _ = exact_search(data, queries, 10)
        fp32 = index.search_fast(queries, 10, config=CONFIG)
        fp16 = index.search_fast(
            queries, 10, config=CONFIG.with_overrides(precision="fp16")
        )
        r32 = recall(fp32.indices, truth)
        r16 = recall(fp16.indices, truth)
        assert r32 > 0.9
        assert abs(r32 - r16) <= 0.01

    def test_ids_mostly_stable_under_quantization(self, regression):
        _, queries, index, _ = regression
        fp32 = index.search_fast(queries, 10, config=CONFIG)
        fp16 = index.search_fast(
            queries, 10, config=CONFIG.with_overrides(precision="fp16")
        )
        overlap = np.mean(
            [
                len(set(a.tolist()) & set(b.tolist())) / 10.0
                for a, b in zip(fp32.indices, fp16.indices)
            ]
        )
        assert overlap >= 0.9

    def test_fp16_deterministic(self, regression):
        _, queries, index, _ = regression
        config = CONFIG.with_overrides(precision="fp16")
        first = index.search_fast(queries, 10, config=config)
        second = index.search_fast(queries, 10, config=config)
        np.testing.assert_array_equal(first.indices, second.indices)
        np.testing.assert_array_equal(first.distances, second.distances)

    def test_reference_mode_supports_fp16(self, regression):
        data, queries, index, _ = regression
        truth, _ = exact_search(data, queries, 10)
        result = index.search(
            queries, 10, config=CONFIG.with_overrides(precision="fp16")
        )
        assert recall(result.indices, truth) > 0.9

    def test_extras_stamp_precision_and_team(self, regression):
        _, queries, index, _ = regression
        config = CONFIG.with_overrides(precision="fp16", team_size=8)
        result = index.search_fast(queries, 10, config=config)
        assert result.report.extras["precision"] == "fp16"
        assert result.report.extras["dtype_bytes"] == 2
        assert result.report.extras["team_size"] == 8
        fp32 = index.search_fast(queries, 10, config=CONFIG)
        assert fp32.report.extras["precision"] == "fp32"
        assert fp32.report.extras["dtype_bytes"] == 4

    def test_engine_cache_per_precision(self, regression):
        _, _, index, _ = regression
        assert index.engine("fp16") is index.engine("fp16")
        assert index.engine("fp16") is not index.engine("fp32")

    def test_invalid_precision_rejected(self, regression):
        data, _, index, _ = regression
        with pytest.raises(ValueError, match="precision"):
            TraversalEngine(data, index.graph, precision="fp8")
        with pytest.raises(ValueError, match="precision"):
            SearchConfig(precision="fp64")
        assert PRECISIONS == ("fp32", "fp16")


class TestChunkHeuristic:
    """Satellite: the chunk sizer charges the *storage* width per lane,
    so fp16 never over-allocates (chunks can only grow vs fp32)."""

    def test_fp16_rows_at_least_fp32(self, regression):
        _, _, index, _ = regression
        fp32 = index.engine("fp32")
        fp16 = index.engine("fp16")
        assert fp16._chunk_rows_fast(CONFIG, 64) >= fp32._chunk_rows_fast(
            CONFIG, 64
        )
        assert fp16._chunk_rows_reference(
            CONFIG, "single_cta"
        ) >= fp32._chunk_rows_reference(CONFIG, "single_cta")

    def test_gather_bytes_scale_with_storage(self, regression):
        _, _, index, _ = regression
        fp32 = index.engine("fp32")._gather_bytes_per_row(16, 64)
        fp16 = index.engine("fp16")._gather_bytes_per_row(16, 64)
        assert fp16 < fp32

    def test_forced_chunking_is_transparent(self, regression, monkeypatch):
        """A tiny budget forces many chunks; totals stay bitwise pinned."""
        _, queries, index, expected = regression
        whole = index.search_fast(queries, 10, config=CONFIG)
        monkeypatch.setattr(traversal, "_VISITED_BUDGET_BYTES", 1)
        chunked = index.search_fast(queries, 10, config=CONFIG)
        np.testing.assert_array_equal(whole.indices, chunked.indices)
        assert whole.report.as_dict() == chunked.report.as_dict()
        assert_pinned(chunked, expected, "fast")


class TestDeprecationShims:
    def test_batch_search_module_warns_and_forwards(self):
        import repro.core.batch_search as batch_search

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alias = batch_search.search_batch_fast
        assert alias is traversal.search_batch_fast
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        with pytest.raises(AttributeError):
            batch_search.no_such_name

    def test_search_single_query_warns_and_works(self, regression):
        import repro.core.search as search

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn = search.search_single_query
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        _, queries, index, expected = regression
        rng = np.random.default_rng([0, 0])
        ids, dists, _ = fn(
            index.dataset, index.graph, queries[0], 10, CONFIG, "single_cta", rng
        )
        np.testing.assert_array_equal(ids, expected["single_indices"][0])
        with pytest.raises(AttributeError):
            search.no_such_name


class TestEngineValidation:
    def test_mode_validated(self, regression):
        _, queries, index, _ = regression
        with pytest.raises(ValueError, match="mode"):
            index.engine().search(queries, 10, config=CONFIG, mode="warp")

    def test_k_exceeding_itopk_rejected_in_reference(self, regression):
        _, queries, index, _ = regression
        with pytest.raises(ValueError, match="exceeds itopk"):
            index.search(queries, 70, config=CONFIG)

    def test_auto_mode_is_fast(self, regression):
        _, queries, index, _ = regression
        auto = index.engine().search(queries, 10, config=CONFIG, mode="auto")
        fast = index.search_fast(queries, 10, config=CONFIG)
        np.testing.assert_array_equal(auto.indices, fast.indices)
        assert auto.report.as_dict() == fast.report.as_dict()
