"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import (
    GraphBuildConfig,
    HashTableConfig,
    SearchConfig,
    choose_algo,
)


class TestGraphBuildConfig:
    def test_defaults_valid(self):
        config = GraphBuildConfig()
        assert config.graph_degree == 32
        assert config.resolved_intermediate_degree == 64

    def test_intermediate_degree_default_is_2d(self):
        assert GraphBuildConfig(graph_degree=48).resolved_intermediate_degree == 96

    def test_explicit_intermediate_degree(self):
        config = GraphBuildConfig(graph_degree=32, intermediate_degree=96)
        assert config.resolved_intermediate_degree == 96

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError, match="even"):
            GraphBuildConfig(graph_degree=33)

    def test_degree_too_small_rejected(self):
        with pytest.raises(ValueError):
            GraphBuildConfig(graph_degree=0)

    def test_intermediate_below_final_rejected(self):
        with pytest.raises(ValueError, match="intermediate_degree"):
            GraphBuildConfig(graph_degree=32, intermediate_degree=16)

    @pytest.mark.parametrize("flavour", ["rank", "distance", "none"])
    def test_reordering_flavours(self, flavour):
        assert GraphBuildConfig(reordering=flavour).reordering == flavour

    def test_bad_reordering_rejected(self):
        with pytest.raises(ValueError, match="reordering"):
            GraphBuildConfig(reordering="angular")

    def test_bad_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            GraphBuildConfig(metric="hamming")

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError, match="sample_rate"):
            GraphBuildConfig(nn_descent_sample_rate=0.0)

    def test_frozen(self):
        config = GraphBuildConfig()
        with pytest.raises(Exception):
            config.graph_degree = 64


class TestHashTableConfig:
    def test_defaults(self):
        config = HashTableConfig()
        assert config.kind == "forgettable"
        assert 4 <= config.log2_size <= 26

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            HashTableConfig(kind="lru")

    def test_size_bounds(self):
        with pytest.raises(ValueError):
            HashTableConfig(log2_size=2)
        with pytest.raises(ValueError):
            HashTableConfig(log2_size=30)

    def test_reset_interval_positive(self):
        with pytest.raises(ValueError, match="reset_interval"):
            HashTableConfig(reset_interval=0)


class TestSearchConfig:
    def test_defaults(self):
        config = SearchConfig()
        assert config.itopk == 64
        assert config.algo == "auto"

    def test_bad_algo_rejected(self):
        with pytest.raises(ValueError, match="algo"):
            SearchConfig(algo="mega_cta")

    @pytest.mark.parametrize("team", [0, 2, 4, 8, 16, 32])
    def test_valid_team_sizes(self, team):
        assert SearchConfig(team_size=team).team_size == team

    @pytest.mark.parametrize("team", [1, 3, 64])
    def test_invalid_team_sizes(self, team):
        with pytest.raises(ValueError, match="team_size"):
            SearchConfig(team_size=team)

    def test_resolved_max_iterations_explicit(self):
        assert SearchConfig(max_iterations=7).resolved_max_iterations() == 7

    def test_resolved_max_iterations_heuristic_scales_with_itopk(self):
        small = SearchConfig(itopk=16).resolved_max_iterations()
        large = SearchConfig(itopk=512).resolved_max_iterations()
        assert large > small

    def test_with_overrides_returns_new(self):
        base = SearchConfig(itopk=64)
        other = base.with_overrides(itopk=128)
        assert base.itopk == 64
        assert other.itopk == 128


class TestChooseAlgo:
    """The Fig. 7 implementation-choice rule."""

    def test_small_batch_uses_multi_cta(self):
        assert choose_algo(SearchConfig(), batch_size=1, num_sms=108) == "multi_cta"

    def test_large_batch_uses_single_cta(self):
        assert choose_algo(SearchConfig(), batch_size=10000, num_sms=108) == "single_cta"

    def test_batch_threshold_is_sm_count(self):
        assert choose_algo(SearchConfig(), batch_size=107, num_sms=108) == "multi_cta"
        assert choose_algo(SearchConfig(), batch_size=108, num_sms=108) == "single_cta"

    def test_large_itopk_forces_multi_cta(self):
        config = SearchConfig(itopk=1024)
        assert choose_algo(config, batch_size=10000, num_sms=108) == "multi_cta"

    def test_itopk_threshold_boundary(self):
        at = SearchConfig(itopk=512)
        above = SearchConfig(itopk=513)
        assert choose_algo(at, 10000) == "single_cta"
        assert choose_algo(above, 10000) == "multi_cta"

    def test_explicit_algo_wins(self):
        config = SearchConfig(algo="single_cta")
        assert choose_algo(config, batch_size=1) == "single_cta"

    def test_custom_batch_threshold(self):
        config = SearchConfig(batch_threshold=10)
        assert choose_algo(config, batch_size=20, num_sms=108) == "single_cta"
        assert choose_algo(config, batch_size=5, num_sms=108) == "multi_cta"


class TestSearchConfigFromMapping:
    def test_unknown_keys_ignored(self):
        config = SearchConfig.from_mapping(
            {"itopk": 32, "future_knob": 7, "recall": 0.9}
        )
        assert config.itopk == 32

    def test_base_preserved(self):
        base = SearchConfig(seed=4, team_size=8)
        config = SearchConfig.from_mapping({"itopk": 96}, base=base)
        assert config.itopk == 96
        assert config.seed == 4 and config.team_size == 8

    def test_overrides_beat_mapping(self):
        config = SearchConfig.from_mapping(
            {"itopk": 96, "search_width": 4}, itopk=16
        )
        assert config.itopk == 16
        assert config.search_width == 4

    def test_none_mapping(self):
        assert SearchConfig.from_mapping(None) == SearchConfig()

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            SearchConfig.from_mapping({"itopk": 0})
