"""Extended gpusim tests: the team-load, latency-chain, and build-time
formulas added for Figs. 8/11/15."""

import pytest

from repro.gpusim import A100_80GB, CpuCostModel, GpuCostModel
from repro.gpusim.kernels import (
    distance_cost,
    iteration_latency_cycles,
    load_waste,
)


class TestLoadWaste:
    def test_exact_fit_has_no_waste(self):
        # dim 96 FP32 = 384 B; team 8 -> 128 B granularity -> 3 exact loads.
        assert load_waste(96, 4, 8) == 0.0

    def test_tail_waste(self):
        # team 32 -> 512 B granularity for a 384 B vector: 25% padding.
        assert load_waste(96, 4, 32) == pytest.approx(0.25)

    def test_fp16_changes_waste(self):
        # 960 dims FP16 = 1920 B; team 32 loads 4 x 512 = 2048 -> 6.25%.
        assert load_waste(960, 2, 32) == pytest.approx(1 - 1920 / 2048)

    def test_waste_bounded(self):
        for dim in (7, 96, 200, 960):
            for team in (2, 4, 8, 16, 32):
                w = load_waste(dim, 4, team)
                assert 0.0 <= w < 1.0


class TestIterationLatency:
    def test_small_team_longer_chain(self):
        small = iteration_latency_cycles(96, 4, 2, A100_80GB)
        large = iteration_latency_cycles(96, 4, 32, A100_80GB)
        assert small > large

    def test_spill_multiplies_chain(self):
        # dim 960 team 2 spills (registers > 255).
        assert distance_cost(960, 4, 2).spilled
        spilled = iteration_latency_cycles(960, 4, 2, A100_80GB)
        clean = iteration_latency_cycles(960, 4, 32, A100_80GB)
        assert spilled > 10 * clean

    def test_fp16_shortens_chain(self):
        fp32 = iteration_latency_cycles(960, 4, 32, A100_80GB)
        fp16 = iteration_latency_cycles(960, 2, 32, A100_80GB)
        assert fp16 < fp32


class TestKnnBuildTime:
    def test_update_term_needs_shape(self):
        gpu = GpuCostModel()
        bare = gpu.knn_build_time(10**7, 96)
        shaped = gpu.knn_build_time(
            10**7, 96, num_nodes=10_000, k=64, iterations=8
        )
        assert shaped > bare

    def test_efficiency_scales_compute(self):
        gpu = GpuCostModel()
        fast = gpu.knn_build_time(10**10, 96, efficiency=0.5)
        slow = gpu.knn_build_time(10**10, 96, efficiency=0.1)
        assert slow > 4 * fast

    def test_update_cost_override(self):
        gpu = GpuCostModel()
        cheap = gpu.knn_build_time(
            10**6, 96, num_nodes=10_000, k=64, iterations=8,
            update_seconds_per_entry=1e-9,
        )
        pricey = gpu.knn_build_time(
            10**6, 96, num_nodes=10_000, k=64, iterations=8,
            update_seconds_per_entry=24e-9,
        )
        assert pricey > cheap

    def test_linear_in_nodes(self):
        gpu = GpuCostModel()
        t1 = gpu.knn_build_time(10**6, 96, num_nodes=10_000, k=64, iterations=8)
        t2 = gpu.knn_build_time(2 * 10**6, 96, num_nodes=20_000, k=64, iterations=8)
        assert t2 == pytest.approx(2 * t1, rel=0.01)


class TestOptimizeTime:
    def test_rank_vs_distance_gap_near_paper(self):
        """The paper measures the end-to-end gap at up to 1.9x."""
        gpu = GpuCostModel()
        rank = gpu.optimize_time(10**9, 10**6, 32)
        distance = gpu.optimize_time(10**9, 10**6, 32, dim=96, distance_based=True)
        assert 1.3 < distance / rank < 2.5

    def test_legacy_distance_computations_flag(self):
        gpu = GpuCostModel()
        legacy = gpu.optimize_time(10**8, 10**5, 32, distance_computations=1, dim=96)
        explicit = gpu.optimize_time(10**8, 10**5, 32, dim=96, distance_based=True)
        assert legacy == explicit


class TestRooflineInteractions:
    def test_latency_roofline_binds_for_bad_teams(self, small_index, small_queries):
        from repro import SearchConfig
        from repro.bench import scale_report

        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=64, algo="single_cta")
        )
        report = scale_report(result.report, 10_000 / len(small_queries))
        gpu = GpuCostModel()
        good = gpu.search_time(report, 960, team_size=32, itopk=64)
        bad = gpu.search_time(report, 960, team_size=2, itopk=64)
        assert bad.seconds > good.seconds
        assert bad.breakdown["latency_seconds"] > good.breakdown["latency_seconds"]

    def test_cpu_overhead_dominates_arithmetic_for_small_dims(self):
        cpu = CpuCostModel()
        timing = cpu.search_time(10**6, 10**5, 16, batch_size=1000, threads=1)
        # At dim 16 the scalar bookkeeping dwarfs the FLOPs.
        assert timing.compute_seconds > 10 * (
            10**6 * 16 * 2.0 / cpu.spec.flops_per_second(1)
        )


class TestH100Spec:
    def test_h100_exists_and_differs(self):
        from repro.gpusim import A100_80GB, H100_80GB

        assert H100_80GB.num_sms > A100_80GB.num_sms
        assert H100_80GB.mem_bandwidth_gbps > A100_80GB.mem_bandwidth_gbps

    def test_same_counters_faster_on_h100(self, small_index, small_queries):
        from repro import SearchConfig
        from repro.bench import scale_report
        from repro.gpusim import A100_80GB, H100_80GB, GpuCostModel

        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=64, algo="single_cta")
        )
        report = scale_report(result.report, 10_000 / len(small_queries))
        a100 = GpuCostModel(A100_80GB).search_time(report, small_index.dim, itopk=64)
        h100 = GpuCostModel(H100_80GB).search_time(report, small_index.dim, itopk=64)
        assert h100.seconds < a100.seconds
