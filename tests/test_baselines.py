"""Unit tests for repro.baselines — brute force, beam, HNSW, NSSG, GGNN, GANNS."""

import numpy as np
import pytest

from repro.baselines import (
    BeamCounters,
    GannsIndex,
    GgnnIndex,
    HnswIndex,
    NssgIndex,
    beam_search,
    exact_search,
    nssg_search,
)
from repro.core.config import GraphBuildConfig
from repro.core.metrics import recall
from repro.core.nn_descent import brute_force_knn_graph, build_knn_graph


class TestExactSearch:
    def test_matches_manual(self, tiny_data):
        ids, dists = exact_search(tiny_data, tiny_data[:3], 5)
        d = ((tiny_data[:3, None].astype(np.float64) - tiny_data[None]) ** 2).sum(-1)
        for i in range(3):
            assert set(ids[i].tolist()) == set(np.argsort(d[i])[:5].tolist())

    def test_sorted_output(self, tiny_data):
        _, dists = exact_search(tiny_data, tiny_data[:5], 8)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_query_is_own_nearest(self, tiny_data):
        ids, dists = exact_search(tiny_data, tiny_data[7], 1)
        assert ids[0, 0] == 7
        assert dists[0, 0] == pytest.approx(0.0, abs=1e-3)

    def test_k_bounds(self, tiny_data):
        with pytest.raises(ValueError):
            exact_search(tiny_data, tiny_data[:1], 0)
        with pytest.raises(ValueError):
            exact_search(tiny_data, tiny_data[:1], len(tiny_data) + 1)

    def test_blocking_invariance(self, tiny_data):
        a, _ = exact_search(tiny_data, tiny_data[:50], 5, block=7)
        b, _ = exact_search(tiny_data, tiny_data[:50], 5, block=256)
        np.testing.assert_array_equal(a, b)

    def test_inner_product(self, tiny_data):
        ids, _ = exact_search(tiny_data, tiny_data[:3], 4, metric="inner_product")
        sims = tiny_data[:3].astype(np.float64) @ tiny_data.T.astype(np.float64)
        for i in range(3):
            assert set(ids[i].tolist()) == set(np.argsort(-sims[i])[:4].tolist())


class TestBeamSearch:
    def test_finds_true_neighbors_on_exact_graph(self, tiny_data):
        knn = brute_force_knn_graph(tiny_data, 10)
        truth, _ = exact_search(tiny_data, tiny_data[:5], 5)
        counters = BeamCounters()
        hits = []
        for i in range(5):
            ids, _ = beam_search(
                tiny_data, knn.graph.neighbors, tiny_data[i], 5, 32,
                np.arange(0, 120, 10), counters=counters,
            )
            hits.append(len(np.intersect1d(ids, truth[i])) / 5)
        assert np.mean(hits) > 0.9
        assert counters.queries == 5
        assert counters.distance_computations > 0

    def test_k_exceeding_beam_raises(self, tiny_data):
        knn = brute_force_knn_graph(tiny_data, 5)
        with pytest.raises(ValueError, match="exceeds"):
            beam_search(tiny_data, knn.graph.neighbors, tiny_data[0], 10, 5,
                        np.array([0]))

    def test_max_hops_caps_work(self, tiny_data):
        knn = brute_force_knn_graph(tiny_data, 8)
        counters = BeamCounters()
        beam_search(tiny_data, knn.graph.neighbors, tiny_data[0], 3, 64,
                    np.array([50]), counters=counters, max_hops=2)
        assert counters.hops <= 3

    def test_results_sorted(self, tiny_data):
        knn = brute_force_knn_graph(tiny_data, 8)
        _, dists = beam_search(tiny_data, knn.graph.neighbors, tiny_data[0], 5, 16,
                               np.array([3, 40, 80]))
        assert (np.diff(dists) >= 0).all()

    def test_counters_merge(self):
        a = BeamCounters(distance_computations=3, hops=2, queries=1)
        b = BeamCounters(distance_computations=4, hops=5, queries=2)
        a.merge_from(b)
        assert (a.distance_computations, a.hops, a.queries) == (7, 7, 3)


class TestHnsw:
    @pytest.fixture(scope="class")
    def hnsw(self, small_data):
        return HnswIndex(small_data, m=12, ef_construction=60, seed=0).build()

    def test_recall(self, hnsw, small_queries, small_truth):
        ids, _, _ = hnsw.search(small_queries, 10, ef=64)
        assert recall(ids, small_truth) > 0.95

    def test_recall_improves_with_ef(self, hnsw, small_queries, small_truth):
        low, _, _ = hnsw.search(small_queries, 10, ef=10)
        high, _, _ = hnsw.search(small_queries, 10, ef=128)
        assert recall(high, small_truth) >= recall(low, small_truth)

    def test_hierarchy_exists(self, hnsw):
        assert hnsw.max_level >= 1
        # Layer population shrinks exponentially-ish going up.
        sizes = hnsw.build_stats.level_sizes
        assert sizes[0] > sizes[-1]

    def test_base_layer_has_everyone(self, hnsw, small_data):
        assert len(hnsw.layers[0]) == len(small_data)

    def test_degree_bounds(self, hnsw):
        for node, neighbors in hnsw.layers[0].items():
            assert len(neighbors) <= hnsw.m0
        if hnsw.max_level >= 1:
            for node, neighbors in hnsw.layers[1].items():
                assert len(neighbors) <= hnsw.m0

    def test_search_before_build_raises(self, small_data):
        fresh = HnswIndex(small_data[:50], m=4)
        with pytest.raises(RuntimeError):
            fresh.search(small_data[:1], 1)

    def test_counters_populate(self, hnsw, small_queries):
        _, _, counters = hnsw.search(small_queries[:5], 5, ef=32)
        assert counters.queries == 5
        assert counters.distance_computations > 0
        assert counters.hops > 0

    def test_build_stats(self, hnsw):
        assert hnsw.build_stats.distance_computations > 0

    def test_bad_m_rejected(self, small_data):
        with pytest.raises(ValueError):
            HnswIndex(small_data, m=1)

    def test_mean_base_degree(self, hnsw):
        assert 1 <= hnsw.base_degree_mean <= hnsw.m0


class TestNssg:
    @pytest.fixture(scope="class")
    def nssg(self, small_data, small_knn):
        return NssgIndex(small_data, small_knn, degree_bound=24, pool_size=64, seed=0).build()

    def test_recall(self, nssg, small_queries, small_truth):
        ids, _, _ = nssg.search(small_queries, 10, beam_width=64, num_seeds=16)
        assert recall(ids, small_truth) > 0.85

    def test_degree_bound_respected(self, nssg):
        for row in nssg.adjacency:
            assert len(row) <= 24

    def test_angular_spread(self, nssg, small_data):
        """Kept edges at a node must respect the 60-degree criterion
        among the first few (pre-reverse-merge edges may relax it)."""
        import math
        node = 11
        kept = nssg.adjacency[node][:4]
        origin = small_data[node].astype(np.float64)
        dirs = []
        for other in kept:
            v = small_data[int(other)].astype(np.float64) - origin
            n = np.linalg.norm(v)
            if n > 0:
                dirs.append(v / n)
        # At least the forward-pruned prefix should not be collinear.
        for i in range(len(dirs)):
            for j in range(i + 1, len(dirs)):
                assert float(dirs[i] @ dirs[j]) < 0.98

    def test_search_before_build_raises(self, small_data, small_knn):
        fresh = NssgIndex(small_data, small_knn)
        with pytest.raises(RuntimeError):
            fresh.search(small_data[:1], 1)

    def test_nssg_search_on_cagra_graph(self, small_index, small_queries, small_truth):
        """Fig. 12: the NSSG searcher must run on a CAGRA graph directly."""
        ids, _, counters = nssg_search(
            small_index.dataset, small_index.graph, small_queries, 10,
            beam_width=64, num_seeds=16,
        )
        assert recall(ids, small_truth) > 0.85
        assert counters.queries == len(small_queries)

    def test_build_stats(self, nssg):
        assert nssg.build_stats.distance_computations > 0
        assert nssg.build_stats.pool_sizes_mean > 0


class TestGgnn:
    @pytest.fixture(scope="class")
    def ggnn(self, small_data):
        return GgnnIndex(small_data, degree=16, shard_size=256, seed=0).build()

    def test_recall(self, ggnn, small_queries, small_truth):
        ids, _, _ = ggnn.search(small_queries, 10, beam_width=64)
        assert recall(ids, small_truth) > 0.85

    def test_fixed_degree(self, ggnn):
        assert ggnn.graph.degree == 16

    def test_shards_recorded(self, ggnn):
        assert ggnn.build_stats.num_shards == int(np.ceil(1200 / 256))

    def test_coarse_layer_exists(self, ggnn):
        assert len(ggnn.coarse_ids) >= 32

    def test_search_before_build_raises(self, small_data):
        with pytest.raises(RuntimeError):
            GgnnIndex(small_data).search(small_data[:1], 1)

    def test_no_self_loops(self, ggnn):
        assert not ggnn.graph.has_self_loops()


class TestGanns:
    @pytest.fixture(scope="class")
    def ganns(self, small_data):
        return GannsIndex(small_data, degree=16, seed=0).build()

    def test_recall(self, ganns, small_queries, small_truth):
        ids, _, _ = ganns.search(small_queries, 10, beam_width=64, num_seeds=8)
        assert recall(ids, small_truth) > 0.8

    def test_degree_cap(self, ganns):
        for row in ganns.adjacency:
            assert len(row) <= 16

    def test_batched_construction(self, ganns):
        assert ganns.build_stats.num_batches >= 2

    def test_average_degree(self, ganns):
        assert 4 <= ganns.average_degree <= 16

    def test_search_before_build_raises(self, small_data):
        with pytest.raises(RuntimeError):
            GannsIndex(small_data).search(small_data[:1], 1)


class TestBaselineDeterminism:
    def test_ggnn_search_deterministic(self, small_data, small_queries):
        g = GgnnIndex(small_data[:400], degree=8, shard_size=150, seed=0).build()
        a, _, _ = g.search(small_queries[:5], 5, beam_width=32)
        b, _, _ = g.search(small_queries[:5], 5, beam_width=32)
        np.testing.assert_array_equal(a, b)

    def test_ganns_search_deterministic(self, small_data, small_queries):
        g = GannsIndex(small_data[:400], degree=8, seed=0).build()
        a, _, _ = g.search(small_queries[:5], 5, beam_width=32, seed=3)
        b, _, _ = g.search(small_queries[:5], 5, beam_width=32, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_hnsw_build_deterministic(self, small_data):
        a = HnswIndex(small_data[:200], m=6, ef_construction=30, seed=4).build()
        b = HnswIndex(small_data[:200], m=6, ef_construction=30, seed=4).build()
        assert a.max_level == b.max_level
        for node in (0, 50, 150):
            np.testing.assert_array_equal(a.layers[0][node], b.layers[0][node])
