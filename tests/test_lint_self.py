"""Self-lint: the whole repro source tree must satisfy its own invariants.

Any new violation must be either fixed or carry an in-line
``# repro-lint: disable=RLxxx — reason`` waiver; this test is the CI gate
that keeps the dtype/flag/determinism/accounting contracts from drifting.
"""

from __future__ import annotations

from repro.cli import main
from repro.lint import default_root, format_text, lint_paths


def test_source_tree_is_lint_clean():
    result = lint_paths()
    assert result.files_checked > 30, "linter walked suspiciously few files"
    assert not result.parse_errors, result.parse_errors
    assert not result.violations, "\n" + format_text(
        result.violations, result.files_checked
    )


def test_default_root_is_the_src_tree():
    root = default_root()
    assert (root / "repro" / "core" / "search.py").exists()


def test_cli_strict_lint_exits_zero(capsys):
    assert main(["lint", "--strict"]) == 0
    assert "clean" in capsys.readouterr().out
