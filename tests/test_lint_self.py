"""Self-lint: the whole repro source tree must satisfy its own invariants.

Any new violation must be either fixed or carry an in-line
``# repro-lint: disable=RLxxx — reason`` waiver; this test is the CI gate
that keeps the dtype/flag/determinism/accounting contracts from drifting.
"""

from __future__ import annotations

from repro.cli import main
from repro.lint import default_root, format_text, lint_paths


def test_source_tree_is_lint_clean():
    result = lint_paths()
    assert result.files_checked > 30, "linter walked suspiciously few files"
    assert not result.parse_errors, result.parse_errors
    assert not result.violations, "\n" + format_text(
        result.violations, result.files_checked
    )


def test_default_root_is_the_src_tree():
    root = default_root()
    assert (root / "repro" / "core" / "search.py").exists()


def test_cli_strict_lint_exits_zero(capsys):
    assert main(["lint", "--strict"]) == 0
    assert "clean" in capsys.readouterr().out


def test_concurrency_hotspots_clean_under_rl1xx():
    """serve/ and parallel/ are the lock-heavy packages RL101–RL104 were
    written for; they must stay clean (or carry explicit waivers)."""
    root = default_root()
    result = lint_paths([
        str(root / "repro" / "serve"),
        str(root / "repro" / "parallel"),
        str(root / "repro" / "resilience"),
    ])
    assert result.files_checked >= 10
    assert not result.violations, "\n" + format_text(
        result.violations, result.files_checked
    )


def test_registry_sync_holds_across_project():
    """RL203 sees INDEX_KINDS / _BUILDERS / INDEX_FORMATS / adapter kinds
    from different files; the full-tree run proves they are in sync."""
    result = lint_paths()
    assert not any(v.rule == "RL203" for v in result.violations)


def test_linter_package_is_self_clean():
    root = default_root()
    result = lint_paths([str(root / "repro" / "lint")])
    assert result.files_checked >= 8
    assert not result.violations, "\n" + format_text(
        result.violations, result.files_checked
    )
