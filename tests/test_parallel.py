"""Tests for repro.parallel: config resolution, the shard executor,
shared-memory hand-off, and cross-backend determinism of sharded
builds and searches."""

import os
import pickle

import numpy as np
import pytest

from repro import GraphBuildConfig, SearchConfig, ShardedCagraIndex
from repro.parallel import (
    ArraySpec,
    ParallelConfig,
    ShardExecutor,
    SharedArray,
    attach_array,
    available_cpus,
    plan_shards,
)


class TestParallelConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.num_workers == 0
        assert config.backend == "auto"

    def test_validation(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelConfig(backend="cuda")
        with pytest.raises(ValueError, match="num_workers"):
            ParallelConfig(num_workers=-1)

    def test_explicit_workers_clamped_to_tasks(self):
        config = ParallelConfig(num_workers=8)
        assert config.resolved_workers(num_tasks=3) == 3
        assert config.resolved_workers(num_tasks=100) == 8

    def test_auto_workers_use_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        config = ParallelConfig()
        assert config.resolved_workers(num_tasks=10_000) == available_cpus()

    def test_single_worker_resolves_serial(self):
        config = ParallelConfig(num_workers=1, backend="process")
        assert config.resolved_backend(num_tasks=4) == "serial"

    def test_single_task_resolves_serial(self):
        config = ParallelConfig(num_workers=4, backend="process")
        assert config.resolved_backend(num_tasks=1) == "serial"

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "thread")
        config = ParallelConfig()  # both fields at their defaults
        assert config.resolved_workers(num_tasks=8) == 3
        assert config.resolved_backend(num_tasks=8) == "thread"

    def test_explicit_fields_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "thread")
        config = ParallelConfig(num_workers=2, backend="process")
        assert config.resolved_workers(num_tasks=8) == 2
        assert config.resolved_backend(num_tasks=8) == "process"


def _square(payload):
    return payload * payload


def _pid_of(payload):
    return os.getpid()


class TestShardExecutor:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_preserves_order(self, backend):
        with ShardExecutor(num_workers=2, backend=backend) as executor:
            assert executor.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_empty_map(self):
        with ShardExecutor() as executor:
            assert executor.map(_square, []) == []

    def test_one_worker_downgrades_to_serial(self):
        executor = ShardExecutor(num_workers=1, backend="process")
        assert executor.backend == "serial"

    def test_process_backend_uses_other_processes(self):
        with ShardExecutor(num_workers=2, backend="process") as executor:
            pids = executor.map(_pid_of, [0, 1, 2, 3])
        assert any(pid != os.getpid() for pid in pids)

    def test_unpicklable_payload_falls_back_to_serial(self):
        # A lambda in the payload cannot cross the process boundary; the
        # executor must warn, downgrade, and still return correct results.
        with ShardExecutor(num_workers=2, backend="process") as executor:
            with pytest.warns(RuntimeWarning, match="re-running"):
                results = executor.map(_call_it, [lambda: 7, lambda: 8])
            assert results == [7, 8]
            assert executor.backend == "serial"

    def test_from_config_resolution(self):
        executor = ShardExecutor.from_config(
            ParallelConfig(num_workers=2, backend="thread"), num_tasks=4
        )
        assert executor.num_workers == 2
        assert executor.backend == "thread"
        executor.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="backend"):
            ShardExecutor(backend="gpu")
        with pytest.raises(ValueError, match="num_workers"):
            ShardExecutor(num_workers=0)

    def test_close_idempotent(self):
        executor = ShardExecutor(num_workers=2, backend="thread")
        executor.map(_square, [1, 2])
        executor.close()
        executor.close()
        # Serial maps keep working after close.
        assert executor.map(_square, [3]) == [9]


def _call_it(fn):
    return fn()


class TestSharedMemory:
    def test_roundtrip(self):
        source = np.arange(24, dtype=np.float32).reshape(4, 6)
        share = SharedArray.create(source)
        try:
            spec = share.spec
            assert pickle.loads(pickle.dumps(spec)) == spec
            view = attach_array(spec)
            np.testing.assert_array_equal(view, source)
        finally:
            share.close()

    def test_attach_cached_per_name(self):
        source = np.ones(8, dtype=np.uint32)
        share = SharedArray.create(source)
        try:
            first = attach_array(share.spec)
            second = attach_array(share.spec)
            assert first is second
        finally:
            share.close()

    def test_close_idempotent(self):
        share = SharedArray.create(np.zeros(4))
        share.close()
        share.close()

    def test_spec_carries_geometry(self):
        source = np.zeros((3, 5), dtype=np.float16)
        share = SharedArray.create(source)
        try:
            assert share.spec == ArraySpec(share.spec.name, (3, 5), "float16")
        finally:
            share.close()


class TestPlanShards:
    def test_round_robin_partition(self):
        plans = plan_shards(10, 3, GraphBuildConfig(graph_degree=4, seed=5))
        all_ids = np.concatenate([plan.ids for plan in plans])
        assert sorted(all_ids.tolist()) == list(range(10))
        np.testing.assert_array_equal(plans[1].ids, [1, 4, 7])

    def test_per_shard_seed_offsets(self):
        plans = plan_shards(10, 3, GraphBuildConfig(graph_degree=4, seed=5))
        assert [plan.config.seed for plan in plans] == [5, 6, 7]

    def test_degree_capped_by_population(self):
        # 3 points per shard cannot support degree 32.
        plans = plan_shards(12, 4, GraphBuildConfig(graph_degree=32))
        assert all(plan.config.graph_degree == 2 for plan in plans)


class TestCrossBackendDeterminism:
    """The tentpole guarantee: every backend produces bitwise-identical
    graphs and search results."""

    @pytest.fixture(scope="class")
    def payload(self):
        rng = np.random.default_rng(12)
        data = rng.standard_normal((360, 24)).astype(np.float32)
        queries = rng.standard_normal((8, 24)).astype(np.float32)
        return data, queries

    @pytest.fixture(scope="class")
    def serial_index(self, payload):
        data, _ = payload
        return ShardedCagraIndex.build(
            data, 4, GraphBuildConfig(graph_degree=8, seed=3),
            parallel=ParallelConfig(num_workers=1, backend="serial"),
        )

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_build_bitwise_identical(self, payload, serial_index, backend):
        data, _ = payload
        index = ShardedCagraIndex.build(
            data, 4, GraphBuildConfig(graph_degree=8, seed=3),
            parallel=ParallelConfig(num_workers=2, backend=backend),
        )
        for ours, theirs in zip(index.shards, serial_index.shards):
            np.testing.assert_array_equal(
                ours.graph.neighbors, theirs.graph.neighbors
            )
        index.close()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_search_bitwise_identical(self, payload, serial_index, backend):
        data, queries = payload
        config = SearchConfig(itopk=32, seed=9)
        expected = serial_index.search(queries, 10, config)
        index = ShardedCagraIndex.build(
            data, 4, GraphBuildConfig(graph_degree=8, seed=3),
            parallel=ParallelConfig(num_workers=2, backend=backend),
        )
        got = index.search(queries, 10, config)
        np.testing.assert_array_equal(got.indices, expected.indices)
        np.testing.assert_array_equal(got.distances, expected.distances)
        fast_expected = serial_index.search_fast(queries, 10, config)
        fast_got = index.search_fast(queries, 10, config)
        np.testing.assert_array_equal(fast_got.indices, fast_expected.indices)
        index.close()

    def test_repeated_process_searches_reuse_pool(self, payload, serial_index):
        """The persistent pool + shared-memory handle path: repeated
        searches on one index must stay correct (and identical)."""
        data, queries = payload
        index = ShardedCagraIndex.build(
            data, 4, GraphBuildConfig(graph_degree=8, seed=3),
            parallel=ParallelConfig(num_workers=2, backend="process"),
        )
        config = SearchConfig(itopk=32, seed=9)
        expected = serial_index.search(queries, 10, config)
        for _ in range(3):
            got = index.search(queries, 10, config)
            np.testing.assert_array_equal(got.indices, expected.indices)
        index.close()

    def test_per_call_parallel_override(self, payload, serial_index):
        data, queries = payload
        config = SearchConfig(itopk=32, seed=9)
        expected = serial_index.search(queries, 10, config)
        got = serial_index.search(
            queries, 10, config,
            parallel=ParallelConfig(num_workers=2, backend="thread"),
        )
        np.testing.assert_array_equal(got.indices, expected.indices)

    def test_shard_seconds_reported(self, payload, serial_index):
        _, queries = payload
        result = serial_index.search(queries, 5, SearchConfig(itopk=32))
        assert len(result.shard_seconds) == serial_index.num_shards
        assert all(seconds >= 0.0 for seconds in result.shard_seconds)


class TestServeShardedIndex:
    def test_server_accepts_sharded_index(self):
        from repro.serve import CagraServer, ServeConfig

        rng = np.random.default_rng(2)
        data = rng.standard_normal((200, 16)).astype(np.float32)
        index = ShardedCagraIndex.build(
            data, 2, GraphBuildConfig(graph_degree=8, seed=1),
            parallel=ParallelConfig(num_workers=1, backend="serial"),
        )
        with CagraServer(index, ServeConfig(max_batch=8, max_wait_ms=1.0)) as server:
            result = server.search(data[3], k=5)
        assert result.indices.shape == (5,)
        assert int(result.indices[0]) == 3  # self-match on its own row
        index.close()


def _fail_on_even(payload):
    if payload % 2 == 0:
        raise ValueError(f"even payload {payload}")
    return payload


class TestExecutorStats:
    """The stats counters are bumped from scheduler threads; they must be
    internally consistent and safe under concurrent increments."""

    def test_totals_consistent_after_mixed_outcomes(self):
        from repro.resilience import RetryPolicy

        with ShardExecutor(
            num_workers=4, backend="thread",
            retry=RetryPolicy(max_retries=0),
        ) as executor:
            outcomes = executor.map_outcomes(_fail_on_even, list(range(16)))
        stats = executor.stats
        assert len(outcomes) == 16
        assert stats.tasks == 16
        assert stats.completed + stats.failed == stats.tasks
        assert stats.failed == 8

    def test_retry_accounting_stays_consistent(self):
        from repro.resilience import RetryPolicy

        with ShardExecutor(
            num_workers=2, backend="thread",
            retry=RetryPolicy(
                max_retries=1, backoff_base_ms=0.0, backoff_max_ms=0.0
            ),
        ) as executor:
            outcomes = executor.map_outcomes(_fail_on_even, list(range(8)))
        stats = executor.stats
        assert len(outcomes) == 8
        assert stats.completed + stats.failed == stats.tasks
        assert stats.retries == 4  # each even payload retried exactly once

    def test_increment_is_atomic_under_threads(self):
        import threading

        from repro.parallel.executor import ExecutorStats

        stats = ExecutorStats()
        barrier = threading.Barrier(8)

        def bump():
            barrier.wait()
            for _ in range(1000):
                stats.increment("completed")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.completed == 8000

    def test_increment_rejects_unknown_counter(self):
        from repro.parallel.executor import ExecutorStats

        stats = ExecutorStats()
        with pytest.raises(AttributeError):
            stats.increment("not_a_counter")

    def test_as_dict_excludes_internals(self):
        from repro.parallel.executor import ExecutorStats

        snapshot = ExecutorStats().as_dict()
        assert "_lock" not in snapshot
        assert set(snapshot) == {
            "tasks", "completed", "failed", "retries", "timeouts",
            "pool_recycles", "serial_fallbacks",
        }
