"""Tests for repro.router: quotas, dispatch, hedging, failover, chaos.

The two integration tests at the bottom are the acceptance scenario: a
seeded Zipfian multi-tenant load of 500+ queries against a 3-replica
fleet with an injected slow replica must show a strictly better p99 with
hedging than without on the same seed, and — with an injected crash and
a rolling upgrade mid-load — zero failed requests, per-tenant quota
rejections matching the reference token-bucket model *exactly*, and
recall parity with an undisturbed run within 0.01.
"""

import threading
import time

import numpy as np
import pytest

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.core.sharding import ShardedCagraIndex
from repro.datasets.synthetic import make_queries
from repro.parallel import ParallelConfig
from repro.router import (
    Ewma,
    QuotaLedger,
    RouterConfig,
    ShardRouter,
    TenantOverQuota,
    TokenBucket,
    expected_quota_outcomes,
    run_fleet_closed_loop,
)
from repro.router.replica import ACTIVE, DEAD, DRAINING
from repro.serve import CagraServer, ServeConfig, make_zipf_schedule

SEARCH = SearchConfig(itopk=64, seed=5)

#: Per-server fault plan failing every batch (breaker / failover fodder).
_FAIL_EXECUTE = '[{"point": "serve.execute", "kind": "raise"}]'


def _slow_plan(delay_ms: float) -> str:
    """Per-server fault plan stalling every batch at execution time."""
    return (
        '[{"point": "serve.execute", "kind": "delay", '
        f'"delay_ms": {delay_ms}}}]'
    )


def make_fleet(
    index,
    num_replicas=3,
    slow_replica=None,
    slow_ms=25.0,
    failing_replica=None,
    serve_overrides=None,
    **router_overrides,
) -> ShardRouter:
    """A fleet of servers over ``index``; one may be slow or broken."""
    defaults = dict(
        max_batch=16, max_wait_ms=2.0, queue_capacity=1024, cache_capacity=0
    )
    defaults.update(serve_overrides or {})
    servers = []
    for rid in range(num_replicas):
        fields = dict(defaults)
        if rid == slow_replica:
            fields["fault_plan"] = _slow_plan(slow_ms)
        if rid == failing_replica:
            fields["fault_plan"] = _FAIL_EXECUTE
        servers.append(
            CagraServer(index, ServeConfig(**fields), search_config=SEARCH)
        )
    return ShardRouter(servers, config=RouterConfig(**router_overrides))


@pytest.fixture(scope="module")
def router_queries(small_data):
    return make_queries(small_data, 40, seed=31)


@pytest.fixture(scope="module")
def router_truth(small_data, router_queries):
    ids, _ = exact_search(small_data, router_queries, 10)
    return ids


# ----------------------------------------------------------------------
# Token buckets and the quota ledger
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.try_acquire(now=0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_acquire(now=0.0)
        assert bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=0.0)
        # 0.1s at 10 tokens/s mints exactly one token.
        assert bucket.try_acquire(now=0.1)
        assert not bucket.try_acquire(now=0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.try_acquire(now=0.0)
        # A long idle period cannot mint more than ``burst`` tokens.
        assert bucket.try_acquire(now=100.0)
        assert bucket.try_acquire(now=100.0)
        assert not bucket.try_acquire(now=100.0)

    def test_stale_now_cannot_mint_tokens(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_acquire(now=5.0)
        # Time running backwards is clamped, not credited.
        assert not bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=5.05)
        assert bucket.try_acquire(now=5.2)

    def test_retry_after_matches_deficit(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_acquire(now=0.0)
        assert bucket.retry_after_s() == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestQuotaLedger:
    def test_rejection_is_typed_and_counted(self):
        ledger = QuotaLedger(rate=10.0, burst=1.0)
        ledger.admit("tenant-a", now=0.0)
        with pytest.raises(TenantOverQuota) as excinfo:
            ledger.admit("tenant-a", now=0.0)
        assert excinfo.value.tenant == "tenant-a"
        assert excinfo.value.retry_after_s == pytest.approx(0.1)
        assert ledger.total_rejections == 1
        snap = ledger.snapshot()
        assert snap["admitted"]["tenant-a"] == 1
        assert snap["rejected"]["tenant-a"] == 1

    def test_buckets_are_per_tenant(self):
        ledger = QuotaLedger(rate=10.0, burst=1.0)
        ledger.admit("tenant-a", now=0.0)
        # tenant-b has its own full bucket.
        ledger.admit("tenant-b", now=0.0)
        with pytest.raises(TenantOverQuota):
            ledger.admit("tenant-a", now=0.0)


# ----------------------------------------------------------------------
# Dispatch policies and replica life cycle
# ----------------------------------------------------------------------
class TestDispatch:
    def test_load_aware_prefers_fast_replica(self, small_index, router_queries):
        router = make_fleet(small_index, dispatch="load_aware", hedge=False)
        # Teach the EWMAs: replica 1 is much faster than 0 and 2.
        for rid, ms in ((0, 50.0), (1, 1.0), (2, 50.0)):
            for _ in range(10):
                router.replicas[rid].observe_latency(ms)
        with router:
            for q in router_queries[:10]:
                result = router.search(q, k=5)
                assert result.replica == 1

    def test_round_robin_rotates(self, small_index, router_queries):
        router = make_fleet(small_index, dispatch="round_robin", hedge=False)
        with router:
            replicas = [
                router.search(router_queries[i % 5], k=5).replica
                for i in range(6)
            ]
        assert replicas == [0, 1, 2, 0, 1, 2]

    def test_dead_replica_never_dispatched(self, small_index, router_queries):
        router = make_fleet(small_index, dispatch="round_robin", hedge=False)
        with router:
            router.kill_replica(0)
            replicas = {
                router.search(router_queries[i % 5], k=5).replica
                for i in range(8)
            }
        assert 0 not in replicas
        assert router.replicas[0].state == DEAD

    def test_draining_is_last_resort(self, small_index, router_queries):
        router = make_fleet(small_index, dispatch="load_aware", hedge=False)
        with router:
            router.replicas[0].mark_draining()
            router.replicas[1].mark_draining()
            seen = {
                router.search(router_queries[i % 5], k=5).replica
                for i in range(6)
            }
            assert seen == {2}
            # All draining: the fleet degrades instead of refusing.
            router.replicas[2].mark_draining()
            result = router.search(router_queries[0], k=5)
            assert result.indices.shape == (5,)
            assert router.replicas[result.replica].state == DRAINING

    def test_ewma_converges(self):
        ewma = Ewma(alpha=0.5, initial=0.0)
        for _ in range(12):
            ewma.update(10.0)
        assert ewma.value == pytest.approx(10.0, abs=0.1)
        assert ewma.samples == 12


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_wins_over_slow_primary(self, small_index, router_queries):
        router = make_fleet(
            small_index,
            slow_replica=0,
            dispatch="round_robin",
            hedge=True,
            hedge_delay_ms=3.0,
        )
        with router:
            result = router.search(router_queries[0], k=10)  # seq 0 → replica 0
        assert result.hedged and result.hedge_won
        assert result.replica != 0
        assert result.latency_ms < 25.0  # beat the injected 25ms stall
        stats = router.stats()
        assert stats.hedges_issued == 1 and stats.hedges_won == 1

    def test_fast_primary_never_hedges(self, small_index, router_queries):
        router = make_fleet(
            small_index, dispatch="round_robin", hedge=True, hedge_delay_ms=200.0
        )
        with router:
            for i in range(6):
                result = router.search(router_queries[i % 5], k=5)
                assert not result.hedged
        assert router.stats().hedges_issued == 0

    def test_hedge_result_matches_primary_path(self, small_index, router_queries):
        """Exactly-once: the hedged answer equals the unhedged answer."""
        hedged = make_fleet(
            small_index, slow_replica=0, dispatch="round_robin",
            hedge=True, hedge_delay_ms=3.0,
        )
        with hedged:
            with_hedge = hedged.search(router_queries[0], k=10)
        plain = make_fleet(small_index, dispatch="round_robin", hedge=False)
        with plain:
            without = plain.search(router_queries[0], k=10)
        np.testing.assert_array_equal(with_hedge.indices, without.indices)

    def test_derived_delay_tracks_ewma(self, small_index):
        router = make_fleet(
            small_index, hedge=True, hedge_delay_ms=0.0,
            hedge_latency_factor=2.0, hedge_delay_floor_ms=1.0,
            hedge_delay_cap_ms=100.0,
        )
        replica = router.replicas[0]
        for _ in range(50):
            replica.observe_latency(20.0)
        assert router._hedge_delay_s(replica, 0) == pytest.approx(0.040, rel=0.05)
        # Floor and cap clamp the derived delay.
        for _ in range(200):
            replica.observe_latency(0.01)
        assert router._hedge_delay_s(replica, 0) == pytest.approx(0.001, rel=0.05)
        for _ in range(200):
            replica.observe_latency(500.0)
        assert router._hedge_delay_s(replica, 0) == pytest.approx(0.100, rel=0.05)

    def test_jitter_is_seeded_and_per_sequence(self, small_index):
        router = make_fleet(
            small_index, hedge=True, hedge_delay_ms=5.0, hedge_jitter_ms=4.0,
            seed=11,
        )
        again = make_fleet(
            small_index, hedge=True, hedge_delay_ms=5.0, hedge_jitter_ms=4.0,
            seed=11,
        )
        replica = router.replicas[0]
        delays = [router._hedge_delay_s(replica, seq) for seq in range(8)]
        # Same seed ⇒ identical stream; different sequences ⇒ distinct draws.
        assert delays == [again._hedge_delay_s(again.replicas[0], s) for s in range(8)]
        assert len(set(delays)) == len(delays)
        assert all(0.005 <= d <= 0.009 for d in delays)


# ----------------------------------------------------------------------
# Failover, breakers, and the router fault points
# ----------------------------------------------------------------------
class TestFailover:
    def test_failing_replica_fails_over(self, small_index, router_queries):
        router = make_fleet(
            small_index, failing_replica=0, dispatch="round_robin", hedge=False,
            breaker_failure_threshold=0,
        )
        with router:
            result = router.search(router_queries[0], k=5)  # seq 0 → replica 0
        assert result.replica != 0
        stats = router.stats()
        assert stats.failovers == 1
        assert stats.routed_failed == 0
        assert router.replicas[0].snapshot()["failures"] == 1

    def test_breaker_opens_and_routes_around(self, small_index, router_queries):
        router = make_fleet(
            small_index, failing_replica=0, dispatch="round_robin", hedge=False,
            breaker_failure_threshold=2, breaker_cooldown_s=60.0,
        )
        with router:
            for i in range(6):
                router.search(router_queries[i % 5], k=5)
            health = router.health()
        assert health.status == "degraded"
        assert health.open_breakers == [0]
        # Once open, replica 0 is excluded up front: failures stop at 2.
        assert router.replicas[0].snapshot()["failures"] == 2

    def test_dispatch_fault_point_triggers_failover(
        self, small_index, router_queries
    ):
        plan = (
            '[{"point": "router.dispatch", "kind": "raise", '
            '"match": {"replica": 0}, "times": 1}]'
        )
        router = make_fleet(
            small_index, dispatch="round_robin", hedge=False, fault_plan=plan,
        )
        with router:
            result = router.search(router_queries[0], k=5)
        assert result.replica == 1  # replica 0's dispatch was injected away
        assert router.stats().routed == 1

    def test_hedge_fault_point_cancels_hedge(self, small_index, router_queries):
        plan = '[{"point": "router.hedge", "kind": "raise"}]'
        router = make_fleet(
            small_index, slow_replica=0, dispatch="round_robin",
            hedge=True, hedge_delay_ms=3.0, fault_plan=plan,
        )
        with router:
            result = router.search(router_queries[0], k=5)
        # The hedge was injected away; the slow primary still answers.
        assert not result.hedge_won
        assert result.replica == 0
        assert router.stats().hedges_issued == 0

    def test_all_replicas_failing_raises(self, small_index, router_queries):
        router = make_fleet(
            small_index, num_replicas=2, dispatch="round_robin", hedge=False,
            breaker_failure_threshold=0, max_attempts=2,
        )
        for rid in (0, 1):
            router.replicas[rid].server.stop(drain=False)
        with pytest.raises(Exception):
            router.search(router_queries[0], k=5)
        assert router.stats().routed_failed == 1


# ----------------------------------------------------------------------
# Rolling upgrades and chaos
# ----------------------------------------------------------------------
class TestRollingSwap:
    def test_swap_replaces_every_live_replica(self, small_data, small_index):
        new_index = CagraIndex.build(
            small_data, GraphBuildConfig(graph_degree=16, seed=13)
        )
        router = make_fleet(small_index, hedge=False)
        with router:
            swapped = router.rolling_swap(new_index)
        assert swapped == 3
        stats = router.stats()
        assert stats.rolling_swaps == 1
        assert stats.index_swaps == 3  # summed across replica servers
        for replica in router.replicas:
            assert replica.server.index is new_index
            assert replica.state == ACTIVE

    def test_swap_skips_dead_replicas(self, small_data, small_index):
        new_index = CagraIndex.build(
            small_data, GraphBuildConfig(graph_degree=16, seed=13)
        )
        router = make_fleet(small_index, hedge=False)
        with router:
            router.kill_replica(1)
            assert router.rolling_swap(new_index) == 2
        assert router.replicas[1].server.index is small_index

    def test_swap_mid_traffic_keeps_recall(
        self, small_data, small_index, router_queries, router_truth
    ):
        """The chaos drill: hot-swap the whole fleet under live load."""
        new_index = CagraIndex.build(
            small_data, GraphBuildConfig(graph_degree=16, seed=13)
        )
        router = make_fleet(small_index, hedge=False)
        results = {}
        results_lock = threading.Lock()
        stop = threading.Event()

        def load() -> None:
            i = 0
            while not stop.is_set():
                row = i % 25
                found = router.search(router_queries[row], k=10).indices
                with results_lock:
                    results[i] = (row, found)
                i += 1

        with router:
            client = threading.Thread(target=load)
            client.start()
            time.sleep(0.05)
            swapped = router.rolling_swap(new_index)
            time.sleep(0.05)
            stop.set()
            client.join()
        assert swapped == 3
        rows = np.array([row for row, _ in results.values()])
        found = np.stack([ids for _, ids in results.values()])
        assert recall(found, router_truth[rows]) >= 0.95


class TestKillReplicaChaos:
    def test_mid_load_kill_degrades_gracefully(self, small_index, router_queries):
        router = make_fleet(small_index, hedge=True, hedge_delay_ms=5.0)
        outcomes = []
        stop = threading.Event()

        def load() -> None:
            i = 0
            while not stop.is_set():
                try:
                    router.search(router_queries[i % 25], k=5)
                    outcomes.append("ok")
                except Exception:
                    outcomes.append("failed")
                i += 1

        with router:
            client = threading.Thread(target=load)
            client.start()
            time.sleep(0.05)
            router.kill_replica(2)
            time.sleep(0.15)
            stop.set()
            client.join()
            health = router.health()
        assert outcomes.count("failed") == 0
        assert len(outcomes) > 5  # traffic kept flowing through the kill
        assert health.status == "degraded"
        assert health.replicas[2]["state"] == DEAD
        assert router.stats().replicas_dead == 1


# ----------------------------------------------------------------------
# Fleet stats surface
# ----------------------------------------------------------------------
class TestRouterStats:
    def test_base_fields_are_summed_fleet_wide(self, small_index, router_queries):
        router = make_fleet(small_index, dispatch="round_robin", hedge=False)
        with router:
            for i in range(9):
                router.search(router_queries[i % 5], k=5)
        stats = router.stats()
        assert stats.routed == 9
        assert stats.submitted == 9  # across all three replica servers
        assert sum(
            snap["dispatched"] for snap in stats.per_replica.values()
        ) == 9
        assert stats.replicas == 3 and stats.replicas_active == 3
        payload = stats.to_dict()
        assert payload["routed"] == 9
        assert payload["per_replica"]["0"]["dispatched"] == 3
        assert "hedging" in stats.summary()

    def test_health_snapshot_is_json_friendly(self, small_index):
        import json

        router = make_fleet(small_index, quota_rate_qps=100.0, quota_burst=5.0)
        with router:
            health = router.health()
        assert health.status == "ok"
        json.dumps(health.to_dict())  # must not raise


# ----------------------------------------------------------------------
# Determinism: same seed + fault plan ⇒ identical results and counters
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def two_shard(small_data):
    index = ShardedCagraIndex.build(
        small_data, 2, GraphBuildConfig(graph_degree=16, seed=3),
        parallel=ParallelConfig(backend="serial"),
    )
    yield index
    index.close()


def _deterministic_run(index, queries, schedule):
    # Wide timing margins make the hedge pattern structural, not racy:
    # normal legs finish in a few ms (tens on the process backend)
    # << 150 ms hedge delay << 400 ms injected stall, so a hedge fires
    # iff the primary is replica 0 and the hedge leg always wins.
    router = make_fleet(
        index,
        slow_replica=0,
        slow_ms=400.0,
        dispatch="round_robin",
        hedge=True,
        hedge_delay_ms=150.0,
        hedge_jitter_ms=10.0,
        seed=17,
        quota_rate_qps=200.0,
        quota_burst=8.0,
    )
    with router:
        report = run_fleet_closed_loop(
            router, queries, schedule, num_clients=1, k=10
        )
    stats = router.stats()
    return report, stats


class TestHedgeDeterminism:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_same_seed_same_results_and_counters(
        self, two_shard, router_queries, backend
    ):
        """Bitwise-identical answers and identical hedge counters across
        reruns, with shard fan-out on the thread and process backends."""
        view = ShardedCagraIndex(
            two_shard.shards,
            two_shard.assignments,
            parallel=ParallelConfig(backend=backend, num_workers=2),
        )
        view.search(router_queries[:4], 10)  # warm the worker pool
        schedule = make_zipf_schedule(
            60, num_tenants=3, num_query_rows=40, rate_qps=400.0, seed=23
        )
        first_report, first_stats = _deterministic_run(
            view, router_queries, schedule
        )
        second_report, second_stats = _deterministic_run(
            view, router_queries, schedule
        )
        np.testing.assert_array_equal(
            first_report.indices, second_report.indices
        )
        np.testing.assert_array_equal(
            first_report.outcome, second_report.outcome
        )
        np.testing.assert_array_equal(
            first_report.replica, second_report.replica
        )
        assert first_report.hedged == second_report.hedged
        assert first_report.hedge_wins == second_report.hedge_wins
        assert first_stats.hedges_issued == second_stats.hedges_issued
        assert first_stats.hedges_won == second_stats.hedges_won
        assert first_stats.quota_rejections == second_stats.quota_rejections
        # Round-robin sequential submission pins the hedge pattern: only
        # requests whose primary was the slow replica 0 hedge.
        assert first_stats.hedges_issued > 0
        hedged_positions = np.flatnonzero(
            np.asarray(first_report.outcome == "ok")
            & (first_report.replica != 0)
        )
        assert hedged_positions.size > 0


# ----------------------------------------------------------------------
# Acceptance: the multi-tenant fleet scenario from the issue
# ----------------------------------------------------------------------
class TestFleetAcceptance:
    REQUESTS = 520
    TENANTS = 4

    def _schedule(self, rate_qps=2000.0):
        return make_zipf_schedule(
            self.REQUESTS,
            num_tenants=self.TENANTS,
            num_query_rows=40,
            rate_qps=rate_qps,
            zipf_s=1.1,
            seed=41,
        )

    def test_hedging_beats_unhedged_p99_on_same_seed(
        self, small_index, router_queries
    ):
        schedule = self._schedule()
        p99 = {}
        for hedge in (False, True):
            # Hedge delay sits between normal leg latency and the
            # injected stall, so only slow-primary requests hedge —
            # hedging must not double the load on the healthy replicas.
            router = make_fleet(
                small_index,
                slow_replica=0,
                slow_ms=100.0,
                dispatch="round_robin",
                hedge=hedge,
                hedge_delay_ms=25.0,
                seed=41,
            )
            with router:
                report = run_fleet_closed_loop(
                    router, router_queries, schedule, num_clients=2, k=10
                )
            assert report.failed == 0 and report.timed_out == 0
            assert report.ok == self.REQUESTS
            p99[hedge] = report.latency_percentile_ms(99)
        # A third of primaries stall 100ms unhedged; hedged requests
        # escape after the 25ms hedge delay.
        assert p99[True] < p99[False]
        assert p99[False] >= 50.0

    def test_chaos_run_quota_exact_zero_failed_recall_parity(
        self, small_data, small_index, router_queries, router_truth
    ):
        """520 Zipfian queries, 3 replicas, slow replica + mid-load kill
        + rolling upgrade + per-tenant quotas: zero failures, exact
        quota accounting, recall parity ≤ 0.01 with a calm run."""
        rate, burst = 900.0, 12.0
        schedule = self._schedule()
        truth_rows = schedule.query_rows % 40

        def run(chaos: bool):
            router = make_fleet(
                small_index,
                slow_replica=0 if chaos else None,
                hedge=True,
                hedge_delay_ms=3.0,
                quota_rate_qps=rate,
                quota_burst=burst,
                seed=41,
            )
            new_index = (
                CagraIndex.build(
                    small_data, GraphBuildConfig(graph_degree=16, seed=13)
                )
                if chaos
                else None
            )
            with router:
                timers = []
                if chaos:
                    timers = [
                        threading.Timer(0.05, router.kill_replica, [2]),
                        threading.Timer(0.10, router.rolling_swap, [new_index]),
                    ]
                    for timer in timers:
                        timer.start()
                report = run_fleet_closed_loop(
                    router, router_queries, schedule, num_clients=2, k=10
                )
                for timer in timers:
                    timer.cancel()
                    timer.join()
                health = router.health()
            return report, router.stats(), health

        calm_report, _, _ = run(chaos=False)
        report, stats, health = run(chaos=True)

        # Zero failed requests: degraded service, never dropped service.
        assert report.failed == 0 and report.timed_out == 0
        assert report.ok + report.quota_rejected == self.REQUESTS
        assert report.ok > 0 and report.quota_rejected > 0

        # Quota rejections match the token-bucket model EXACTLY, chaos
        # or not — admission is decided on virtual arrival times.
        expected = expected_quota_outcomes(schedule, rate, burst)
        observed = {
            tenant: report.per_tenant_quota_rejected.get(tenant, 0)
            for tenant in expected
        }
        assert observed == expected
        assert calm_report.quota_rejected == report.quota_rejected

        # The kill and the rolling swap both actually happened mid-load.
        assert stats.replicas_dead == 1
        assert stats.rolling_swaps == 1
        assert health.status == "degraded"

        # Recall parity with the calm run within 0.01.
        def served_recall(rep):
            ok = rep.outcome == "ok"
            return recall(rep.indices[ok], router_truth[truth_rows[ok]])

        calm, stormy = served_recall(calm_report), served_recall(report)
        assert calm >= 0.95
        assert abs(calm - stormy) <= 0.01
