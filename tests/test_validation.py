"""Tests for repro.core.validation."""

import numpy as np
import pytest

from repro import CagraIndex, FixedDegreeGraph, validate_index
from repro.core.validation import ValidationReport


class TestValidateGoodIndex:
    def test_built_index_is_ok(self, small_index):
        report = validate_index(small_index, sample=200)
        assert report.ok
        assert not report.errors
        assert report.num_nodes == small_index.size
        assert report.degree == small_index.degree
        assert report.self_loops == 0
        assert report.duplicate_edges == 0

    def test_reachability_stats_populated(self, small_index):
        report = validate_index(small_index, sample=200)
        assert report.strong_components >= 1
        assert 0 < report.avg_two_hop <= small_index.degree * (small_index.degree + 1)
        assert 0 < report.two_hop_fraction_of_max <= 1

    def test_summary_readable(self, small_index):
        report = validate_index(small_index, sample=100)
        text = report.summary()
        assert "OK" in text
        assert "strong CC" in text


class TestValidateDegradedIndex:
    def _index_with_graph(self, data, neighbors):
        return CagraIndex(data, FixedDegreeGraph(neighbors))

    def test_self_loops_warned(self, tiny_data):
        n = len(tiny_data)
        neighbors = np.tile(np.arange(4, dtype=np.uint32), (n, 1))
        neighbors[:, 0] = np.arange(n, dtype=np.uint32)
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.ok  # warnings, not errors
        assert report.self_loops >= n  # the whole diagonal column
        assert any("self-loop" in w for w in report.warnings)

    def test_duplicates_warned(self, tiny_data):
        n = len(tiny_data)
        neighbors = np.full((n, 4), 7, dtype=np.uint32)
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.duplicate_edges == n * 3
        assert any("duplicate" in w for w in report.warnings)

    def test_unreachable_nodes_warned(self, tiny_data):
        n = len(tiny_data)
        neighbors = np.tile(np.array([0, 1], dtype=np.uint32), (n, 1))
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.min_in_degree == 0
        assert any("incoming" in w for w in report.warnings)

    def test_fragmented_graph_warned(self, tiny_data):
        n = len(tiny_data)
        # Tiny disjoint 2-cycles: n/2 strong components.
        partner = np.arange(n, dtype=np.uint32) ^ 1
        neighbors = np.stack([partner, partner], axis=1)
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.strong_components == n // 2
        assert any("strong components" in w for w in report.warnings)

    def test_nonfinite_dataset_is_error(self, tiny_data):
        data = tiny_data.copy()
        data[3, 2] = np.nan
        neighbors = np.tile(np.array([0, 1], dtype=np.uint32), (len(data), 1))
        report = validate_index(self._index_with_graph(data, neighbors))
        assert not report.ok
        assert any("non-finite" in e for e in report.errors)
        assert "INVALID" in report.summary()


class TestReportDataclass:
    def test_default_ok(self):
        report = ValidationReport(ok=True)
        assert report.errors == []
        assert report.warnings == []
