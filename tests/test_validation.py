"""Tests for repro.core.validation."""

import numpy as np
import pytest

from repro import CagraIndex, FixedDegreeGraph, validate_index
from repro.core.validation import ValidationReport


class TestValidateGoodIndex:
    def test_built_index_is_ok(self, small_index):
        report = validate_index(small_index, sample=200)
        assert report.ok
        assert not report.errors
        assert report.num_nodes == small_index.size
        assert report.degree == small_index.degree
        assert report.self_loops == 0
        assert report.duplicate_edges == 0

    def test_reachability_stats_populated(self, small_index):
        report = validate_index(small_index, sample=200)
        assert report.strong_components >= 1
        assert 0 < report.avg_two_hop <= small_index.degree * (small_index.degree + 1)
        assert 0 < report.two_hop_fraction_of_max <= 1

    def test_summary_readable(self, small_index):
        report = validate_index(small_index, sample=100)
        text = report.summary()
        assert "OK" in text
        assert "strong CC" in text


class TestValidateDegradedIndex:
    def _index_with_graph(self, data, neighbors):
        return CagraIndex(data, FixedDegreeGraph(neighbors))

    def test_self_loops_warned(self, tiny_data):
        n = len(tiny_data)
        neighbors = np.tile(np.arange(4, dtype=np.uint32), (n, 1))
        neighbors[:, 0] = np.arange(n, dtype=np.uint32)
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.ok  # warnings, not errors
        assert report.self_loops >= n  # the whole diagonal column
        assert any("self-loop" in w for w in report.warnings)

    def test_duplicates_warned(self, tiny_data):
        n = len(tiny_data)
        neighbors = np.full((n, 4), 7, dtype=np.uint32)
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.duplicate_edges == n * 3
        assert any("duplicate" in w for w in report.warnings)

    def test_unreachable_nodes_warned(self, tiny_data):
        n = len(tiny_data)
        neighbors = np.tile(np.array([0, 1], dtype=np.uint32), (n, 1))
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.min_in_degree == 0
        assert any("incoming" in w for w in report.warnings)

    def test_fragmented_graph_warned(self, tiny_data):
        n = len(tiny_data)
        # Tiny disjoint 2-cycles: n/2 strong components.
        partner = np.arange(n, dtype=np.uint32) ^ 1
        neighbors = np.stack([partner, partner], axis=1)
        report = validate_index(self._index_with_graph(tiny_data, neighbors))
        assert report.strong_components == n // 2
        assert any("strong components" in w for w in report.warnings)

    def test_nonfinite_dataset_is_error(self, tiny_data):
        data = tiny_data.copy()
        data[3, 2] = np.nan
        neighbors = np.tile(np.array([0, 1], dtype=np.uint32), (len(data), 1))
        report = validate_index(self._index_with_graph(data, neighbors))
        assert not report.ok
        assert any("non-finite" in e for e in report.errors)
        assert "INVALID" in report.summary()


class TestReportDataclass:
    def test_default_ok(self):
        report = ValidationReport(ok=True)
        assert report.errors == []
        assert report.warnings == []


class TestCorruptGraphFixtures:
    """Each corruption mode must produce its own specific finding.

    The fixtures mutate a valid index's graph in place (bypassing the
    ``FixedDegreeGraph`` constructor checks) exactly the way on-disk
    corruption or a buggy refactor would.
    """

    def _corruptible_index(self, tiny_data):
        n = len(tiny_data)
        rng = np.random.default_rng(11)
        neighbors = np.empty((n, 4), dtype=np.uint32)
        for i in range(n):
            choices = rng.choice(n - 1, size=4, replace=False)
            neighbors[i] = np.where(choices >= i, choices + 1, choices)
        return CagraIndex(tiny_data, FixedDegreeGraph(neighbors))

    def test_out_of_range_neighbor_id(self, tiny_data):
        index = self._corruptible_index(tiny_data)
        index.graph.neighbors[3, 1] = len(tiny_data) + 5  # in-place corruption
        report = validate_index(index)
        assert not report.ok
        assert any("out of range" in e for e in report.errors)
        assert any("skipped" in w for w in report.warnings)

    def test_stray_parent_flag_bit(self, tiny_data):
        from repro.core.graph import PARENT_FLAG

        index = self._corruptible_index(tiny_data)
        index.graph.neighbors[5, 0] |= PARENT_FLAG
        report = validate_index(index)
        assert not report.ok
        assert report.parent_flag_bits == 1
        assert any("PARENT_FLAG" in e for e in report.errors)
        # The flag bit also pushes the id out of the uint32 range check's
        # bare-id view only if the bare id were invalid; the specific
        # finding is the flag one.
        assert not any("out of range" in e for e in report.errors)

    def test_self_loop_fixture(self, tiny_data):
        index = self._corruptible_index(tiny_data)
        index.graph.neighbors[7, 2] = 7
        report = validate_index(index)
        assert report.self_loops == 1
        assert any("self-loop" in w for w in report.warnings)

    def test_wrong_degree_against_build_config(self, tiny_data):
        from repro import GraphBuildConfig

        index = self._corruptible_index(tiny_data)
        index.build_config = GraphBuildConfig(graph_degree=8)
        report = validate_index(index)
        assert not report.ok
        assert any("degree" in e and "expected" in e for e in report.errors)

    def test_wrong_degree_explicit_parameter(self, tiny_data):
        index = self._corruptible_index(tiny_data)
        report = validate_index(index, expected_degree=16)
        assert not report.ok
        assert any("expected degree (16)" in e for e in report.errors)

    def test_uncorrupted_fixture_is_clean(self, tiny_data):
        report = validate_index(self._corruptible_index(tiny_data), expected_degree=4)
        assert report.ok
        assert report.parent_flag_bits == 0

    def test_index_mask_sentinel_edges_flagged(self, tiny_data):
        """Regression: INDEX_MASK out-edges (dangling, e.g. written by an
        unrepaired extend) get their own finding, distinct from the
        generic out-of-range check."""
        from repro.core.graph import INDEX_MASK

        index = self._corruptible_index(tiny_data)
        index.graph.neighbors[2, 0] = INDEX_MASK
        index.graph.neighbors[9, 3] = INDEX_MASK
        report = validate_index(index)
        assert not report.ok
        assert report.unfilled_edges == 2
        assert any("INDEX_MASK" in e for e in report.errors)
        assert not any("out of range" in e for e in report.errors)
