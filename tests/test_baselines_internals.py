"""White-box tests of baseline construction internals."""

import numpy as np
import pytest

from repro.baselines.ganns import GannsIndex
from repro.baselines.ggnn import GgnnIndex
from repro.baselines.hnsw import HnswIndex


class TestGgnnTwoHopSweep:
    def test_sweep_improves_knn_quality(self, tiny_data):
        from repro.core.nn_descent import brute_force_knn_graph

        index = GgnnIndex(tiny_data, degree=6, shard_size=40)
        rng = np.random.default_rng(0)
        # Start from a random graph; sweeps must pull it toward true kNN.
        neighbors = np.array(
            [rng.choice([j for j in range(len(tiny_data)) if j != i],
                        size=6, replace=False)
             for i in range(len(tiny_data))]
        )
        exact = brute_force_knn_graph(tiny_data, 6)

        def overlap(rows):
            return np.mean([
                len(np.intersect1d(rows[i], exact.graph.neighbors[i])) / 6
                for i in range(len(tiny_data))
            ])

        before = overlap(neighbors)
        out = neighbors.copy()
        for _ in range(3):
            out = index._two_hop_sweep(out, index.build_stats)
        assert overlap(out) > before

    def test_sweep_preserves_shape_and_range(self, tiny_data):
        index = GgnnIndex(tiny_data, degree=5, shard_size=40)
        rng = np.random.default_rng(1)
        neighbors = rng.integers(0, len(tiny_data), size=(len(tiny_data), 5))
        out = index._two_hop_sweep(neighbors, index.build_stats)
        assert out.shape == neighbors.shape
        assert out.min() >= 0 and out.max() < len(tiny_data)

    def test_sweep_block_invariance(self, tiny_data):
        index = GgnnIndex(tiny_data, degree=5, shard_size=40)
        rng = np.random.default_rng(2)
        neighbors = np.array(
            [rng.choice([j for j in range(len(tiny_data)) if j != i],
                        size=5, replace=False)
             for i in range(len(tiny_data))]
        )
        a = index._two_hop_sweep(neighbors, index.build_stats, block=16)
        b = index._two_hop_sweep(neighbors, index.build_stats, block=512)
        np.testing.assert_array_equal(a, b)


class TestGannsTrim:
    def test_trim_keeps_nearest_half_and_earliest(self, tiny_data):
        index = GannsIndex(tiny_data, degree=6)
        index.adjacency = [np.arange(1, 13, dtype=np.int64)]  # overgrown row
        index._trim_rows(index.build_stats)
        row = index.adjacency[0]
        assert len(row) == 6
        # Nearest half must be the true 3 nearest of the candidates.
        from repro.core.distances import distances_to_query

        d = distances_to_query(tiny_data, tiny_data[0], np.arange(1, 13))
        nearest3 = set(np.arange(1, 13)[np.argsort(d)[:3]].tolist())
        assert nearest3 <= set(row.tolist())

    def test_trim_leaves_short_rows_alone(self, tiny_data):
        index = GannsIndex(tiny_data, degree=6)
        index.adjacency = [np.array([1, 2, 3], dtype=np.int64)]
        index._trim_rows(index.build_stats)
        np.testing.assert_array_equal(index.adjacency[0], [1, 2, 3])


class TestHnswHeuristic:
    def test_heuristic_prefers_diverse_neighbors(self):
        """Algorithm 4: a candidate hidden behind a kept neighbor is
        dropped in favour of a more diverse (even farther) one."""
        # Points on a line: origin at 0; candidates at 1.0, 1.2 (behind
        # the first), and -2.0 (opposite side, farther).
        data = np.array(
            [[0.0], [1.0], [1.2], [-2.0]], dtype=np.float32
        )
        index = HnswIndex(data, m=2, ef_construction=4)
        pool = [(1.0, 1), (1.44, 2), (4.0, 3)]
        chosen = index._select_heuristic(data[0], pool, 2, None)
        ids = [c for _, c in chosen]
        assert 1 in ids
        assert 3 in ids  # diverse far point beats the occluded near one
        assert 2 not in ids

    def test_heuristic_falls_back_to_nearest(self):
        """If diversity filtering would underfill, nearest-first pads."""
        data = np.array([[0.0], [1.0], [1.1], [1.2]], dtype=np.float32)
        index = HnswIndex(data, m=3, ef_construction=4)
        pool = [(1.0, 1), (1.21, 2), (1.44, 3)]
        chosen = index._select_heuristic(data[0], pool, 3, None)
        assert len(chosen) == 3

    def test_level_distribution_geometric(self):
        rng_index = HnswIndex(np.zeros((2, 2), dtype=np.float32), m=16, seed=0)
        levels = [rng_index._random_level() for _ in range(20_000)]
        share_l0 = sum(1 for l in levels if l == 0) / len(levels)
        # P(level = 0) = 1 - 1/m = 0.9375 for m = 16.
        assert share_l0 == pytest.approx(1 - 1 / 16, abs=0.02)
