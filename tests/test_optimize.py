"""Unit tests for repro.core.optimize — the heart of the CAGRA paper."""

import numpy as np
import pytest

from repro.core.config import GraphBuildConfig
from repro.core.graph import FixedDegreeGraph
from repro.core.metrics import average_two_hop_count, strong_connected_components
from repro.core.nn_descent import KnnGraphResult, brute_force_knn_graph
from repro.core.optimize import (
    count_detourable_routes,
    merge_reverse_edges,
    optimize_graph,
    prune_to_degree,
    reorder_edges,
)


def reference_detour_counts(neighbors: np.ndarray, distances=None) -> np.ndarray:
    """O(N * d^2) literal implementation of Fig. 2 / Eq. 3 for testing."""
    n, d = neighbors.shape
    counts = np.zeros((n, d), dtype=np.int64)
    for x in range(n):
        position = {int(y): r for r, y in enumerate(neighbors[x])}
        for a in range(d):  # rank of X -> Z
            z = int(neighbors[x, a])
            for j in range(d):  # rank of Z -> Y in Z's list
                y = int(neighbors[z, j])
                r_y = position.get(y)
                if r_y is None:
                    continue
                if distances is None:
                    if max(a, j) < r_y:
                        counts[x, r_y] += 1
                else:
                    w_xz = distances[x, a]
                    w_zy = distances[z, j]
                    w_xy = distances[x, r_y]
                    if max(w_xz, w_zy) < w_xy:
                        counts[x, r_y] += 1
    return counts


class TestDetourCounts:
    def test_matches_reference_rank_based(self):
        rng = np.random.default_rng(0)
        n, d = 60, 6
        neighbors = np.array(
            [rng.choice([j for j in range(n) if j != i], size=d, replace=False)
             for i in range(n)]
        )
        fast = count_detourable_routes(neighbors, block=16)
        slow = reference_detour_counts(neighbors)
        np.testing.assert_array_equal(fast, slow)

    def test_matches_reference_distance_based(self):
        rng = np.random.default_rng(1)
        n, d = 50, 5
        neighbors = np.array(
            [rng.choice([j for j in range(n) if j != i], size=d, replace=False)
             for i in range(n)]
        )
        distances = np.sort(rng.random((n, d)), axis=1).astype(np.float32)
        fast = count_detourable_routes(neighbors, distances=distances, block=13)
        slow = reference_detour_counts(neighbors, distances)
        np.testing.assert_array_equal(fast, slow)

    def test_first_edge_never_detourable_rank_based(self):
        """Rank 0 edges cannot be detoured: max(a, j) < 0 is impossible."""
        rng = np.random.default_rng(2)
        neighbors = np.array(
            [rng.choice([j for j in range(40) if j != i], size=5, replace=False)
             for i in range(40)]
        )
        counts = count_detourable_routes(neighbors)
        assert (counts[:, 0] == 0).all()

    def test_block_size_invariance(self, small_knn):
        a = count_detourable_routes(small_knn.graph.neighbors, block=64)
        b = count_detourable_routes(small_knn.graph.neighbors, block=500)
        np.testing.assert_array_equal(a, b)

    def test_paper_figure2_example(self):
        """The worked example of Fig. 2: node X with neighbors A..E.

        Construct a tiny instance where a far-by-distance edge survives
        because it has no detourable routes.
        """
        # X=0; A=1, B=2, C=3, D=4, E=5 at ranks 0..4.
        # Edges among neighbors create detours for C (rank 2) and D (rank 3).
        neighbors = np.array([
            [1, 2, 3, 4, 5],   # X
            [3, 0, 2, 4, 5],   # A -> C at rank 0
            [4, 0, 1, 3, 5],   # B -> D at rank 0
            [1, 0, 2, 4, 5],   # C
            [2, 0, 1, 3, 5],   # D
            [0, 1, 2, 3, 4],   # E: no one routes to E cheaply
        ])
        counts = count_detourable_routes(neighbors)
        x_counts = counts[0]
        # C (rank 2) detourable via A (ranks 0,0); D (rank 3) via B (1,0).
        assert x_counts[2] >= 1
        assert x_counts[3] >= 1
        # E (rank 4) has no detour: stays at 0 and outranks C/D after reorder.
        assert x_counts[4] == 0
        reordered = reorder_edges(neighbors, counts)
        kept = prune_to_degree(reordered, 3)[0]
        assert 5 in kept  # E survives despite being the farthest


class TestReorderPrune:
    def test_reorder_is_stable_on_ties(self):
        neighbors = np.array([[10, 11, 12, 13]])
        counts = np.array([[0, 0, 0, 0]])
        np.testing.assert_array_equal(reorder_edges(neighbors, counts), neighbors)

    def test_reorder_ascending_by_count(self):
        neighbors = np.array([[10, 11, 12]])
        counts = np.array([[2, 0, 1]])
        np.testing.assert_array_equal(reorder_edges(neighbors, counts), [[11, 12, 10]])

    def test_prune_keeps_prefix(self):
        neighbors = np.array([[5, 6, 7, 8]])
        np.testing.assert_array_equal(prune_to_degree(neighbors, 2), [[5, 6]])

    def test_prune_too_large_raises(self):
        with pytest.raises(ValueError, match="prune"):
            prune_to_degree(np.zeros((3, 4), dtype=np.uint32), 5)


class TestMergeReverseEdges:
    def test_degree_preserved(self, small_knn):
        pruned = FixedDegreeGraph(prune_to_degree(small_knn.graph.neighbors, 8))
        merged = merge_reverse_edges(pruned)
        assert merged.degree == 8
        assert merged.num_nodes == pruned.num_nodes

    def test_no_duplicates_per_row(self, small_knn):
        pruned = FixedDegreeGraph(prune_to_degree(small_knn.graph.neighbors, 8))
        merged = merge_reverse_edges(pruned)
        for row in merged.neighbors[:100]:
            assert len(set(row.tolist())) == len(row)

    def test_no_self_loops(self, small_knn):
        pruned = FixedDegreeGraph(prune_to_degree(small_knn.graph.neighbors, 8))
        merged = merge_reverse_edges(pruned)
        assert not merged.has_self_loops()

    def test_interleaving_takes_from_both(self):
        """With reverse edges available, about half the row must be reverse."""
        # Directed star-ish: many nodes point at node 0, node 0 points away.
        rng = np.random.default_rng(0)
        n, d = 40, 4
        rows = np.array(
            [rng.choice([j for j in range(n) if j != i], size=d, replace=False)
             for i in range(n)]
        )
        pruned = FixedDegreeGraph(rows)
        merged = merge_reverse_edges(pruned)
        reverse_available = pruned.reversed_edge_lists()
        hits = 0
        total = 0
        for node in range(n):
            rev = set(int(s) for s in reverse_available[node][:d])
            fwd = set(int(x) for x in rows[node])
            only_rev = rev - fwd
            if not only_rev:
                continue
            total += 1
            if only_rev & set(int(x) for x in merged.neighbors[node]):
                hits += 1
        assert total > 0
        assert hits / total > 0.5

    def test_reduces_strong_cc(self):
        """Reverse edges must repair one-way reachability (paper Fig. 3)."""
        # A directed chain graph: many SCCs before, fewer after.
        n, d = 30, 2
        rows = np.array([[(i + 1) % n, (i + 2) % n] for i in range(n)], dtype=np.uint32)
        # Break the cycle: last two nodes point back into the middle.
        rows[n - 1] = [n - 2, n - 3]
        rows[n - 2] = [n - 3, n - 4]
        pruned = FixedDegreeGraph(rows)
        before = strong_connected_components(pruned)
        merged = merge_reverse_edges(pruned)
        after = strong_connected_components(merged)
        assert after <= before


class TestOptimizeGraph:
    def test_output_degree(self, small_knn):
        config = GraphBuildConfig(graph_degree=16)
        graph, report = optimize_graph(small_knn, config)
        assert graph.degree == 16
        assert report.reordering == "rank"

    def test_rank_based_needs_no_distances(self, small_knn):
        config = GraphBuildConfig(graph_degree=16, reordering="rank")
        _, report = optimize_graph(small_knn, config)
        assert report.distance_table_bytes == 0
        assert report.distance_computations == 0

    def test_distance_based_uses_table(self, small_knn):
        config = GraphBuildConfig(graph_degree=16, reordering="distance")
        _, report = optimize_graph(small_knn, config)
        assert report.distance_table_bytes == small_knn.distances.nbytes

    def test_degree_exceeding_initial_raises(self, small_knn):
        config = GraphBuildConfig(graph_degree=64)
        with pytest.raises(ValueError, match="exceeds"):
            optimize_graph(small_knn, config)

    def test_full_optimization_improves_two_hop(self, small_data, small_knn):
        """Fig. 3: full CAGRA optimization beats plain pruned k-NN."""
        d = 16
        plain = FixedDegreeGraph(prune_to_degree(small_knn.graph.neighbors, d))
        optimized, _ = optimize_graph(small_knn, GraphBuildConfig(graph_degree=d))
        plain_2hop = average_two_hop_count(plain, sample=300, seed=1)
        opt_2hop = average_two_hop_count(optimized, sample=300, seed=1)
        assert opt_2hop > plain_2hop

    def test_reverse_edges_reduce_strong_cc(self, small_knn):
        """Fig. 3: reverse edge addition drives strong CC down."""
        d = 16
        no_reverse, _ = optimize_graph(
            small_knn, GraphBuildConfig(graph_degree=d, add_reverse_edges=False)
        )
        full, _ = optimize_graph(small_knn, GraphBuildConfig(graph_degree=d))
        assert strong_connected_components(full) <= strong_connected_components(
            no_reverse
        )

    def test_reordering_none_prunes_by_distance_rank(self, small_knn):
        d = 16
        graph, _ = optimize_graph(
            small_knn,
            GraphBuildConfig(graph_degree=d, reordering="none", add_reverse_edges=False),
        )
        np.testing.assert_array_equal(
            graph.neighbors, small_knn.graph.neighbors[:, :d]
        )

    def test_rank_vs_distance_similar_two_hop(self, small_knn):
        """Q-A3: rank-based optimization is compatible with distance-based."""
        rank_graph, _ = optimize_graph(small_knn, GraphBuildConfig(graph_degree=16))
        dist_graph, _ = optimize_graph(
            small_knn, GraphBuildConfig(graph_degree=16, reordering="distance")
        )
        rank_2hop = average_two_hop_count(rank_graph, sample=300, seed=2)
        dist_2hop = average_two_hop_count(dist_graph, sample=300, seed=2)
        assert rank_2hop == pytest.approx(dist_2hop, rel=0.15)


class TestInterleaveOrder:
    def test_alternating_positions_when_reverse_plentiful(self):
        """Sec. III-B2: forward and reverse edges interleave — even slots
        from the pruned graph, odd slots from the reversed graph — when
        both sides have enough distinct children."""
        # Ring-ish pruned graph where every node has abundant reverse
        # edges distinct from its forward ones.
        n, d = 12, 4
        rows = np.array(
            [[(i + 1) % n, (i + 2) % n, (i + 3) % n, (i + 4) % n] for i in range(n)],
            dtype=np.uint32,
        )
        pruned = FixedDegreeGraph(rows)
        merged = merge_reverse_edges(pruned)
        reverse_lists = pruned.reversed_edge_lists()
        for node in range(n):
            fwd = [int(x) for x in rows[node]]
            rev = [int(x) for x in reverse_lists[node] if int(x) not in fwd]
            if len(rev) < d // 2:
                continue
            row = [int(x) for x in merged.neighbors[node]]
            # Even slots come from the forward list, in forward order.
            assert row[0] == fwd[0]
            assert row[2] in fwd
            # Odd slots come from the reverse list.
            assert row[1] in rev
            assert row[3] in rev

    def test_compensation_from_forward_when_reverse_short(self):
        """Nodes with no incoming edges fill their row from the pruned
        graph alone."""
        # Star: all nodes point at 0 and 1; node 5 gets no reverse edges
        # from anyone... construct: nodes 0..5, rows all [0, 1] except
        # self-avoidance handling.
        rows = np.array(
            [[1, 2], [0, 2], [0, 1], [0, 1], [0, 1], [0, 1]], dtype=np.uint32
        )
        pruned = FixedDegreeGraph(rows)
        merged = merge_reverse_edges(pruned)
        # Node 5 has no incoming edges: its merged row is its forward row.
        np.testing.assert_array_equal(sorted(merged.neighbors[5].tolist()), [0, 1])
