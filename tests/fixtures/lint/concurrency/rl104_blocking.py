"""RL104 fixture: blocking calls while holding a lock (deadlock shape)."""

import queue
import threading

__all__ = ["Pipeline"]


class Pipeline:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue()

    def drain(self):
        with self._lock:
            return self._queue.get()  # RL104: unbounded wait under the lock

    def wait_result(self, future):
        with self._lock:
            return future.result()  # RL104: unbounded wait under the lock
