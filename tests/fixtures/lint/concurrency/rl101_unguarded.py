"""RL101 fixture: lock-guarded attribute accessed without its lock."""

import threading

__all__ = ["Counter"]


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def safe_add(self, n):
        with self._lock:
            self.total = self.total + n

    def unsafe_add(self, n):
        self.total = self.total + n  # RL101: write outside the lock

    def unsafe_read(self):
        return self.total  # RL101: read outside the lock
