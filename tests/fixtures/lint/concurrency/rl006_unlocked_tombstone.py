"""RL006 fixture: visibility state (tombstones / live mask) written
outside the owning class's lock — every method below races a concurrent
reader."""

import threading

import numpy as np


class LeakyTombstones:
    def __init__(self, rows: int):
        self._lock = threading.Lock()
        self._tombstones = np.zeros(rows, dtype=bool)
        self._live_mask = np.ones(rows, dtype=bool)

    def delete(self, row: int) -> None:
        self._tombstones[row] = True  # element store, lock-free

    def reset(self) -> None:
        self._tombstones.fill(False)  # in-place mutator, lock-free

    def republish(self, mask: np.ndarray) -> None:
        self._live_mask = mask  # rebind, lock-free
