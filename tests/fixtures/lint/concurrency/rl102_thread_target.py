"""RL102 fixture: thread target mutates shared state without a lock."""

import threading

__all__ = ["spawn"]

results = []


def _worker(n):
    results.append(n)  # RL102: shared container, no lock held


def spawn():
    thread = threading.Thread(target=_worker, args=(1,))
    thread.start()
    return thread
