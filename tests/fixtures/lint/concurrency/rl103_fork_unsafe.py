"""RL103 fixture: fork-unsafe operations inside a process-pool task."""

import os
from concurrent.futures import ProcessPoolExecutor

__all__ = ["run"]


def _crash_task(payload):
    os._exit(1)  # RL103: kills the forked worker without cleanup


def run(payloads):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return [pool.submit(_crash_task, p) for p in payloads]
