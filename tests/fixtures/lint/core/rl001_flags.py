"""RL001 fixture: flagged id array indexed without & INDEX_MASK."""

import numpy as np

from repro.core.graph import INDEX_MASK, PARENT_FLAG

__all__ = ["bad_gather", "good_gather"]


def bad_gather(data: np.ndarray, ids: np.ndarray) -> np.ndarray:
    flagged = ids | PARENT_FLAG
    return data[flagged]  # RL001: flag bit still set


def good_gather(data: np.ndarray, ids: np.ndarray) -> np.ndarray:
    flagged = ids | PARENT_FLAG
    return data[flagged & INDEX_MASK]
