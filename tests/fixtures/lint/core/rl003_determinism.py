"""RL003 fixture: global-state and time-seeded randomness."""

import time

import numpy as np

__all__ = ["bad_seeds", "bad_time_seed"]


def bad_seeds(n: int) -> np.ndarray:
    np.random.seed(0)  # RL003: global RNG state
    return np.random.randint(0, n, size=8)  # RL003: legacy global-state call


def bad_time_seed() -> np.random.Generator:
    return np.random.default_rng(int(time.time()))  # RL003: time-based seed
