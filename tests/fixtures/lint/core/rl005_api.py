"""RL005 fixture: float distance equality and __all__ drift."""

import numpy as np

__all__ = ["exact_match", "not_defined_anywhere"]  # RL005: phantom export


def exact_match(dists: np.ndarray) -> np.ndarray:
    return dists == 0.0  # RL005: exact float equality on distances


def forgotten_public_helper() -> int:  # RL005: missing from __all__
    return int(np.uint32(1))
