"""RL004 fixture: inline distance math bypassing the counted wrappers.

Lives under a ``core/`` path component so the accounting rule applies.
"""

import numpy as np

__all__ = ["inline_norm", "inline_sq", "inline_matmul"]


def inline_norm(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a - b))  # RL004: uncounted distance


def inline_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ((a - b) ** 2).sum(axis=1)  # RL004: uncounted squared distance


def inline_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return -(a @ b.T)  # RL004: uncounted inner product
