"""RL007 fixture: a per-query Python loop inside an ``@hot_path`` function."""

import numpy as np

__all__ = ["hot_path", "step_rows"]


def hot_path(fn):
    fn.__hot_path__ = True
    return fn


@hot_path
def step_rows(queries: np.ndarray, batch: int) -> float:
    total = 0.0
    for i in range(batch):  # RL007: iteration count scales with the batch
        total += float(queries[i].sum())
    return total
