"""RL002 fixture: id arrays without explicit dtypes, hazardous comparisons."""

import numpy as np

__all__ = ["make_ids", "has_sentinel"]


def make_ids(n: int) -> np.ndarray:
    node_ids = np.arange(n)  # RL002: platform-dependent default dtype
    return node_ids


def has_sentinel(ids: np.ndarray) -> np.ndarray:
    return ids == -1  # RL002: always-false under uint32
