"""RL203 fixture: INDEX_KINDS lists a kind the builder registry lacks."""

__all__ = ["INDEX_KINDS", "build"]

INDEX_KINDS = ("cagra", "flat")

_BUILDERS = {
    "cagra": None,
}


def build(kind):
    return _BUILDERS[kind]
