"""RL201 fixture: adapter search returns raw tuples, skips the contract."""

__all__ = ["FlatAnnIndex"]


class FlatAnnIndex:
    kind = "flat"

    def __init__(self, inner):
        self._inner = inner

    def search(self, queries, k):
        ids, dists = self._inner.raw_topk(queries, k)
        return ids, dists  # RL201: AnnIndex search must return SearchResult
