"""RL202 fixture: int64 ids fed to SearchResult, float == on result path."""

import numpy as np

from repro.api.results import SearchResult

__all__ = ["Flat64AnnIndex"]


class Flat64AnnIndex:
    kind = "flat64"

    def search(self, queries, k):
        ids = np.zeros((len(queries), k), dtype=np.int64)
        dists = np.full((len(queries), k), np.inf, dtype=np.float32)
        exact = dists == 0.0  # RL202: float equality on the result path
        del exact
        return SearchResult(indices=ids, distances=dists)  # RL202: int64 ids
