"""Unit tests for repro.core.index (CagraIndex public API)."""

import os

import numpy as np
import pytest

from repro import CagraIndex, FixedDegreeGraph, GraphBuildConfig, SearchConfig
from repro.core.metrics import recall
from repro.core.nn_descent import build_knn_graph


class TestBuild:
    def test_build_reports_breakdown(self, small_index):
        report = small_index.build_report
        assert report.knn_seconds > 0
        assert report.optimize_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.knn_seconds + report.optimize_seconds
        )
        assert report.knn_distance_computations > 0
        assert report.nn_descent_iterations >= 1

    def test_repr(self, small_index):
        text = repr(small_index)
        assert "CagraIndex" in text
        assert "degree=16" in text

    def test_properties(self, small_index, small_data):
        assert small_index.size == len(small_data)
        assert small_index.dim == small_data.shape[1]
        assert small_index.degree == 16

    def test_memory_bytes(self, small_index):
        expected = small_index.dataset.nbytes + small_index.graph.neighbors.nbytes
        assert small_index.memory_bytes() == expected

    def test_rejects_1d_dataset(self):
        with pytest.raises(ValueError):
            CagraIndex.build(np.zeros(10, dtype=np.float32))

    def test_rejects_single_row(self):
        with pytest.raises(ValueError):
            CagraIndex.build(np.zeros((1, 4), dtype=np.float32))

    def test_fp16_storage(self, small_data):
        index = CagraIndex.build(
            small_data[:300], GraphBuildConfig(graph_degree=8), dataset_dtype="float16"
        )
        assert index.dataset.dtype == np.float16
        result = index.search(small_data[:5], k=3, config=SearchConfig(itopk=16))
        assert np.isfinite(result.distances).all()

    def test_from_knn_result_reuses_initial_graph(self, small_data, small_knn):
        index = CagraIndex.from_knn_result(
            small_data, small_knn, GraphBuildConfig(graph_degree=16)
        )
        assert index.degree == 16
        assert index.build_report.knn_seconds == 0.0

    def test_mismatched_graph_rejected(self, small_data):
        graph = FixedDegreeGraph(np.zeros((10, 2), dtype=np.uint32))
        with pytest.raises(ValueError, match="rows"):
            CagraIndex(small_data, graph)

    def test_bad_metric_rejected(self, small_data, small_index):
        with pytest.raises(ValueError, match="metric"):
            CagraIndex(small_data, small_index.graph, metric="hamming")


class TestSearchApi:
    def test_end_to_end_recall(self, small_index, small_queries, small_truth):
        result = small_index.search(small_queries, 10, SearchConfig(itopk=64))
        assert recall(result.indices, small_truth) > 0.9

    def test_default_config(self, small_index, small_queries):
        result = small_index.search(small_queries, k=5)
        assert result.indices.shape == (25, 5)


class TestSerialization:
    def test_roundtrip(self, small_index, small_queries, tmp_path):
        path = str(tmp_path / "index.npz")
        small_index.save(path)
        loaded = CagraIndex.load(path)
        assert loaded.size == small_index.size
        assert loaded.metric == small_index.metric
        np.testing.assert_array_equal(loaded.graph.neighbors, small_index.graph.neighbors)
        np.testing.assert_array_equal(loaded.dataset, small_index.dataset)

    def test_loaded_index_searches_identically(self, small_index, small_queries, tmp_path):
        path = str(tmp_path / "index.npz")
        small_index.save(path)
        loaded = CagraIndex.load(path)
        config = SearchConfig(itopk=32, seed=9)
        a = small_index.search(small_queries[:5], 10, config)
        b = loaded.search(small_queries[:5], 10, config)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_fp16_roundtrip(self, small_data, tmp_path):
        index = CagraIndex.build(
            small_data[:300], GraphBuildConfig(graph_degree=8), dataset_dtype="float16"
        )
        path = str(tmp_path / "half.npz")
        index.save(path)
        loaded = CagraIndex.load(path)
        assert loaded.dataset.dtype == np.float16

    def test_file_created(self, small_index, tmp_path):
        path = str(tmp_path / "out.npz")
        small_index.save(path)
        assert os.path.exists(path)
        assert os.path.getsize(path) > 0
