"""Integration tests: cross-module behaviour matching the paper's claims."""

import numpy as np
import pytest

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import HnswIndex, exact_search
from repro.core.metrics import (
    average_two_hop_count,
    recall,
    strong_connected_components,
)
from repro.core.nn_descent import build_knn_graph
from repro.core.optimize import prune_to_degree
from repro.core.graph import FixedDegreeGraph
from repro.gpusim import CpuCostModel, GpuCostModel


class TestGraphOptimizationClaims:
    """Fig. 3: what each optimization step contributes."""

    @pytest.fixture(scope="class")
    def variants(self, small_data, small_knn):
        d = 16
        knn_only = FixedDegreeGraph(prune_to_degree(small_knn.graph.neighbors, d))
        reorder_only = CagraIndex.from_knn_result(
            small_data, small_knn,
            GraphBuildConfig(graph_degree=d, add_reverse_edges=False),
        ).graph
        reverse_only = CagraIndex.from_knn_result(
            small_data, small_knn,
            GraphBuildConfig(graph_degree=d, reordering="none"),
        ).graph
        full = CagraIndex.from_knn_result(
            small_data, small_knn, GraphBuildConfig(graph_degree=d)
        ).graph
        return {"knn": knn_only, "reorder": reorder_only,
                "reverse": reverse_only, "full": full}

    def test_full_optimization_has_best_two_hop(self, variants):
        counts = {
            name: average_two_hop_count(g, sample=400, seed=0)
            for name, g in variants.items()
        }
        assert counts["full"] > counts["knn"]
        assert counts["reorder"] > counts["knn"]

    def test_reordering_contributes_more_two_hop_than_reverse(self, variants):
        """Paper: "the effect of the reordering is more significant"."""
        counts = {
            name: average_two_hop_count(g, sample=400, seed=0)
            for name, g in variants.items()
        }
        assert counts["reorder"] >= counts["reverse"] * 0.95

    def test_reverse_edges_fix_strong_cc(self, variants):
        """Paper: "reverse edge addition significantly affects the strong
        CC more than reordering"."""
        scc = {
            name: strong_connected_components(g) for name, g in variants.items()
        }
        assert scc["reverse"] <= scc["reorder"]
        assert scc["full"] <= scc["knn"]


class TestSearchQualityClaims:
    def test_cagra_matches_hnsw_recall(self, small_data, small_queries, small_truth,
                                       small_index):
        """Same graph-quality league as the CPU state of the art."""
        hnsw = HnswIndex(small_data, m=12, ef_construction=60).build()
        hnsw_ids, _, _ = hnsw.search(small_queries, 10, ef=64)
        cagra = small_index.search(small_queries, 10, SearchConfig(itopk=64))
        assert recall(cagra.indices, small_truth) >= recall(hnsw_ids, small_truth) - 0.05

    def test_multi_cta_parallelizes_extra_exploration(
        self, small_index, small_queries
    ):
        """Fig. 10 (top) mechanism: as the internal top-M (exploration
        budget) grows, single-CTA's batch-1 wall time grows with it, while
        multi-CTA spreads the extra work over idle SMs and stays nearly
        flat — which is why it wins single-query searches and why Fig. 7
        routes large-itopk searches to it."""
        gpu = GpuCostModel()

        def time_at(algo, itopk):
            seconds = 0.0
            for q in range(6):
                result = small_index.search(
                    small_queries[q : q + 1],
                    10,
                    SearchConfig(itopk=itopk, algo=algo, seed=q),
                )
                seconds += gpu.search_time(
                    result.report, small_index.dim, itopk=itopk
                ).seconds
            return seconds

        single_growth = time_at("single_cta", 128) / time_at("single_cta", 16)
        multi_growth = time_at("multi_cta", 64) / time_at("multi_cta", 16)
        assert multi_growth < single_growth

    def test_fp16_recall_compatible(self, small_data, small_queries):
        """Fig. 13/14: half precision does not degrade result quality."""
        truth, _ = exact_search(small_data, small_queries, 10)
        fp32 = CagraIndex.build(small_data, GraphBuildConfig(graph_degree=16, seed=3))
        fp16 = CagraIndex.build(
            small_data, GraphBuildConfig(graph_degree=16, seed=3),
            dataset_dtype="float16",
        )
        config = SearchConfig(itopk=64, algo="single_cta")
        r32 = recall(fp32.search(small_queries, 10, config).indices, truth)
        r16 = recall(fp16.search(small_queries, 10, config).indices, truth)
        assert r16 >= r32 - 0.03


class TestCostModelClaims:
    def test_gpu_large_batch_dominates_cpu(self, small_index, small_queries,
                                           small_data):
        """Fig. 13's headline: CAGRA-on-GPU ≫ HNSW-on-CPU at batch 10k."""
        hnsw = HnswIndex(small_data, m=12, ef_construction=60).build()
        _, _, hnsw_counters = hnsw.search(small_queries, 10, ef=64)
        cagra = small_index.search(
            small_queries, 10, SearchConfig(itopk=64, algo="single_cta")
        )
        factor = 10_000 / len(small_queries)
        from repro.bench import scale_report

        gpu_time = GpuCostModel().search_time(
            scale_report(cagra.report, factor), small_index.dim, itopk=64
        ).seconds
        cpu_time = CpuCostModel().search_time(
            int(hnsw_counters.distance_computations * factor),
            int(hnsw_counters.hops * factor),
            small_index.dim,
            batch_size=10_000,
        ).seconds
        assert cpu_time / gpu_time > 10

    def test_single_query_gpu_advantage_needs_multi_cta(
        self, small_index, small_queries, small_data
    ):
        """Fig. 14: at batch 1, single-CTA leaves the GPU idle; multi-CTA
        restores the advantage over the CPU."""
        hnsw = HnswIndex(small_data, m=12, ef_construction=60).build()
        _, _, hnsw_counters = hnsw.search(small_queries[:1], 10, ef=64)
        cpu_time = CpuCostModel().search_time(
            hnsw_counters.distance_computations,
            hnsw_counters.hops,
            small_index.dim,
            batch_size=1,
        ).seconds
        multi = small_index.search(
            small_queries[:1], 10, SearchConfig(itopk=64, algo="multi_cta")
        )
        gpu_time = GpuCostModel().search_time(
            multi.report, small_index.dim, itopk=64
        ).seconds
        assert gpu_time < cpu_time


class TestEndToEndPipelines:
    def test_build_search_save_load_search(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((400, 24)).astype(np.float32)
        index = CagraIndex.build(data, GraphBuildConfig(graph_degree=8))
        truth, _ = exact_search(data, data[:10], 5)
        before = index.search(data[:10], 5, SearchConfig(itopk=32, seed=1))
        path = str(tmp_path / "x.npz")
        index.save(path)
        after = CagraIndex.load(path).search(data[:10], 5, SearchConfig(itopk=32, seed=1))
        np.testing.assert_array_equal(before.indices, after.indices)
        assert recall(after.indices, truth) > 0.8

    def test_metrics_all_metrics_pipeline(self):
        """Build + search under every supported metric."""
        rng = np.random.default_rng(1)
        data = rng.standard_normal((300, 16)).astype(np.float32)
        for metric in ("sqeuclidean", "inner_product", "cosine"):
            index = CagraIndex.build(
                data, GraphBuildConfig(graph_degree=8, metric=metric)
            )
            truth, _ = exact_search(data, data[:8], 5, metric=metric)
            result = index.search(data[:8], 5, SearchConfig(itopk=32))
            assert recall(result.indices, truth) > 0.7, metric
