"""Unit tests for repro.bench — harness and reporting."""

import numpy as np
import pytest

from repro import SearchConfig
from repro.baselines import BeamCounters, HnswIndex
from repro.bench import (
    MethodCurve,
    SweepPoint,
    beam_to_report,
    format_curve_table,
    format_table,
    run_beam_sweep_cpu,
    run_beam_sweep_gpu,
    run_cagra_sweep,
    run_hnsw_sweep,
    scale_report,
    speedup_at_recall,
)
from repro.core.search import CostReport


def _curve(name, pairs):
    return MethodCurve(
        method=name,
        points=[SweepPoint(param=i, recall=r, qps=q, seconds=1 / q,
                           distance_computations_per_query=100)
                for i, (r, q) in enumerate(pairs)],
    )


class TestMethodCurve:
    def test_qps_at_recall_picks_best_eligible(self):
        curve = _curve("x", [(0.90, 100.0), (0.95, 60.0), (0.99, 20.0)])
        assert curve.qps_at_recall(0.95) == 60.0
        assert curve.qps_at_recall(0.91) == 60.0
        assert curve.qps_at_recall(0.999) is None

    def test_max_recall(self):
        assert _curve("x", [(0.5, 1.0), (0.8, 0.5)]).max_recall() == 0.8
        assert MethodCurve("empty", []).max_recall() == 0.0


class TestScaleReport:
    def test_counters_scale_linearly(self):
        report = CostReport(
            batch_size=10, cta_count=10, iterations=100,
            distance_computations=1000, hash_probes=2000,
            hash_in_shared=True, hash_log2_size=11,
        )
        scaled = scale_report(report, 100.0)
        assert scaled.batch_size == 1000
        assert scaled.cta_count == 1000
        assert scaled.distance_computations == 100_000
        assert scaled.hash_probes == 200_000
        assert scaled.hash_in_shared
        assert scaled.hash_log2_size == 11

    def test_downscale(self):
        report = CostReport(batch_size=100, cta_count=100, distance_computations=5000)
        scaled = scale_report(report, 0.01)
        assert scaled.batch_size == 1
        assert scaled.distance_computations == 50


class TestBeamToReport:
    def test_translation(self):
        counters = BeamCounters(distance_computations=400, hops=40, queries=4)
        report = beam_to_report(counters, degree=32, beam_width=64)
        assert report.cta_count == 4
        assert report.distance_computations == 400
        assert report.candidate_gathers == 40 * 32
        assert report.serial_queue_ops == 400 * 6  # log2(64)
        assert not report.hash_in_shared


class TestSweepRunners:
    def test_cagra_sweep(self, small_index, small_queries, small_truth):
        curve = run_cagra_sweep(
            small_index, small_queries, small_truth, 10, [16, 64], 10_000,
            SearchConfig(algo="single_cta"),
        )
        assert len(curve.points) == 2
        assert all(p.qps > 0 for p in curve.points)
        assert curve.points[1].recall >= curve.points[0].recall - 0.02

    def test_hnsw_sweep(self, small_data, small_queries, small_truth):
        hnsw = HnswIndex(small_data, m=8, ef_construction=40).build()
        curve = run_hnsw_sweep(hnsw, small_queries, small_truth, 10, [16, 64], 10_000)
        assert len(curve.points) == 2
        assert all(p.qps > 0 for p in curve.points)

    def test_gpu_beam_sweep(self, small_index, small_queries, small_truth):
        from repro.baselines import nssg_search

        def fn(queries, k, beam):
            return nssg_search(
                small_index.dataset, small_index.graph, queries, k, beam_width=beam
            )

        curve = run_beam_sweep_gpu(
            "X", fn, small_queries, small_truth, 10, [32], 10_000, dim=32, degree=16
        )
        assert curve.points[0].qps > 0

    def test_cpu_beam_sweep(self, small_index, small_queries, small_truth):
        from repro.baselines import nssg_search

        def fn(queries, k, beam):
            return nssg_search(
                small_index.dataset, small_index.graph, queries, k, beam_width=beam
            )

        curve = run_beam_sweep_cpu(
            "X", fn, small_queries, small_truth, 10, [32], 10_000, dim=32
        )
        assert curve.points[0].qps > 0

    def test_gpu_baseline_priced_above_cagra_kernel(
        self, small_index, small_queries, small_truth
    ):
        """At matched work, the un-teamed device-hash kernel must be slower
        than CAGRA's (the Fig. 13 GPU-vs-GPU gap)."""
        from repro.baselines import nssg_search

        cagra = run_cagra_sweep(
            small_index, small_queries, small_truth, 10, [64], 10_000,
            SearchConfig(algo="single_cta"),
        )

        def fn(queries, k, beam):
            return nssg_search(
                small_index.dataset, small_index.graph, queries, k, beam_width=beam
            )

        baseline = run_beam_sweep_gpu(
            "X", fn, small_queries, small_truth, 10, [64], 10_000, dim=32, degree=16
        )
        # Normalize per distance computation to factor out work differences.
        c = cagra.points[0]
        b = baseline.points[0]
        cagra_time_per_dist = c.seconds / max(1, c.distance_computations_per_query)
        base_time_per_dist = b.seconds / max(1, b.distance_computations_per_query)
        assert base_time_per_dist > cagra_time_per_dist


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_curve_table_contains_methods(self):
        text = format_curve_table([_curve("alpha", [(0.9, 10.0)])], title="T")
        assert "T" in text
        assert "alpha" in text

    def test_speedup_table(self):
        curves = [
            _curve("ref", [(0.95, 10.0)]),
            _curve("fast", [(0.95, 40.0)]),
        ]
        text = speedup_at_recall(curves, "ref", [0.95])
        assert "4.0x" in text

    def test_speedup_unreachable_target(self):
        curves = [_curve("ref", [(0.9, 10.0)]), _curve("slow", [(0.8, 1.0)])]
        text = speedup_at_recall(curves, "ref", [0.99])
        assert "n/a" in text

    def test_speedup_missing_reference_raises(self):
        with pytest.raises(KeyError):
            speedup_at_recall([_curve("a", [(0.9, 1.0)])], "zzz", [0.9])


class TestFormatting:
    def test_fmt_large_numbers(self):
        from repro.bench.reporting import _fmt

        assert _fmt(1234567.0) == "1,234,567"
        assert _fmt(12.345) == "12.35"
        assert _fmt(0.01234) == "0.0123"
        assert _fmt(0.0) == "0"
        assert _fmt("text") == "text"
        assert _fmt(7) == "7"

    def test_table_handles_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
        assert len(text.splitlines()) == 2


class TestIterationTrace:
    def test_recall_monotone_in_budget(self, small_index, small_queries, small_truth):
        from repro.bench import iteration_trace

        points = iteration_trace(
            small_index, small_queries, small_truth, 10, [1, 4, 16, 64],
            SearchConfig(itopk=64),
        )
        assert len(points) == 4
        recalls = [p.recall for p in points]
        assert recalls[-1] >= recalls[0]
        assert recalls[-1] > 0.9
        # Work grows with budget.
        dists = [p.distance_computations_per_query for p in points]
        assert dists[-1] >= dists[0]

    def test_convergence_fraction_rises(self, small_index, small_queries, small_truth):
        from repro.bench import iteration_trace

        points = iteration_trace(
            small_index, small_queries, small_truth, 10, [2, 128],
            SearchConfig(itopk=32),
        )
        assert points[-1].converged_fraction > points[0].converged_fraction

    def test_budget_validation(self, small_index, small_queries, small_truth):
        from repro.bench import iteration_trace

        with pytest.raises(ValueError, match="budgets"):
            iteration_trace(small_index, small_queries, small_truth, 10, [0])
