"""Unit tests for repro.core.topm."""

import numpy as np
import pytest

from repro.core.graph import INDEX_MASK, PARENT_FLAG
from repro.core.topm import (
    bitonic_comparator_count,
    bitonic_merge,
    bitonic_sort,
    merge_topm,
    radix_topk,
    sort_strategy,
)


class TestBitonicMerge:
    @pytest.mark.parametrize("n_a,n_b", [(1, 1), (4, 4), (13, 9), (0, 5), (7, 0), (32, 32)])
    def test_merges_sorted_runs(self, n_a, n_b):
        rng = np.random.default_rng(n_a * 100 + n_b)
        a = np.sort(rng.random(n_a))
        b = np.sort(rng.random(n_b))
        keys, values = bitonic_merge(
            a, np.arange(n_a, dtype=np.uint32),
            b, np.arange(100, 100 + n_b, dtype=np.uint32),
        )
        np.testing.assert_allclose(keys, np.sort(np.concatenate([a, b])))
        assert len(values) == n_a + n_b

    def test_values_travel_with_keys(self):
        a = np.array([1.0, 3.0])
        b = np.array([2.0, 4.0])
        keys, values = bitonic_merge(
            a, np.array([10, 30], dtype=np.uint32),
            b, np.array([20, 40], dtype=np.uint32),
        )
        np.testing.assert_array_equal(values, [10, 20, 30, 40])

    def test_with_inf_entries(self):
        a = np.array([1.0, np.inf])
        b = np.array([0.5, np.inf])
        keys, _ = bitonic_merge(
            a, np.zeros(2, dtype=np.uint32), b, np.zeros(2, dtype=np.uint32)
        )
        np.testing.assert_array_equal(keys[:2], [0.5, 1.0])


class TestRadixTopk:
    def test_matches_numpy_partition(self):
        rng = np.random.default_rng(0)
        keys = rng.random(2000).astype(np.float64)
        k, v = radix_topk(keys, np.arange(2000, dtype=np.uint32), 50)
        np.testing.assert_allclose(np.sort(k), np.sort(keys)[:50], rtol=1e-6)

    def test_negative_keys(self):
        """Inner-product 'distances' are negative; radix must handle them."""
        rng = np.random.default_rng(1)
        keys = rng.standard_normal(500)
        k, v = radix_topk(keys, np.arange(500, dtype=np.uint32), 10)
        np.testing.assert_allclose(np.sort(k), np.sort(keys)[:10], rtol=1e-5)
        np.testing.assert_allclose(keys[v], k)

    def test_inf_sorts_last(self):
        keys = np.array([np.inf, 1.0, np.inf, 0.0])
        k, _ = radix_topk(keys, np.arange(4, dtype=np.uint32), 4)
        np.testing.assert_array_equal(k[:2], [0.0, 1.0])
        assert np.isinf(k[2:]).all()

    def test_empty(self):
        k, v = radix_topk(np.empty(0), np.empty(0, dtype=np.uint32), 3)
        assert len(k) == 0


class TestBitonicSort:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 16, 33, 64])
    def test_sorts_arbitrary_lengths(self, n):
        rng = np.random.default_rng(n)
        keys = rng.random(n)
        values = np.arange(n, dtype=np.uint32)
        sorted_keys, sorted_values = bitonic_sort(keys, values)
        np.testing.assert_allclose(sorted_keys, np.sort(keys))
        # Values travel with their keys.
        np.testing.assert_allclose(keys[sorted_values], sorted_keys)

    def test_handles_inf(self):
        keys = np.array([np.inf, 1.0, np.inf, 0.5])
        values = np.arange(4, dtype=np.uint32)
        sorted_keys, _ = bitonic_sort(keys, values)
        np.testing.assert_array_equal(sorted_keys[:2], [0.5, 1.0])

    def test_empty_ok(self):
        keys, values = bitonic_sort(np.empty(0), np.empty(0, dtype=np.uint32))
        assert len(keys) == 0


class TestComparatorCount:
    def test_known_values(self):
        # n=4: (4/2) * 2 * 3 / 2 = 6 comparators.
        assert bitonic_comparator_count(4) == 6
        # n=8: 4 * 3 * 4 / 2 = 24.
        assert bitonic_comparator_count(8) == 24

    def test_rounds_up_to_pow2(self):
        assert bitonic_comparator_count(5) == bitonic_comparator_count(8)

    def test_trivial(self):
        assert bitonic_comparator_count(0) == 0
        assert bitonic_comparator_count(1) == 0


class TestSortStrategy:
    def test_rule_of_512(self):
        """Sec. IV-B2: warp bitonic <= 512 candidates, CTA radix above."""
        assert sort_strategy(512) == "warp_bitonic"
        assert sort_strategy(513) == "cta_radix"
        assert sort_strategy(32) == "warp_bitonic"


class TestMergeTopm:
    def test_basic_merge(self):
        topm_ids = np.array([1, 2], dtype=np.uint32)
        topm_d = np.array([1.0, 3.0])
        cand_ids = np.array([3], dtype=np.uint32)
        cand_d = np.array([2.0])
        ids, dists = merge_topm(topm_ids, topm_d, cand_ids, cand_d, 3)
        np.testing.assert_array_equal(ids, [1, 3, 2])
        np.testing.assert_allclose(dists, [1.0, 2.0, 3.0])

    def test_truncates_to_m(self):
        ids, dists = merge_topm(
            np.array([1, 2], dtype=np.uint32),
            np.array([1.0, 2.0]),
            np.array([3, 4], dtype=np.uint32),
            np.array([0.5, 3.0]),
            2,
        )
        np.testing.assert_array_equal(ids, [3, 1])

    def test_pads_short_input(self):
        ids, dists = merge_topm(
            np.array([5], dtype=np.uint32),
            np.array([1.0]),
            np.empty(0, dtype=np.uint32),
            np.empty(0),
            4,
        )
        assert len(ids) == 4
        assert ids[0] == 5
        assert (ids[1:] == INDEX_MASK).all()
        assert np.isinf(dists[1:]).all()

    def test_parent_flag_travels(self):
        flagged = np.uint32(7) | PARENT_FLAG
        ids, _ = merge_topm(
            np.array([flagged], dtype=np.uint32),
            np.array([1.0]),
            np.array([8], dtype=np.uint32),
            np.array([2.0]),
            2,
        )
        assert ids[0] == flagged

    def test_duplicate_bare_id_keeps_topm_copy(self):
        """A parented top-M entry must not be displaced by its unparented
        candidate twin (the flag would be lost and the node re-expanded)."""
        flagged = np.uint32(7) | PARENT_FLAG
        ids, dists = merge_topm(
            np.array([flagged], dtype=np.uint32),
            np.array([1.5]),
            np.array([7], dtype=np.uint32),
            np.array([1.5]),
            2,
        )
        assert ids[0] == flagged
        assert (ids[1:] == INDEX_MASK).all()

    def test_result_sorted(self):
        rng = np.random.default_rng(0)
        topm_d = np.sort(rng.random(8))
        cand_d = rng.random(16)
        ids, dists = merge_topm(
            np.arange(8, dtype=np.uint32),
            topm_d,
            np.arange(100, 116, dtype=np.uint32),
            cand_d,
            8,
        )
        assert (np.diff(dists) >= 0).all()

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(1)
        topm_ids = np.arange(16, dtype=np.uint32)
        topm_d = np.sort(rng.random(16))
        cand_ids = np.arange(100, 132, dtype=np.uint32)
        cand_d = rng.random(32)
        ids, dists = merge_topm(topm_ids, topm_d, cand_ids, cand_d, 16)
        all_d = np.concatenate([topm_d, cand_d])
        expected = np.sort(all_d)[:16]
        np.testing.assert_allclose(dists, expected)
