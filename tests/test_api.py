"""repro.api: the unified AnnIndex protocol, factory, and persistence.

Covers the acceptance criteria of the protocol refactor:

* all seven index kinds pass one shared conformance suite (protocol
  check, int32/float32 dtype + shape contract, trailing-``INDEX_MASK``
  padding invariant, determinism, ``filter_mask``);
* ``save``/``load`` round-trips through the format registry with sniff
  detection for every kind;
* CAGRA search results stay bitwise identical to the pre-refactor
  seeded regression fixture (reference, fast, multi-CTA, and sharded
  paths);
* the ``ShardedSearchResult`` deprecation shim warns and aliases.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.api import (
    AnnIndex,
    BruteForceIndex,
    BuildSpec,
    SearchRequest,
    SearchResult,
    StageRecorder,
    UnknownIndexFormatError,
    as_ann_index,
    build_index,
    load_ann_index,
    load_index,
    normalize_results,
    save_index,
    sniff_format,
    stage_timer,
)
from repro.core.config import GraphBuildConfig, SearchConfig
from repro.core.graph import INDEX_MASK

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "cagra_regression.npz")

ALL_KINDS = ("cagra", "hnsw", "ggnn", "ganns", "nssg", "bruteforce")


@pytest.fixture(scope="module")
def api_data() -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.standard_normal((300, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def api_queries(api_data) -> np.ndarray:
    rng = np.random.default_rng(12)
    return (api_data[:6] + 0.05 * rng.standard_normal((6, 16))).astype(np.float32)


@pytest.fixture(scope="module")
def adapters(api_data) -> dict:
    """One adapter per kind (plus a 2-shard CAGRA), built once."""
    built = {
        kind: build_index(kind, api_data, degree=8, seed=0) for kind in ALL_KINDS
    }
    built["sharded-cagra"] = build_index(
        "cagra", api_data, degree=8, seed=0, shards=2
    )
    return built


ALL_SURFACES = ALL_KINDS + ("sharded-cagra",)


class TestConformance:
    """The shared contract every adapter must satisfy."""

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_satisfies_protocol(self, adapters, kind):
        ann = adapters[kind]
        assert isinstance(ann, AnnIndex)
        assert ann.kind == kind

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_introspection(self, adapters, api_data, kind):
        ann = adapters[kind]
        assert ann.dim == api_data.shape[1]
        assert ann.size == api_data.shape[0]
        assert ann.metric == "sqeuclidean"
        assert ann.num_shards == (2 if kind == "sharded-cagra" else 1)

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_dtype_and_shape_contract(self, adapters, api_queries, kind):
        result = adapters[kind].search(api_queries, 5)
        assert isinstance(result, SearchResult)
        assert result.indices.dtype == np.int32
        assert result.distances.dtype == np.float32
        assert result.indices.shape == (api_queries.shape[0], 5)
        assert result.distances.shape == (api_queries.shape[0], 5)
        assert result.batch == api_queries.shape[0] and result.k == 5
        assert not result.degraded
        assert result.counters.get("distance_computations", 0) > 0

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_index_mask_trailing_invariant(self, adapters, api_queries, kind):
        """Unfilled slots are (INDEX_MASK, +inf) and only ever trailing."""
        result = adapters[kind].search(api_queries, 5)
        unfilled = result.indices == int(INDEX_MASK)
        assert np.array_equal(unfilled, ~np.isfinite(result.distances))
        # Trailing only: once a row goes unfilled it stays unfilled.
        assert np.array_equal(unfilled, np.logical_or.accumulate(unfilled, axis=1))
        filled = result.indices[~unfilled]
        assert filled.size > 0
        assert (filled >= 0).all() and (filled < adapters[kind].size).all()

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_deterministic(self, adapters, api_queries, kind):
        first = adapters[kind].search(api_queries, 5)
        second = adapters[kind].search(api_queries, 5)
        assert np.array_equal(first.indices, second.indices)
        assert np.array_equal(first.distances, second.distances)

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_filter_mask(self, adapters, api_queries, kind):
        ann = adapters[kind]
        mask = np.zeros(ann.size, dtype=bool)
        mask[: ann.size // 2] = True
        result = ann.search(api_queries, 5, filter_mask=mask)
        hits = result.indices[result.indices != int(INDEX_MASK)]
        assert hits.size > 0
        assert (hits < ann.size // 2).all()

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_single_query_1d_input(self, adapters, api_queries, kind):
        result = adapters[kind].search(api_queries[0], 3)
        assert result.indices.shape == (1, 3)

    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_search_request_object(self, adapters, api_queries, kind):
        request = SearchRequest(queries=api_queries, k=4)
        result = adapters[kind].search_request(request)
        direct = adapters[kind].search(api_queries, 4)
        assert np.array_equal(result.indices, direct.indices)


class TestPersistenceRegistry:
    @pytest.mark.parametrize("kind", ALL_SURFACES)
    def test_save_sniff_load_roundtrip(self, adapters, api_queries, tmp_path, kind):
        path = str(tmp_path / f"{kind}.npz")
        save_index(adapters[kind], path)
        assert sniff_format(path) == kind
        reloaded = load_ann_index(path)
        assert reloaded.kind == kind
        before = adapters[kind].search(api_queries, 5)
        after = reloaded.search(api_queries, 5)
        assert np.array_equal(before.indices, after.indices)
        assert np.array_equal(before.distances, after.distances)

    def test_load_index_returns_native_cagra(self, adapters, tmp_path):
        from repro.core.index import CagraIndex

        path = str(tmp_path / "native.npz")
        save_index(adapters["cagra"], path)
        assert isinstance(load_index(path), CagraIndex)

    def test_unknown_format_rejected(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(UnknownIndexFormatError):
            sniff_format(path)
        with pytest.raises(UnknownIndexFormatError):
            load_index(path)

    def test_load_fault_point_fires(self, adapters, tmp_path):
        import json

        from repro.resilience.faults import FaultInjected

        path = str(tmp_path / "faulty.npz")
        save_index(adapters["cagra"], path)
        plan = json.dumps([{"point": "index.load"}])
        with pytest.raises(FaultInjected):
            load_index(path, fault_plan=plan)
        # Without a plan the same file loads cleanly.
        assert load_index(path, fault_plan="") is not None


class TestFactory:
    def test_unknown_kind(self, api_data):
        with pytest.raises(ValueError, match="kind"):
            build_index("faiss", api_data)

    def test_sharded_non_cagra_rejected(self, api_data):
        with pytest.raises(ValueError, match="cagra"):
            BuildSpec(kind="hnsw", shards=2)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match="degree"):
            BuildSpec(kind="cagra", degree=-1)

    def test_build_emits_stage(self, api_data):
        recorder = StageRecorder()
        build_index("bruteforce", api_data, on_stage=recorder.on_stage)
        assert [e.name for e in recorder.events] == ["build.bruteforce"]
        assert recorder.events[0].counters["size"] == api_data.shape[0]

    def test_as_ann_index_idempotent(self, adapters):
        for kind in ALL_SURFACES:
            rewrapped = as_ann_index(adapters[kind])
            assert rewrapped.kind == kind

    def test_as_ann_index_rejects_unknown(self):
        with pytest.raises(TypeError, match="cannot adapt"):
            as_ann_index(object())


class TestValueObjects:
    def test_search_request_validation(self, api_queries):
        with pytest.raises(ValueError, match="k"):
            SearchRequest(queries=api_queries, k=0)
        request = SearchRequest(queries=api_queries[0])
        assert request.queries.ndim == 2 and request.batch == 1

    def test_normalize_results_moves_unfilled_to_tail(self):
        ids = np.array([[int(INDEX_MASK), 3, 7]], dtype=np.int64)
        dists = np.array([[np.inf, 0.5, 0.25]])
        out_ids, out_dists = normalize_results(ids, dists)
        assert out_ids.dtype == np.int32 and out_dists.dtype == np.float32
        assert out_ids.tolist() == [[3, 7, int(INDEX_MASK)]]
        assert out_dists[0, 2] == np.inf

    def test_stage_timer_and_recorder(self):
        recorder = StageRecorder()
        with stage_timer(recorder.on_stage, "unit.test") as stage:
            stage.counters = {"work": 1}
        with stage_timer(None, "ignored"):
            pass
        assert [e.name for e in recorder.events] == ["unit.test"]
        assert recorder.stage_seconds()["unit.test"] >= 0.0
        records = recorder.as_records()
        assert records[0]["name"] == "unit.test"
        assert records[0]["counters"] == {"work": 1}

    def test_on_stage_threaded_through_unified_search(self, adapters, api_queries):
        recorder = StageRecorder()
        adapters["cagra"].search(
            api_queries, 5, mode="fast", on_stage=recorder.on_stage
        )
        adapters["sharded-cagra"].search(
            api_queries, 5, mode="fast", on_stage=recorder.on_stage
        )
        adapters["hnsw"].search(api_queries, 5, on_stage=recorder.on_stage)
        names = [e.name for e in recorder.events]
        assert names[0] == "core.search_fast"
        assert "shard.0.search" in names and "shard.merge" in names
        assert names[-1] == "baseline.hnsw.search"


class TestDeprecationShim:
    def test_sharded_search_result_alias_warns(self):
        import repro.core.sharding as sharding

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alias = sharding.ShardedSearchResult
        assert alias is SearchResult
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_unknown_attribute_still_raises(self):
        import repro.core.sharding as sharding

        with pytest.raises(AttributeError):
            sharding.no_such_name


class TestCagraRegressionFixture:
    """Search results must be bitwise identical to the pre-refactor runs."""

    @pytest.fixture(scope="class")
    def regression(self):
        rng = np.random.default_rng(7)
        data = rng.standard_normal((600, 24)).astype(np.float32)
        queries = rng.standard_normal((32, 24)).astype(np.float32)
        from repro.core.index import CagraIndex

        index = CagraIndex.build(data, GraphBuildConfig(graph_degree=16, seed=0))
        with np.load(FIXTURE) as archive:
            expected = {key: archive[key] for key in archive.files}
        return data, queries, index, expected

    def test_reference_path_bitwise(self, regression):
        _, queries, index, expected = regression
        result = index.search(queries, 10, config=SearchConfig(itopk=64, seed=0))
        np.testing.assert_array_equal(result.indices, expected["ref_indices"])
        np.testing.assert_array_equal(result.distances, expected["ref_distances"])

    def test_fast_path_bitwise(self, regression):
        _, queries, index, expected = regression
        result = index.search_fast(queries, 10, config=SearchConfig(itopk=64, seed=0))
        np.testing.assert_array_equal(result.indices, expected["fast_indices"])
        np.testing.assert_array_equal(result.distances, expected["fast_distances"])

    def test_multi_cta_bitwise(self, regression):
        _, queries, index, expected = regression
        result = index.search(
            queries[:1], 10,
            config=SearchConfig(itopk=64, seed=0, algo="multi_cta"),
        )
        np.testing.assert_array_equal(result.indices, expected["multi_indices"])
        np.testing.assert_array_equal(result.distances, expected["multi_distances"])

    def test_sharded_fast_bitwise(self, regression):
        data, queries, _, expected = regression
        from repro.core.sharding import ShardedCagraIndex

        sharded = ShardedCagraIndex.build(
            data, 3, GraphBuildConfig(graph_degree=16, seed=0)
        )
        try:
            result = sharded.search_fast(
                queries, 10, config=SearchConfig(itopk=64, seed=0)
            )
        finally:
            sharded.close()
        np.testing.assert_array_equal(result.indices, expected["sharded_indices"])
        np.testing.assert_array_equal(result.distances, expected["sharded_distances"])

    def test_adapter_preserves_values(self, regression):
        """The int32/float32 adapter surface narrows dtype, never values."""
        _, queries, index, expected = regression
        result = as_ann_index(index).search(
            queries, 10, config=SearchConfig(itopk=64, seed=0), mode="reference"
        )
        np.testing.assert_array_equal(
            result.indices, expected["ref_indices"].astype(np.int32)
        )
        np.testing.assert_array_equal(
            result.distances, expected["ref_distances"].astype(np.float32)
        )
