"""Unit tests for repro.gpusim — device specs, kernel formulas, cost models."""

import numpy as np
import pytest

from repro.core.search import CostReport
from repro.gpusim import A100_80GB, EPYC_7742, CpuCostModel, GpuCostModel
from repro.gpusim.executor import KernelShape, ctas_per_sm, schedule_waves
from repro.gpusim.kernels import (
    auto_team_size,
    distance_cost,
    gather_cycles,
    hash_probe_cycles,
    occupancy_factor,
    registers_per_thread,
    sort_cycles,
)


class TestDeviceSpecs:
    def test_a100_shape(self):
        assert A100_80GB.num_sms == 108
        assert A100_80GB.warp_size == 32
        assert A100_80GB.device_mem_bytes == 80 * 1024**3

    def test_cycles_to_seconds(self):
        seconds = A100_80GB.cycles_to_seconds(1.41e9)
        assert seconds == pytest.approx(1.0)

    def test_epyc_flops_scaling(self):
        one = EPYC_7742.flops_per_second(1)
        all_cores = EPYC_7742.flops_per_second(64)
        assert all_cores == pytest.approx(64 * one)
        assert EPYC_7742.flops_per_second(1000) == all_cores  # capped


class TestDistanceCost:
    def test_load_instruction_count(self):
        # dim 96 FP32 = 384 B; team 8 loads 128 B per instruction -> 3.
        assert distance_cost(96, 4, 8).load_instructions == 3
        # team 32 loads 512 B -> 1 instruction (with idle lanes).
        assert distance_cost(96, 4, 32).load_instructions == 1

    def test_fp16_halves_loads(self):
        fp32 = distance_cost(960, 4, 32).load_instructions
        fp16 = distance_cost(960, 2, 32).load_instructions
        assert fp16 == fp32 / 2

    def test_team_sweep_shape_small_dim(self):
        """Fig. 8 (DEEP, dim 96): best at team 4-8; team 2 penalized."""
        scores = {}
        for team in (2, 4, 8, 16, 32):
            cost = distance_cost(96, 4, team)
            scores[team] = cost.warp_cycles / occupancy_factor(cost.registers, A100_80GB)
        best = min(scores, key=scores.get)
        assert best in (4, 8)
        assert scores[2] > scores[best]

    def test_team_sweep_shape_large_dim(self):
        """Fig. 8 (GIST, dim 960): best at team 32; small teams degrade."""
        scores = {}
        for team in (2, 4, 8, 16, 32):
            cost = distance_cost(960, 4, team)
            scores[team] = cost.warp_cycles / occupancy_factor(cost.registers, A100_80GB)
        assert min(scores, key=scores.get) == 32
        assert scores[2] > 5 * scores[32]

    def test_register_spill_for_tiny_teams_large_dim(self):
        cost = distance_cost(960, 4, 2)
        assert cost.spilled

    def test_invalid_team_raises(self):
        with pytest.raises(ValueError):
            distance_cost(96, 4, 3)

    def test_registers_monotone_in_dim(self):
        assert registers_per_thread(960, 4, 8) > registers_per_thread(96, 4, 8)

    def test_auto_team_size_tracks_dim(self):
        assert auto_team_size(96, 4) in (4, 8)
        assert auto_team_size(960, 4) == 32


class TestKernelCosts:
    def test_shared_hash_cheaper_than_device(self):
        assert hash_probe_cycles(True, A100_80GB) < hash_probe_cycles(False, A100_80GB)

    def test_sort_cycles_positive(self):
        assert sort_cycles(1000, 0) > 0
        assert sort_cycles(0, 1000) > 0
        assert sort_cycles(0, 0) == 0

    def test_gather_scales_linearly(self):
        assert gather_cycles(200, A100_80GB) == pytest.approx(
            2 * gather_cycles(100, A100_80GB)
        )


class TestExecutor:
    def test_ctas_per_sm_thread_limit(self):
        shape = KernelShape(
            threads_per_cta=1024, shared_bytes_per_cta=0, registers_per_thread=32
        )
        assert ctas_per_sm(shape, A100_80GB) == 2  # 2048 threads / 1024

    def test_ctas_per_sm_shared_limit(self):
        shape = KernelShape(threads_per_cta=64, shared_bytes_per_cta=82 * 1024)
        assert ctas_per_sm(shape, A100_80GB) == 2  # 164 KB / 82 KB

    def test_ctas_per_sm_register_limit(self):
        shape = KernelShape(threads_per_cta=256, registers_per_thread=128)
        # 65536 / (128 * 256) = 2
        assert ctas_per_sm(shape, A100_80GB) == 2

    def test_at_least_one_cta(self):
        shape = KernelShape(threads_per_cta=2048, shared_bytes_per_cta=10**6,
                            registers_per_thread=255)
        assert ctas_per_sm(shape, A100_80GB) == 1

    def test_wave_count(self):
        shape = KernelShape(threads_per_cta=128, shared_bytes_per_cta=16 * 1024)
        waves, concurrency = schedule_waves(10000, shape, A100_80GB)
        assert waves == int(np.ceil(10000 / concurrency))

    def test_single_cta_single_wave(self):
        shape = KernelShape()
        waves, _ = schedule_waves(1, shape, A100_80GB)
        assert waves == 1

    def test_zero_ctas_rejected(self):
        with pytest.raises(ValueError):
            schedule_waves(0, KernelShape(), A100_80GB)


def _report(batch, dists_per_q=500, shared=True, algo="single_cta"):
    return CostReport(
        algo=algo,
        batch_size=batch,
        cta_count=batch,
        iterations=batch * 30,
        distance_computations=batch * dists_per_q,
        candidate_gathers=batch * dists_per_q,
        sort_comparator_ops=batch * 5000,
        hash_lookups=batch * dists_per_q,
        hash_probes=batch * dists_per_q * 2,
        hash_insertions=batch * dists_per_q,
        hash_resets=batch * 15 if shared else 0,
        hash_in_shared=shared,
        hash_log2_size=11,
    )


class TestGpuCostModel:
    def test_large_batch_amortizes(self):
        """10k queries must be far cheaper per query than 1 query."""
        model = GpuCostModel()
        t1 = model.search_time(_report(1), dim=96).seconds
        t10k = model.search_time(_report(10000), dim=96).seconds
        assert t10k / 10000 < t1 / 2

    def test_fp16_faster_when_bandwidth_bound(self):
        model = GpuCostModel()
        report = _report(10000, dists_per_q=1000)
        t32 = model.search_time(report, dim=960, dtype_bytes=4).seconds
        t16 = model.search_time(report, dim=960, dtype_bytes=2).seconds
        assert t16 < t32

    def test_shared_hash_faster_than_device(self):
        model = GpuCostModel()
        # Compare compute components on an otherwise identical workload
        # small enough to stay latency- (not bandwidth-) bound.
        t_shared = model.search_time(_report(50, shared=True), dim=96)
        t_device = model.search_time(_report(50, shared=False), dim=96)
        assert t_shared.compute_seconds < t_device.compute_seconds

    def test_mem_efficiency_scales_bandwidth(self):
        model = GpuCostModel()
        report = _report(10000, dists_per_q=2000)
        good = model.search_time(report, dim=960, mem_efficiency=0.9)
        poor = model.search_time(report, dim=960, mem_efficiency=0.3)
        assert poor.bandwidth_seconds == pytest.approx(3 * good.bandwidth_seconds)

    def test_timing_breakdown_complete(self):
        timing = GpuCostModel().search_time(_report(100), dim=96)
        for key in ("distance", "hash", "sort", "gather", "team_size"):
            assert key in timing.breakdown

    def test_qps(self):
        timing = GpuCostModel().search_time(_report(1000), dim=96)
        assert timing.qps(1000) == pytest.approx(1000 / timing.seconds)

    def test_build_time_scales_with_work(self):
        model = GpuCostModel()
        assert model.knn_build_time(10**9, 96) > model.knn_build_time(10**8, 96)

    def test_optimize_time_rank_cheaper_than_distance(self):
        """Fig. 4: distance-based optimization pays for its extra work."""
        model = GpuCostModel()
        rank = model.optimize_time(10**8, 10**6, 32)
        dist = model.optimize_time(10**8, 10**6, 32,
                                   distance_computations=10**8, dim=96)
        assert dist > rank

    def test_fits_in_memory(self):
        model = GpuCostModel()
        assert model.fits_in_memory(10**9)
        assert not model.fits_in_memory(200 * 1024**3)


class TestCpuCostModel:
    def test_threads_speed_up_batches(self):
        model = CpuCostModel()
        slow = model.search_time(10**6, 10**5, 96, batch_size=1000, threads=1)
        fast = model.search_time(10**6, 10**5, 96, batch_size=1000, threads=64)
        assert fast.seconds < slow.seconds / 10

    def test_single_query_single_thread(self):
        model = CpuCostModel()
        timing = model.search_time(2000, 100, 96, batch_size=1)
        assert timing.breakdown["threads"] == 1

    def test_bandwidth_roofline_binds_eventually(self):
        model = CpuCostModel()
        timing = model.search_time(10**8, 10, 960, batch_size=10**5, threads=64)
        assert timing.seconds >= timing.bandwidth_seconds

    def test_build_time_positive_and_monotone(self):
        model = CpuCostModel()
        assert model.build_time(10**7, 10**6, 96) > model.build_time(10**6, 10**5, 96)

    def test_gpu_beats_cpu_on_large_batches(self):
        """The core premise of the paper (Fig. 13)."""
        gpu = GpuCostModel().search_time(_report(10000, dists_per_q=500), dim=96)
        cpu = CpuCostModel().search_time(10000 * 500, 10000 * 30, 96, batch_size=10000)
        assert gpu.seconds < cpu.seconds / 10
