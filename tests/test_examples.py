"""Smoke tests: every example must run end-to-end at reduced scale.

Examples are part of the public deliverable; these tests keep them green
as the library evolves.  Each ``main`` accepts ``scale``/``num_queries``
overrides so the smoke runs stay fast.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name,kwargs",
    [
        ("quickstart", dict(scale=600, num_queries=15)),
        ("graph_quality_analysis", dict(scale=600, num_queries=15)),
        ("online_single_query", dict(scale=500, num_queries=8)),
        ("online_serving", dict(scale=500, num_queries=8)),
        ("fp16_and_persistence", dict(scale=400, num_queries=10)),
        ("sharded_and_filtered", dict(scale=600, num_queries=15)),
        ("serve_baseline", dict(scale=500, num_queries=8)),
    ],
)
def test_example_runs(name, kwargs, capsys):
    module = _load_example(name)
    module.main(**kwargs)
    out = capsys.readouterr().out
    assert len(out) > 50  # produced a report


@pytest.mark.slow
def test_batch_throughput_example_runs(capsys):
    """The heaviest example (builds three indexes); still bounded."""
    module = _load_example("batch_throughput")
    module.main(scale=700, num_queries=12)
    out = capsys.readouterr().out
    assert "speedup vs HNSW" in out
