"""Tests for repro.serve: micro-batching, backpressure, cache, hot swap.

The integration test at the bottom is the acceptance scenario: a seeded
Poisson load of 500+ queries must coalesce batches, dispatch a batch-of-1
to the multi-CTA path, survive a mid-traffic index swap with zero
failures, match the offline fast path's recall, and — under a saturating
arrival rate — reject and time out requests without deadlocking.
"""

import threading
import time

import numpy as np
import pytest

from repro import CagraIndex, SearchConfig
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.datasets.synthetic import make_queries
from repro.serve import (
    CagraServer,
    RequestTimeout,
    ResultCache,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
    run_closed_loop,
    run_open_loop,
)

SEARCH = SearchConfig(itopk=64, seed=5)


@pytest.fixture()
def serve_queries(small_data):
    return make_queries(small_data, 40, seed=21)


def make_server(index, **overrides) -> CagraServer:
    defaults = dict(
        max_batch=16, max_wait_ms=4.0, queue_capacity=1024, cache_capacity=0
    )
    defaults.update(overrides)
    return CagraServer(index, ServeConfig(**defaults), search_config=SEARCH)


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(2)
        ids = np.arange(3, dtype=np.uint32)
        dists = np.zeros(3)
        cache.put(("a",), ids, dists)
        cache.put(("b",), ids, dists)
        assert cache.get(("a",)) is not None  # refreshes "a"
        cache.put(("c",), ids, dists)  # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None and cache.get(("c",)) is not None

    def test_returns_copies(self):
        cache = ResultCache(4)
        ids = np.arange(3, dtype=np.uint32)
        cache.put(("k",), ids, np.zeros(3))
        got_ids, _ = cache.get(("k",))
        got_ids[0] = 99
        fresh_ids, _ = cache.get(("k",))
        assert fresh_ids[0] == 0

    def test_clear(self):
        cache = ResultCache(4)
        cache.put(("k",), np.arange(2, dtype=np.uint32), np.zeros(2))
        cache.clear()
        assert len(cache) == 0 and cache.get(("k",)) is None


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_batch=0),
            dict(max_wait_ms=-1.0),
            dict(queue_capacity=0),
            dict(default_timeout_ms=-5.0),
            dict(cache_capacity=-1),
            dict(default_k=0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestDispatch:
    def test_lone_query_takes_multi_cta_path(self, small_index, serve_queries):
        """A batch-of-1 flush must match the multi-CTA reference search."""
        server = make_server(small_index)
        with server:
            result = server.search(serve_queries[0], k=10)
        direct = small_index.search(
            serve_queries[:1], 10,
            config=SEARCH.with_overrides(algo="multi_cta"),
            num_sms=server.config.num_sms,
        )
        stats = server.stats()
        assert stats.single_query_batches == 1 and stats.coalesced_batches == 0
        assert np.array_equal(result.indices, direct.indices[0])

    def test_coalesced_batch_matches_fast_path(self, small_index, serve_queries):
        """Requests queued before start flush as ONE batch == search_fast."""
        server = make_server(small_index, max_batch=8)
        handles = [server.submit(serve_queries[i], k=10) for i in range(8)]
        with server:
            answers = [handle.result() for handle in handles]
        direct = small_index.search_fast(serve_queries[:8], 10, config=SEARCH)
        stats = server.stats()
        assert stats.batch_size_histogram == {8: 1}
        assert stats.coalesced_batches == 1
        for row, answer in enumerate(answers):
            assert np.array_equal(answer.indices, direct.indices[row])
            assert np.allclose(answer.distances, direct.distances[row])

    def test_mixed_k_in_one_batch(self, small_index, serve_queries):
        server = make_server(small_index, max_batch=4)
        handles = [
            server.submit(serve_queries[i], k=k) for i, k in enumerate((1, 5, 10, 3))
        ]
        with server:
            answers = [handle.result() for handle in handles]
        assert [len(a.indices) for a in answers] == [1, 5, 10, 3]


class TestCacheIntegration:
    def test_repeat_query_hits_cache(self, small_index, serve_queries):
        server = make_server(small_index, cache_capacity=64)
        with server:
            first = server.search(serve_queries[0], k=10)
            second = server.search(serve_queries[0], k=10)
        assert not first.from_cache and second.from_cache
        assert np.array_equal(first.indices, second.indices)
        stats = server.stats()
        assert stats.cache_hits == 1 and stats.cache_misses == 1

    def test_different_k_misses(self, small_index, serve_queries):
        server = make_server(small_index, cache_capacity=64)
        with server:
            server.search(serve_queries[0], k=10)
            result = server.search(serve_queries[0], k=5)
        assert not result.from_cache

    def test_swap_invalidates_cache(self, small_index, serve_queries):
        server = make_server(small_index, cache_capacity=64)
        with server:
            server.search(serve_queries[0], k=10)
            server.swap_index(
                CagraIndex(
                    small_index.dataset, small_index.graph, metric=small_index.metric
                )
            )
            after = server.search(serve_queries[0], k=10)
        assert not after.from_cache


class TestBackpressure:
    def test_full_queue_rejects(self, small_index, serve_queries):
        server = make_server(small_index, queue_capacity=4)
        # Not started: nothing drains the queue, so the 5th must bounce.
        for i in range(4):
            server.submit(serve_queries[i], k=5)
        with pytest.raises(ServerOverloaded):
            server.submit(serve_queries[4], k=5)
        assert server.stats().rejected == 1
        server.start()
        server.stop(drain=True)
        assert server.stats().completed == 4

    def test_deadline_expires_while_queued(self, small_index, serve_queries):
        server = make_server(small_index)
        handle = server.submit(serve_queries[0], k=5, timeout_ms=20.0)
        time.sleep(0.05)  # deadline passes before the scheduler ever runs
        server.start()
        with pytest.raises(RequestTimeout):
            handle.result()
        server.stop()
        stats = server.stats()
        assert stats.timed_out == 1 and stats.completed == 0

    def test_stop_without_drain_fails_pending(self, small_index, serve_queries):
        server = make_server(small_index)
        handles = [server.submit(serve_queries[i], k=5) for i in range(3)]
        server.stop(drain=False)
        for handle in handles:
            with pytest.raises(ServerClosed):
                handle.result()
        assert server.stats().failed == 3

    def test_submit_after_stop_rejected(self, small_index, serve_queries):
        server = make_server(small_index)
        server.start()
        server.stop()
        with pytest.raises(ServerClosed):
            server.submit(serve_queries[0])

    def test_stop_idempotent_and_restart_refused(self, small_index):
        server = make_server(small_index)
        server.start()
        server.stop()
        server.stop()
        with pytest.raises(ServerClosed):
            server.start()


class TestSwap:
    def test_dim_mismatch_rejected(self, small_index, tiny_data):
        other = CagraIndex.build(tiny_data)
        server = make_server(small_index)
        with pytest.raises(ValueError, match="dim"):
            server.swap_index(other)

    def test_swap_serves_new_content(self, small_index, small_data):
        extra = make_queries(small_data, 16, seed=33)
        grown = small_index.extend(extra)
        server = make_server(small_index)
        with server:
            server.swap_index(grown)
            hit = server.search(extra[0], k=1)
        assert int(hit.indices[0]) == small_index.size  # the new vector itself
        assert server.stats().index_swaps == 1


class TestValidation:
    def test_bad_query_dim(self, small_index):
        server = make_server(small_index)
        with pytest.raises(ValueError, match="dim"):
            server.submit(np.zeros(3, dtype=np.float32))

    def test_bad_k(self, small_index, serve_queries):
        server = make_server(small_index)
        with pytest.raises(ValueError, match="k"):
            server.submit(serve_queries[0], k=-1)


class _SlowIndex(CagraIndex):
    """Index whose batch path takes a fixed wall time (saturation tests)."""

    def __init__(self, inner: CagraIndex, delay_seconds: float):
        super().__init__(inner.dataset, inner.graph, metric=inner.metric)
        self._delay_seconds = delay_seconds

    def search_fast(self, *args, **kwargs):
        time.sleep(self._delay_seconds)
        return super().search_fast(*args, **kwargs)

    def search(self, *args, **kwargs):
        time.sleep(self._delay_seconds)
        return super().search(*args, **kwargs)


class TestIntegration:
    def test_seeded_poisson_load_with_mid_traffic_swap(
        self, small_index, small_data, serve_queries
    ):
        """Acceptance scenario: 500+ seeded Poisson queries, coalescing,
        a guaranteed multi-CTA batch-of-1, a mid-traffic swap with zero
        failures, and recall parity with the offline fast path."""
        server = CagraServer(
            small_index,
            ServeConfig(
                max_batch=32, max_wait_ms=4.0, queue_capacity=4096, cache_capacity=0
            ),
            search_config=SEARCH,
        )
        # Pre-start burst: queued together, so the first flush is a
        # deterministic coalesced batch of 8.
        burst = [server.submit(serve_queries[i], k=10) for i in range(8)]

        swap_clone = CagraIndex(
            small_index.dataset, small_index.graph, metric=small_index.metric
        )
        swap_done = threading.Event()

        def swapper():
            while server.stats().completed < 150:
                time.sleep(0.002)
            server.swap_index(swap_clone)  # same graph: results unchanged
            swap_done.set()

        swap_thread = threading.Thread(target=swapper)
        with server:
            # Flush the burst before offering more load: the queue holds
            # exactly 8 requests, so the first flush is a deterministic
            # coalesced batch of 8.
            for handle in burst:
                handle.result()
            swap_thread.start()
            report = run_open_loop(
                server, serve_queries, rate_qps=900.0, num_requests=512, seed=13
            )
            swap_thread.join(timeout=30.0)
            # Queue is drained; a lone submit is a guaranteed batch-of-1
            # dispatched to the multi-CTA reference path.
            lone = server.search(serve_queries[0], k=10)

        stats = server.stats()
        # (c) zero failed/dropped requests around the mid-traffic swap
        assert swap_done.is_set() and stats.index_swaps == 1
        assert report.submitted == 512 and report.completed == 512
        assert report.rejected == 0 and report.timed_out == 0 and report.failed == 0
        assert stats.failed == 0 and stats.completed == 512 + 8 + 1

        # (a) at least one coalesced batch and one multi-CTA batch-of-1
        assert stats.batch_size_histogram.get(8, 0) >= 1
        assert stats.coalesced_batches >= 1
        assert stats.single_query_batches >= 1
        assert stats.batch_size_histogram.get(1, 0) >= 1
        assert lone.indices.shape == (10,)

        # (b) recall within 0.01 of the offline fast path on the same pool
        truth, _ = exact_search(small_data, serve_queries, 10)
        rows = np.array([row for row, _ in report.results], dtype=np.int64)
        found = np.stack([ids for _, ids in report.results])
        served_recall = recall(found, truth[rows])
        offline = small_index.search_fast(serve_queries, 10, config=SEARCH)
        offline_recall = recall(offline.indices, truth)
        assert abs(served_recall - offline_recall) <= 0.01

    def test_saturation_rejects_and_times_out_then_drains(
        self, small_index, serve_queries
    ):
        """(d) Under a saturating arrival rate the bounded queue rejects,
        queued deadlines expire, and shutdown still drains cleanly."""
        slow = _SlowIndex(small_index, delay_seconds=0.005)
        server = CagraServer(
            slow,
            ServeConfig(
                max_batch=4,
                max_wait_ms=1.0,
                queue_capacity=32,
                default_timeout_ms=25.0,
                cache_capacity=0,
            ),
            search_config=SEARCH,
        )
        with server:
            report = run_open_loop(
                server, serve_queries, rate_qps=5000.0, num_requests=300, seed=17
            )
        stats = server.stats()
        assert report.submitted == 300
        assert report.rejected > 0, "bounded queue never pushed back"
        assert report.timed_out > 0, "no deadline ever expired"
        assert report.failed == 0
        assert (
            report.completed + report.rejected + report.timed_out == 300
        ), "requests lost or double-counted"
        assert stats.rejected == report.rejected
        assert stats.timed_out == report.timed_out
        # Clean drain: nothing left queued, scheduler exited.
        assert server.stats().queue_depth == 0

    def test_closed_loop_self_limits(self, small_index, serve_queries):
        server = make_server(small_index, max_batch=8)
        with server:
            report = run_closed_loop(
                server, serve_queries, num_clients=6, requests_per_client=10
            )
        assert report.completed == 60
        assert report.rejected == 0 and report.failed == 0
        assert server.stats().max_queue_depth <= 6  # never more than one per client
