"""Unit tests for repro.core.search — the CAGRA search loop."""

import numpy as np
import pytest

from repro import SearchConfig
from repro.core.config import HashTableConfig
from repro.core.graph import INDEX_MASK
from repro.core.metrics import recall
from repro.core.search import CostReport, search_batch, search_single_query


class TestSearchBatch:
    def test_shapes(self, small_index, small_queries):
        result = small_index.search(small_queries, k=10)
        assert result.indices.shape == (25, 10)
        assert result.distances.shape == (25, 10)

    def test_high_recall_single_cta(self, small_index, small_queries, small_truth):
        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=64, algo="single_cta")
        )
        assert recall(result.indices, small_truth) > 0.9

    def test_high_recall_multi_cta(self, small_index, small_queries, small_truth):
        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=64, algo="multi_cta")
        )
        assert recall(result.indices, small_truth) > 0.9

    def test_results_sorted_by_distance(self, small_index, small_queries):
        result = small_index.search(small_queries, 10, SearchConfig(itopk=32))
        finite = np.isfinite(result.distances)
        for row, mask in zip(result.distances, finite):
            assert (np.diff(row[mask]) >= 0).all()

    def test_distances_are_true_distances(self, small_index, small_queries):
        from repro.core.distances import distances_to_query

        result = small_index.search(
            small_queries, 5, SearchConfig(itopk=32, algo="single_cta")
        )
        for i in (0, 7, 13):
            ref = distances_to_query(
                small_index.dataset, small_queries[i], result.indices[i]
            )
            np.testing.assert_allclose(result.distances[i], ref, rtol=1e-3, atol=1e-3)

    def test_no_duplicate_results(self, small_index, small_queries):
        result = small_index.search(small_queries, 10, SearchConfig(itopk=64))
        for row in result.indices:
            assert len(set(row.tolist())) == 10

    def test_no_parent_flags_in_output(self, small_index, small_queries):
        result = small_index.search(small_queries, 10)
        assert (result.indices <= INDEX_MASK).all()

    def test_deterministic_given_seed(self, small_index, small_queries):
        a = small_index.search(small_queries, 10, SearchConfig(itopk=32, seed=5))
        b = small_index.search(small_queries, 10, SearchConfig(itopk=32, seed=5))
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_k_validation(self, small_index, small_queries):
        with pytest.raises(ValueError, match="k="):
            small_index.search(small_queries, 100, SearchConfig(itopk=64))
        with pytest.raises(ValueError, match="k must be"):
            small_index.search(small_queries, 0)

    def test_single_query_1d_input(self, small_index, small_queries):
        result = small_index.search(small_queries[0], k=5)
        assert result.indices.shape == (1, 5)

    def test_auto_picks_multi_cta_for_small_batch(self, small_index, small_queries):
        result = small_index.search(small_queries[:2], 10, SearchConfig(algo="auto"))
        assert result.report.algo == "multi_cta"

    def test_auto_picks_single_cta_for_large_batch(self, small_index, small_queries):
        result = small_index.search(
            small_queries, 10, SearchConfig(algo="auto"), num_sms=8
        )
        assert result.report.algo == "single_cta"

    def test_wider_itopk_does_not_reduce_recall(
        self, small_index, small_queries, small_truth
    ):
        narrow = small_index.search(
            small_queries, 10, SearchConfig(itopk=10, algo="single_cta")
        )
        wide = small_index.search(
            small_queries, 10, SearchConfig(itopk=128, algo="single_cta")
        )
        assert recall(wide.indices, small_truth) >= recall(narrow.indices, small_truth) - 0.02


class TestCostReport:
    def test_counters_populate(self, small_index, small_queries):
        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=32, algo="single_cta")
        )
        report = result.report
        assert report.batch_size == 25
        assert report.cta_count == 25
        assert report.iterations > 0
        assert report.distance_computations > 0
        assert report.hash_lookups > 0
        assert report.candidate_gathers > 0

    def test_single_cta_uses_shared_forgettable(self, small_index, small_queries):
        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=32, algo="single_cta")
        )
        assert result.report.hash_in_shared
        assert result.report.hash_resets > 0

    def test_multi_cta_uses_device_standard(self, small_index, small_queries):
        result = small_index.search(
            small_queries[:3], 10, SearchConfig(itopk=32, algo="multi_cta")
        )
        assert not result.report.hash_in_shared
        assert result.report.hash_resets == 0

    def test_multi_cta_launches_multiple_ctas_per_query(
        self, small_index, small_queries
    ):
        result = small_index.search(
            small_queries[:4], 10, SearchConfig(itopk=64, algo="multi_cta")
        )
        assert result.report.cta_count >= 4 * 2

    def test_cta_per_query_override(self, small_index, small_queries):
        result = small_index.search(
            small_queries[:2],
            10,
            SearchConfig(itopk=64, algo="multi_cta", cta_per_query=5),
        )
        assert result.report.cta_count == 10

    def test_visited_pruning_skips_work(self, small_index, small_queries):
        """Step ③'s first-time-only rule must actually skip distances."""
        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=64, algo="single_cta")
        )
        assert result.report.skipped_distance_computations > 0

    def test_merge_from_accumulates(self):
        a = CostReport(distance_computations=5, iterations=2, cta_count=1)
        b = CostReport(distance_computations=7, iterations=3, cta_count=2)
        a.merge_from(b)
        assert a.distance_computations == 12
        assert a.iterations == 5
        assert a.cta_count == 3


class TestSearchKnobs:
    def test_search_width_scales_candidates(self, small_index, small_queries):
        p1 = small_index.search(
            small_queries[:5], 10, SearchConfig(itopk=64, search_width=1, algo="single_cta")
        )
        p4 = small_index.search(
            small_queries[:5], 10, SearchConfig(itopk=64, search_width=4, algo="single_cta")
        )
        gathers_per_iter_1 = p1.report.candidate_gathers / max(1, p1.report.iterations)
        gathers_per_iter_4 = p4.report.candidate_gathers / max(1, p4.report.iterations)
        assert gathers_per_iter_4 > gathers_per_iter_1 * 2

    def test_max_iterations_caps_work(self, small_index, small_queries):
        capped = small_index.search(
            small_queries[:5], 10, SearchConfig(itopk=64, max_iterations=3, algo="single_cta")
        )
        assert capped.report.iterations <= 3 * 5

    def test_min_iterations_forces_work(self, small_index, small_queries):
        config = SearchConfig(
            itopk=16, min_iterations=30, max_iterations=40, algo="single_cta"
        )
        result = small_index.search(small_queries[:3], 10, config)
        assert result.report.iterations >= 3 * 30 or result.report.iterations >= 3 * 16

    def test_custom_hash_table_config(self, small_index, small_queries):
        config = SearchConfig(
            itopk=32,
            algo="single_cta",
            hash_table=HashTableConfig(kind="standard", log2_size=14),
        )
        result = small_index.search(small_queries[:4], 10, config)
        assert not result.report.hash_in_shared
        assert result.report.hash_log2_size >= 14

    def test_multi_cta_rejects_forgettable(self, small_index, small_queries):
        config = SearchConfig(
            algo="multi_cta", hash_table=HashTableConfig(kind="forgettable")
        )
        with pytest.raises(ValueError, match="standard"):
            small_index.search(small_queries[:1], 10, config)

    def test_forgettable_recall_not_catastrophic(
        self, small_index, small_queries, small_truth
    ):
        """Paper: periodic resets must not catastrophically hurt recall."""
        tiny_table = SearchConfig(
            itopk=64,
            algo="single_cta",
            hash_table=HashTableConfig(kind="forgettable", log2_size=8, reset_interval=1),
        )
        result = small_index.search(small_queries, 10, tiny_table)
        assert recall(result.indices, small_truth) > 0.85


class TestSearchSingleQuery:
    def test_explicit_algo_dispatch(self, small_index, small_queries):
        rng = np.random.default_rng(0)
        for algo in ("single_cta", "multi_cta"):
            ids, dists, report = search_single_query(
                small_index.dataset,
                small_index.graph,
                small_queries[0],
                5,
                SearchConfig(itopk=32),
                algo,
                rng,
            )
            assert ids.shape == (5,)
            assert report.algo == algo

    def test_multi_cta_explores_more_per_iteration(self, small_index, small_queries):
        """Paper Sec. IV-C2: multi-CTA searches num_cta * d nodes per
        round vs p * d for single-CTA — higher recall at equal rounds."""
        rng = np.random.default_rng(0)
        _, _, single = search_single_query(
            small_index.dataset, small_index.graph, small_queries[0], 5,
            SearchConfig(itopk=64), "single_cta", np.random.default_rng(0),
        )
        _, _, multi = search_single_query(
            small_index.dataset, small_index.graph, small_queries[0], 5,
            SearchConfig(itopk=64), "multi_cta", np.random.default_rng(0),
        )
        assert multi.cta_count > single.cta_count
