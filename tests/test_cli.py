"""Tests for the repro-cagra command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_build_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build"])

    def test_defaults(self):
        args = build_parser().parse_args(["build", "--out", "x.npz"])
        assert args.dataset == "deep-1m"
        assert args.reordering == "rank"
        assert args.dtype == "float32"

    def test_bench_hnsw_comparator_flags(self):
        args = build_parser().parse_args(["bench"])
        assert args.hnsw_m == 16 and args.hnsw_efc == 100  # seed defaults kept
        args = build_parser().parse_args(["bench", "--hnsw-m", "8", "--hnsw-efc", "40"])
        assert args.hnsw_m == 8 and args.hnsw_efc == 40

    def test_format_defaults_to_text(self):
        for command in (["search", "--index", "x.npz"], ["bench"], ["serve"]):
            assert build_parser().parse_args(command).format == "text"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.mode == "open"
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0
        assert args.timeout_ms == 0.0


class TestCommands:
    def test_info_lists_datasets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("sift-1m", "gist-1m", "glove-200", "nytimes", "deep-1m"):
            assert name in out

    def test_build_and_search(self, tmp_path, capsys):
        index_path = str(tmp_path / "idx.npz")
        rc = main([
            "build", "--dataset", "deep-1m", "--scale", "400",
            "--degree", "8", "--out", index_path, "--queries", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "built CagraIndex" in out

        rc = main([
            "search", "--index", index_path, "--dataset", "deep-1m",
            "--scale", "400", "--queries", "10", "-k", "5", "--itopk", "32",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recall@5" in out

    def test_build_fp16(self, tmp_path, capsys):
        index_path = str(tmp_path / "half.npz")
        rc = main([
            "build", "--dataset", "deep-1m", "--scale", "300",
            "--degree", "8", "--out", index_path, "--dtype", "float16",
        ])
        assert rc == 0

    def test_fvecs_input(self, tmp_path, capsys):
        from repro.datasets import write_fvecs

        data = np.random.default_rng(0).standard_normal((300, 16)).astype(np.float32)
        fvecs = str(tmp_path / "data.fvecs")
        write_fvecs(fvecs, data)
        index_path = str(tmp_path / "idx.npz")
        rc = main(["build", "--fvecs", fvecs, "--degree", "8", "--out", index_path])
        assert rc == 0


class TestValidateAndReport:
    def test_validate_command(self, tmp_path, capsys):
        index_path = str(tmp_path / "v.npz")
        main(["build", "--dataset", "deep-1m", "--scale", "400",
              "--degree", "8", "--out", index_path])
        capsys.readouterr()
        rc = main(["validate", "--index", index_path, "--sample", "100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out
        assert "strong CC" in out

    def test_report_command_missing_dir(self, tmp_path, capsys):
        rc = main(["report", "--results", str(tmp_path / "nope")])
        assert rc == 1

    def test_report_command_reads_results(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig1.txt").write_text("hello table\n")
        rc = main(["report", "--results", str(results)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig1" in out
        assert "hello table" in out

    def test_search_fast_flag(self, tmp_path, capsys):
        index_path = str(tmp_path / "f.npz")
        main(["build", "--dataset", "deep-1m", "--scale", "400",
              "--degree", "8", "--out", index_path])
        rc = main(["search", "--index", index_path, "--dataset", "deep-1m",
                   "--scale", "400", "--queries", "10", "-k", "5", "--fast"])
        assert rc == 0
        assert "recall@5" in capsys.readouterr().out

    def test_search_json_format(self, tmp_path, capsys):
        import json

        index_path = str(tmp_path / "j.npz")
        main(["build", "--dataset", "deep-1m", "--scale", "400",
              "--degree", "8", "--out", index_path])
        capsys.readouterr()
        rc = main(["search", "--index", index_path, "--dataset", "deep-1m",
                   "--scale", "400", "--queries", "10", "-k", "5",
                   "--fast", "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 10 and payload["k"] == 5
        assert payload["fast_path"] is True
        assert 0.0 <= payload["recall"] <= 1.0
        assert payload["distance_computations_per_query"] > 0


class TestServeCommand:
    def test_serve_smoke_text(self, capsys):
        rc = main(["serve", "--dataset", "deep-1m", "--scale", "300",
                   "--degree", "8", "--queries", "12", "--rate", "400",
                   "--requests", "60", "--max-batch", "8", "--itopk", "32"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serving stats" in out
        assert "failed=0" in out
        assert "recall@10" in out

    def test_serve_json_closed_loop(self, capsys):
        import json

        rc = main(["serve", "--dataset", "deep-1m", "--scale", "300",
                   "--degree", "8", "--queries", "12", "--mode", "closed",
                   "--clients", "4", "--requests", "40", "--itopk", "32",
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "closed"
        assert payload["failed"] == 0
        assert payload["completed"] > 0
        assert payload["stats"]["batches"] > 0


class TestLintExitCodes:
    """The lint subcommand's exit-code contract: 0 clean (or violations
    without --strict), 1 violations under --strict, 2 internal error.
    The report is emitted in every case, including --format json."""

    CLEAN = '__all__ = ["add"]\n\n\ndef add(a, b):\n    return a + b\n'
    DIRTY = (
        "import threading\n\n"
        "__all__ = ['C']\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0\n\n"
        "    def add(self, n):\n"
        "        with self._lock:\n"
        "            self.total += n\n\n"
        "    def peek(self):\n"
        "        return self.total\n"
    )

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        assert main(["lint", str(target), "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_without_strict_exit_zero(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", str(target)]) == 0
        assert "RL101" in capsys.readouterr().out

    def test_violations_with_strict_exit_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", str(target), "--strict"]) == 1
        assert "RL101" in capsys.readouterr().out

    def test_json_report_emitted_even_with_violations(self, tmp_path, capsys):
        import json as json_mod

        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", str(target), "--strict", "--format", "json"]) == 1
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["count"] >= 1
        assert payload["parse_errors"] == []
        assert any(v["rule"] == "RL101" for v in payload["violations"])

    def test_missing_path_exits_two_with_json_report(self, capsys):
        import json as json_mod

        assert main(["lint", "/no/such/file.py", "--format", "json"]) == 2
        out = capsys.readouterr().out
        payload = json_mod.loads(out)
        assert payload["parse_errors"]

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def oops(:\n")
        assert main(["lint", str(target)]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_internal_error_exits_two(self, tmp_path, monkeypatch, capsys):
        import repro.lint

        def explode(paths=None):
            raise RuntimeError("rule crashed")

        monkeypatch.setattr(repro.lint, "lint_paths", explode)
        assert main(["lint", str(tmp_path), "--format", "json"]) == 2
        captured = capsys.readouterr()
        assert "rule crashed" in captured.out  # JSON error object
        assert "internal error" in captured.err


class TestSearchParamFlags:
    def test_sentinels_default_none(self):
        for command in (["search"], ["serve"], ["bench"], ["stream"]):
            args = build_parser().parse_args(command)
            assert args.itopk is None
            assert args.search_width is None
            assert args.max_iterations is None

    def test_flags_parse_everywhere(self):
        for command in ("search", "serve", "bench", "stream"):
            args = build_parser().parse_args([
                command, "--itopk", "96", "--search-width", "2",
                "--max-iterations", "40",
            ])
            assert (args.itopk, args.search_width, args.max_iterations) == (96, 2, 40)

    def test_profile_flag_where_supported(self):
        for command in ("search", "serve", "bench"):
            args = build_parser().parse_args([command, "--profile", "auto"])
            assert args.profile == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--profile", "auto"])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.command == "tune"
        assert args.recall_target == 0.95
        assert args.batch == 10000
        assert args.out == ""


class TestTuneCommand:
    def test_tune_then_search_with_profile(self, tmp_path, capsys):
        profile_path = str(tmp_path / "tuned.json")
        common = ["--dataset", "deep-1m", "--scale", "400", "--queries", "16"]
        rc = main([
            "tune", *common, "--degree", "8", "-k", "5",
            "--itopk-grid", "8,64", "--width-grid", "1",
            "--recall-target", "0.8", "--out", profile_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chosen:" in out and profile_path in out

        rc = main([
            "search", *common, "-k", "5", "--index-kind", "cagra",
            "--profile", profile_path, "--fast", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tuned"] is True
        assert payload["itopk"] in (8, 64)

    def test_search_with_corrupt_profile_falls_back(self, tmp_path, capsys):
        from repro.tune import ProfileWarning

        profile_path = tmp_path / "corrupt.json"
        profile_path.write_text("{not json")
        with pytest.warns(ProfileWarning):
            rc = main([
                "search", "--dataset", "deep-1m", "--scale", "400",
                "--queries", "8", "-k", "5", "--index-kind", "cagra",
                "--profile", str(profile_path), "--format", "json",
            ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tuned"] is False
        assert payload["itopk"] == 64  # hard default restored

    def test_explicit_flags_beat_profile(self, tmp_path, capsys):
        profile_path = str(tmp_path / "tuned.json")
        common = ["--dataset", "deep-1m", "--scale", "400", "--queries", "12"]
        assert main([
            "tune", *common, "--degree", "8", "-k", "5",
            "--itopk-grid", "8", "--width-grid", "2",
            "--recall-target", "0.5", "--out", profile_path,
        ]) == 0
        capsys.readouterr()
        assert main([
            "search", *common, "-k", "5", "--index-kind", "cagra",
            "--profile", profile_path, "--itopk", "48", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["itopk"] == 48          # explicit flag wins
        assert payload["search_width"] == 2    # profile supplies the rest

    def test_bad_grid_exits(self):
        with pytest.raises(SystemExit):
            main(["tune", "--dataset", "deep-1m", "--scale", "400",
                  "--itopk-grid", "16,banana"])
