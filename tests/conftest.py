"""Shared fixtures: small datasets and prebuilt indexes.

Builds are session-scoped — NN-descent on even a 1.5k-point set takes a
couple of seconds in pure Python, so every test module reuses the same
indexes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CagraIndex, GraphBuildConfig
from repro.baselines import exact_search
from repro.core.nn_descent import build_knn_graph
from repro.datasets.synthetic import clustered_gaussian, hard_heavy_tailed, make_queries


@pytest.fixture(scope="session")
def small_data() -> np.ndarray:
    """1.2k easy descriptor-like vectors, dim 32."""
    return clustered_gaussian(1200, 32, seed=7)


@pytest.fixture(scope="session")
def small_queries(small_data) -> np.ndarray:
    return make_queries(small_data, 25, seed=8)


@pytest.fixture(scope="session")
def small_truth(small_data, small_queries) -> np.ndarray:
    ids, _ = exact_search(small_data, small_queries, 10)
    return ids


@pytest.fixture(scope="session")
def hard_data() -> np.ndarray:
    """800 hard embedding-like vectors, dim 48, unit-normalized."""
    return hard_heavy_tailed(800, 48, seed=9)


@pytest.fixture(scope="session")
def small_knn(small_data):
    """Initial NN-descent graph (d_init=32) for the small dataset."""
    return build_knn_graph(small_data, 32, GraphBuildConfig(graph_degree=16, seed=3))


@pytest.fixture(scope="session")
def small_index(small_data) -> CagraIndex:
    """A fully optimized degree-16 CAGRA index on the small dataset."""
    return CagraIndex.build(small_data, GraphBuildConfig(graph_degree=16, seed=3))


@pytest.fixture(scope="session")
def tiny_data() -> np.ndarray:
    """120 vectors for brute-force-comparable unit tests."""
    rng = np.random.default_rng(4)
    return rng.standard_normal((120, 16)).astype(np.float32)


@pytest.fixture(scope="session", autouse=True)
def _repro_sanitize_session():
    """Opt-in thread-sanitizer-lite for the whole test session.

    ``REPRO_SANITIZE=1 python -m pytest ...`` wraps every test in the
    runtime sanitizer (see ``repro.lint.sanitizer``); any potential
    deadlock (RL301) or tagged write race (RL302) fails the session at
    teardown.  CI runs the serve + parallel subset this way.
    """
    import os

    if os.environ.get("REPRO_SANITIZE", "") != "1":
        yield
        return
    from repro.lint import format_text
    from repro.lint.sanitizer import ThreadSanitizer

    sanitizer = ThreadSanitizer()
    sanitizer.enable()
    try:
        yield
    finally:
        sanitizer.disable()
    reports = sanitizer.violations()
    assert not reports, "\n" + format_text(reports, files_checked=0)
