"""Tests for the extension features: filtered search, refine, extend,
multi-GPU sharding."""

import numpy as np
import pytest

from repro import (
    CagraIndex,
    GraphBuildConfig,
    SearchConfig,
    ShardedCagraIndex,
    refine,
)
from repro.baselines import exact_search
from repro.core.metrics import recall


class TestFilteredSearch:
    def test_results_respect_mask(self, small_index, small_queries):
        mask = np.zeros(small_index.size, dtype=bool)
        mask[::3] = True
        result = small_index.search(
            small_queries, 5, SearchConfig(itopk=64), filter_mask=mask
        )
        assert (result.indices % 3 == 0).all()

    def test_filtered_recall_against_filtered_truth(
        self, small_index, small_data, small_queries
    ):
        mask = np.zeros(small_index.size, dtype=bool)
        mask[: small_index.size // 2] = True
        allowed = np.nonzero(mask)[0]
        truth_local, _ = exact_search(small_data[allowed], small_queries, 10)
        truth = allowed[truth_local.astype(np.int64)]
        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=128), filter_mask=mask
        )
        assert recall(result.indices, truth) > 0.8

    def test_mask_shape_validated(self, small_index, small_queries):
        with pytest.raises(ValueError, match="one entry per dataset row"):
            small_index.search(
                small_queries, 5, filter_mask=np.ones(3, dtype=bool)
            )

    def test_all_false_mask_rejected(self, small_index, small_queries):
        with pytest.raises(ValueError, match="excludes every node"):
            small_index.search(
                small_queries, 5,
                filter_mask=np.zeros(small_index.size, dtype=bool),
            )

    def test_all_true_mask_matches_unfiltered(self, small_index, small_queries):
        config = SearchConfig(itopk=32, seed=3)
        plain = small_index.search(small_queries[:5], 5, config)
        masked = small_index.search(
            small_queries[:5], 5, config,
            filter_mask=np.ones(small_index.size, dtype=bool),
        )
        np.testing.assert_array_equal(plain.indices, masked.indices)

    def test_multi_cta_filtering(self, small_index, small_queries):
        mask = np.zeros(small_index.size, dtype=bool)
        mask[::2] = True
        result = small_index.search(
            small_queries[:3], 5, SearchConfig(itopk=64, algo="multi_cta"),
            filter_mask=mask,
        )
        assert (result.indices % 2 == 0).all()


class TestRefine:
    def test_refine_picks_true_best(self, small_data, small_queries):
        truth, truth_d = exact_search(small_data, small_queries, 5)
        # Candidates: the true top-10 shuffled — refine must recover top-5.
        wide, _ = exact_search(small_data, small_queries, 10)
        rng = np.random.default_rng(0)
        shuffled = np.take_along_axis(
            wide, rng.permuted(np.tile(np.arange(10), (len(wide), 1)), axis=1), axis=1
        )
        ids, dists = refine(small_data, small_queries, shuffled, 5)
        assert recall(ids, truth) == 1.0
        np.testing.assert_allclose(dists, truth_d, rtol=1e-4, atol=1e-3)

    def test_refine_handles_duplicates(self, small_data, small_queries):
        wide, _ = exact_search(small_data, small_queries, 5)
        doubled = np.hstack([wide, wide])
        ids, _ = refine(small_data, small_queries, doubled, 5)
        for row in ids:
            assert len(set(row.tolist())) == 5

    def test_refine_fp16_index_recovers_fp32_ranking(self, small_data, small_queries):
        """The production pattern: FP16 search + FP32 refine."""
        fp16 = CagraIndex.build(
            small_data, GraphBuildConfig(graph_degree=16, seed=3),
            dataset_dtype="float16",
        )
        truth, _ = exact_search(small_data, small_queries, 10)
        raw = fp16.search(small_queries, 20, SearchConfig(itopk=64))
        ids, _ = refine(small_data, small_queries, raw.indices, 10)
        assert recall(ids, truth) >= recall(raw.indices[:, :10], truth) - 1e-9

    def test_k_validation(self, small_data, small_queries):
        with pytest.raises(ValueError, match="exceeds candidate width"):
            refine(small_data, small_queries, np.zeros((25, 3), dtype=np.int64), 5)

    def test_metric_validation(self, small_data, small_queries):
        with pytest.raises(ValueError, match="metric"):
            refine(small_data, small_queries, np.zeros((25, 5), dtype=np.int64), 3,
                   metric="hamming")


class TestExtend:
    @pytest.fixture(scope="class")
    def base_and_extra(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal((600, 24)).astype(np.float32)
        extra = rng.standard_normal((80, 24)).astype(np.float32)
        index = CagraIndex.build(base, GraphBuildConfig(graph_degree=8, seed=1))
        return base, extra, index

    def test_size_and_degree(self, base_and_extra):
        base, extra, index = base_and_extra
        bigger = index.extend(extra)
        assert bigger.size == 680
        assert bigger.degree == index.degree
        assert index.size == 600  # original untouched

    def test_new_vectors_retrievable(self, base_and_extra):
        base, extra, index = base_and_extra
        bigger = index.extend(extra)
        result = bigger.search(extra[:20], 1, SearchConfig(itopk=64))
        found_self = np.mean(result.indices[:, 0] >= 600)
        assert found_self > 0.7

    def test_overall_recall_after_extend(self, base_and_extra):
        base, extra, index = base_and_extra
        bigger = index.extend(extra)
        full = np.vstack([base, extra])
        truth, _ = exact_search(full, full[:30], 5)
        result = bigger.search(full[:30], 5, SearchConfig(itopk=64))
        assert recall(result.indices, truth) > 0.85

    def test_dim_mismatch_rejected(self, base_and_extra):
        _, _, index = base_and_extra
        with pytest.raises(ValueError, match="dim"):
            index.extend(np.zeros((3, 7), dtype=np.float32))

    def test_extend_preserves_dtype(self, small_data):
        fp16 = CagraIndex.build(
            small_data[:300], GraphBuildConfig(graph_degree=8),
            dataset_dtype="float16",
        )
        bigger = fp16.extend(small_data[300:320])
        assert bigger.dataset.dtype == np.float16

    def test_repeated_small_extends_keep_paths_agreeing(self, base_and_extra):
        """Many small extends, then the reference and fast search paths
        must still agree on the grown graph (same results, high recall)."""
        base, extra, index = base_and_extra
        grown = index
        for start in range(0, 40, 8):
            grown = grown.extend(extra[start : start + 8])
        assert grown.size == index.size + 40
        assert grown.degree == index.degree

        queries = base[:20]
        config = SearchConfig(itopk=64, seed=1)
        reference = grown.search(queries, 10, config)
        fast = grown.search_fast(queries, 10, config)
        overlap = np.mean([
            len(np.intersect1d(a, b)) / 10
            for a, b in zip(reference.indices, fast.indices)
        ])
        assert overlap > 0.9  # same algorithm, different hash semantics

        full = np.vstack([base, extra[:40]])
        truth, _ = exact_search(full, queries, 10)
        assert recall(reference.indices, truth) > 0.85
        assert recall(fast.indices, truth) > 0.85

    def test_extend_id_space_overflow_rejected(self, base_and_extra, monkeypatch):
        """The 2**31 - 1 id-space cap (MSB parented flag) must hold on
        extend, not just build (core/index.py)."""
        import repro.core.index as index_module

        _, extra, index = base_and_extra
        monkeypatch.setattr(index_module, "MAX_DATASET_SIZE", index.size + 3)
        with pytest.raises(ValueError, match="id space"):
            index.extend(extra[:10])
        # Under the cap the same call still works.
        assert index.extend(extra[:3]).size == index.size + 3


class TestSharding:
    @pytest.fixture(scope="class")
    def sharded(self, small_data):
        return ShardedCagraIndex.build(
            small_data, 3, GraphBuildConfig(graph_degree=8, seed=2)
        )

    def test_partition_complete(self, sharded, small_data):
        assert sharded.size == len(small_data)
        all_ids = np.concatenate(sharded.assignments)
        assert len(np.unique(all_ids)) == len(small_data)

    def test_search_recall(self, sharded, small_queries, small_truth):
        result = sharded.search(small_queries, 10, SearchConfig(itopk=64))
        assert recall(result.indices, small_truth) > 0.9

    def test_global_ids_returned(self, sharded, small_data, small_queries):
        from repro.core.distances import distances_to_query

        result = sharded.search(small_queries[:3], 5, SearchConfig(itopk=32))
        for i in range(3):
            ref = distances_to_query(small_data, small_queries[i], result.indices[i])
            np.testing.assert_allclose(result.distances[i], ref, rtol=1e-3, atol=1e-3)

    def test_one_report_per_shard(self, sharded, small_queries):
        result = sharded.search(small_queries[:2], 5, SearchConfig(itopk=32))
        assert len(result.shard_reports) == 3

    def test_memory_bound_by_sharding(self, sharded, small_data):
        single = CagraIndex.build(small_data, GraphBuildConfig(graph_degree=8))
        assert sharded.max_shard_memory_bytes() < single.memory_bytes()

    def test_validation(self, small_data):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedCagraIndex.build(small_data, 0)
        with pytest.raises(ValueError, match="at least 2 vectors"):
            ShardedCagraIndex.build(small_data[:4], 3)

    def test_fast_path_matches_per_shard_fast(self, sharded, small_queries, small_truth):
        result = sharded.search_fast(small_queries, 10, SearchConfig(itopk=64))
        assert recall(result.indices, small_truth) > 0.9


class TestShardedMergeMasking:
    """Regression tests for the INDEX_MASK merge leak: unfilled per-shard
    slots used to be gathered through the assignment array as if id
    2**31 - 1 were a local row (IndexError, or worse a bogus global id)."""

    def test_k_exceeding_shard_size(self):
        from repro.core.graph import INDEX_MASK

        rng = np.random.default_rng(6)
        data = rng.standard_normal((24, 8)).astype(np.float32)
        sharded = ShardedCagraIndex.build(
            data, 4, GraphBuildConfig(graph_degree=4, seed=1)
        )
        # Each shard holds 6 points, so k=30 leaves every shard short.
        result = sharded.search(
            data[:3], 30, SearchConfig(itopk=32, seed=2)
        )
        filled = result.indices != INDEX_MASK
        assert filled.sum(axis=1).max() <= 24
        # Filled slots carry valid global ids, unfilled slots carry inf.
        assert result.indices[filled].max() < 24
        assert np.isposinf(result.distances[~filled]).all()
        # INDEX_MASK padding only in trailing positions.
        for row in filled:
            width = int(row.sum())
            assert row[:width].all() and not row[width:].any()

    def test_restrictive_filter_mask(self, small_data):
        from repro.core.graph import INDEX_MASK

        sharded = ShardedCagraIndex.build(
            small_data, 3, GraphBuildConfig(graph_degree=8, seed=2)
        )
        # ~1% selectivity: fewer allowed nodes than requested k.
        allowed = np.arange(0, len(small_data), 150)
        mask = np.zeros(len(small_data), dtype=bool)
        mask[allowed] = True
        result = sharded.search(
            small_data[:4], 10, SearchConfig(itopk=64, seed=3),
            filter_mask=mask,
        )
        filled = result.indices != INDEX_MASK
        assert set(result.indices[filled].tolist()) <= set(allowed.tolist())
        for row in filled:
            width = int(row.sum())
            assert row[:width].all() and not row[width:].any()

    def test_filter_mask_excluding_whole_shard(self, small_data):
        """A shard whose rows are all filtered out contributes nothing
        (and must not be searched — an all-False local mask is an error)."""
        sharded = ShardedCagraIndex.build(
            small_data, 3, GraphBuildConfig(graph_degree=8, seed=2)
        )
        # Round-robin assignment: shard 0 owns ids 0, 3, 6, ... — allow
        # only ids from shards 1 and 2.
        mask = np.zeros(len(small_data), dtype=bool)
        mask[np.arange(1, len(small_data), 3)] = True
        mask[np.arange(2, len(small_data), 3)] = True
        result = sharded.search(
            small_data[:4], 5, SearchConfig(itopk=64, seed=3),
            filter_mask=mask,
        )
        assert (result.indices % 3 != 0).all()
        assert len(result.shard_reports) == 3
        assert result.shard_reports[0].kernel_launches == 0

    def test_all_false_mask_rejected(self, small_data):
        sharded = ShardedCagraIndex.build(
            small_data[:60], 2, GraphBuildConfig(graph_degree=4, seed=1)
        )
        with pytest.raises(ValueError, match="excludes every node"):
            sharded.search(
                small_data[:2], 5, SearchConfig(itopk=32),
                filter_mask=np.zeros(60, dtype=bool),
            )

    def test_mask_shape_validated(self, small_data):
        sharded = ShardedCagraIndex.build(
            small_data[:60], 2, GraphBuildConfig(graph_degree=4, seed=1)
        )
        with pytest.raises(ValueError, match="one entry per dataset row"):
            sharded.search(
                small_data[:2], 5, filter_mask=np.ones(3, dtype=bool)
            )


class TestExtendUnfilledRepair:
    """Regression tests for the extend dangling-edge leak: unfilled
    INDEX_MASK slots in the extend search results used to be written into
    the graph verbatim as out-edges of the new nodes."""

    @staticmethod
    def _tiny_overdegree_index():
        """A degree-4 index over 3 nodes: any extend search asks for
        k=4 neighbors from a 3-node index, so one slot per new vector
        comes back unfilled (INDEX_MASK, +inf)."""
        from repro.core.graph import FixedDegreeGraph

        base = np.eye(3, 4, dtype=np.float32)
        neighbors = np.array(
            [[1, 2, 1, 2], [0, 2, 0, 2], [0, 1, 0, 1]], dtype=np.uint32
        )
        return CagraIndex(base, FixedDegreeGraph(neighbors))

    def test_no_sentinel_edges_after_overdegree_extend(self):
        from repro.core.graph import INDEX_MASK

        index = self._tiny_overdegree_index()
        bigger = index.extend(np.ones((2, 4), dtype=np.float32))
        assert not (bigger.graph.neighbors == INDEX_MASK).any()
        assert ((bigger.graph.neighbors & INDEX_MASK) < bigger.size).all()

    def test_extended_index_validates_clean(self):
        from repro import validate_index

        index = self._tiny_overdegree_index()
        bigger = index.extend(np.ones((2, 4), dtype=np.float32))
        report = validate_index(bigger)
        assert report.unfilled_edges == 0
        assert not any("INDEX_MASK" in e for e in report.errors)
        assert not any("out of range" in e for e in report.errors)

    def test_repair_is_deterministic(self):
        index = self._tiny_overdegree_index()
        extra = np.ones((2, 4), dtype=np.float32)
        a = index.extend(extra)
        b = index.extend(extra)
        np.testing.assert_array_equal(a.graph.neighbors, b.graph.neighbors)


class TestShardingPersistence:
    def test_save_load_roundtrip(self, small_data, tmp_path):
        from repro import SearchConfig

        original = ShardedCagraIndex.build(
            small_data[:400], 2, GraphBuildConfig(graph_degree=8, seed=1)
        )
        path = str(tmp_path / "sharded.npz")
        original.save(path)
        loaded = ShardedCagraIndex.load(path)
        assert loaded.num_shards == 2
        assert loaded.size == 400
        config = SearchConfig(itopk=32, seed=4)
        a = original.search(small_data[:5], 5, config)
        b = loaded.search(small_data[:5], 5, config)
        np.testing.assert_array_equal(a.indices, b.indices)


class TestExtendPersistence:
    def test_extend_then_save_load(self, small_data, tmp_path):
        index = CagraIndex.build(
            small_data[:400], GraphBuildConfig(graph_degree=8, seed=1)
        )
        bigger = index.extend(small_data[400:450])
        path = str(tmp_path / "extended.npz")
        bigger.save(path)
        loaded = CagraIndex.load(path)
        assert loaded.size == 450
        config = SearchConfig(itopk=32, seed=2)
        a = bigger.search(small_data[:5], 5, config)
        b = loaded.search(small_data[:5], 5, config)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_repeated_extends(self, small_data):
        index = CagraIndex.build(
            small_data[:300], GraphBuildConfig(graph_degree=8, seed=1)
        )
        for start in range(300, 360, 20):
            index = index.extend(small_data[start : start + 20])
        assert index.size == 360
        result = index.search(small_data[:5], 5, SearchConfig(itopk=32))
        assert np.isfinite(result.distances[:, 0]).all()
