"""Tests for the extension features: filtered search, refine, extend,
multi-GPU sharding."""

import numpy as np
import pytest

from repro import (
    CagraIndex,
    GraphBuildConfig,
    SearchConfig,
    ShardedCagraIndex,
    refine,
)
from repro.baselines import exact_search
from repro.core.metrics import recall


class TestFilteredSearch:
    def test_results_respect_mask(self, small_index, small_queries):
        mask = np.zeros(small_index.size, dtype=bool)
        mask[::3] = True
        result = small_index.search(
            small_queries, 5, SearchConfig(itopk=64), filter_mask=mask
        )
        assert (result.indices % 3 == 0).all()

    def test_filtered_recall_against_filtered_truth(
        self, small_index, small_data, small_queries
    ):
        mask = np.zeros(small_index.size, dtype=bool)
        mask[: small_index.size // 2] = True
        allowed = np.nonzero(mask)[0]
        truth_local, _ = exact_search(small_data[allowed], small_queries, 10)
        truth = allowed[truth_local.astype(np.int64)]
        result = small_index.search(
            small_queries, 10, SearchConfig(itopk=128), filter_mask=mask
        )
        assert recall(result.indices, truth) > 0.8

    def test_mask_shape_validated(self, small_index, small_queries):
        with pytest.raises(ValueError, match="one entry per dataset row"):
            small_index.search(
                small_queries, 5, filter_mask=np.ones(3, dtype=bool)
            )

    def test_all_false_mask_rejected(self, small_index, small_queries):
        with pytest.raises(ValueError, match="excludes every node"):
            small_index.search(
                small_queries, 5,
                filter_mask=np.zeros(small_index.size, dtype=bool),
            )

    def test_all_true_mask_matches_unfiltered(self, small_index, small_queries):
        config = SearchConfig(itopk=32, seed=3)
        plain = small_index.search(small_queries[:5], 5, config)
        masked = small_index.search(
            small_queries[:5], 5, config,
            filter_mask=np.ones(small_index.size, dtype=bool),
        )
        np.testing.assert_array_equal(plain.indices, masked.indices)

    def test_multi_cta_filtering(self, small_index, small_queries):
        mask = np.zeros(small_index.size, dtype=bool)
        mask[::2] = True
        result = small_index.search(
            small_queries[:3], 5, SearchConfig(itopk=64, algo="multi_cta"),
            filter_mask=mask,
        )
        assert (result.indices % 2 == 0).all()


class TestRefine:
    def test_refine_picks_true_best(self, small_data, small_queries):
        truth, truth_d = exact_search(small_data, small_queries, 5)
        # Candidates: the true top-10 shuffled — refine must recover top-5.
        wide, _ = exact_search(small_data, small_queries, 10)
        rng = np.random.default_rng(0)
        shuffled = np.take_along_axis(
            wide, rng.permuted(np.tile(np.arange(10), (len(wide), 1)), axis=1), axis=1
        )
        ids, dists = refine(small_data, small_queries, shuffled, 5)
        assert recall(ids, truth) == 1.0
        np.testing.assert_allclose(dists, truth_d, rtol=1e-4, atol=1e-3)

    def test_refine_handles_duplicates(self, small_data, small_queries):
        wide, _ = exact_search(small_data, small_queries, 5)
        doubled = np.hstack([wide, wide])
        ids, _ = refine(small_data, small_queries, doubled, 5)
        for row in ids:
            assert len(set(row.tolist())) == 5

    def test_refine_fp16_index_recovers_fp32_ranking(self, small_data, small_queries):
        """The production pattern: FP16 search + FP32 refine."""
        fp16 = CagraIndex.build(
            small_data, GraphBuildConfig(graph_degree=16, seed=3),
            dataset_dtype="float16",
        )
        truth, _ = exact_search(small_data, small_queries, 10)
        raw = fp16.search(small_queries, 20, SearchConfig(itopk=64))
        ids, _ = refine(small_data, small_queries, raw.indices, 10)
        assert recall(ids, truth) >= recall(raw.indices[:, :10], truth) - 1e-9

    def test_k_validation(self, small_data, small_queries):
        with pytest.raises(ValueError, match="exceeds candidate width"):
            refine(small_data, small_queries, np.zeros((25, 3), dtype=np.int64), 5)

    def test_metric_validation(self, small_data, small_queries):
        with pytest.raises(ValueError, match="metric"):
            refine(small_data, small_queries, np.zeros((25, 5), dtype=np.int64), 3,
                   metric="hamming")


class TestExtend:
    @pytest.fixture(scope="class")
    def base_and_extra(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal((600, 24)).astype(np.float32)
        extra = rng.standard_normal((80, 24)).astype(np.float32)
        index = CagraIndex.build(base, GraphBuildConfig(graph_degree=8, seed=1))
        return base, extra, index

    def test_size_and_degree(self, base_and_extra):
        base, extra, index = base_and_extra
        bigger = index.extend(extra)
        assert bigger.size == 680
        assert bigger.degree == index.degree
        assert index.size == 600  # original untouched

    def test_new_vectors_retrievable(self, base_and_extra):
        base, extra, index = base_and_extra
        bigger = index.extend(extra)
        result = bigger.search(extra[:20], 1, SearchConfig(itopk=64))
        found_self = np.mean(result.indices[:, 0] >= 600)
        assert found_self > 0.7

    def test_overall_recall_after_extend(self, base_and_extra):
        base, extra, index = base_and_extra
        bigger = index.extend(extra)
        full = np.vstack([base, extra])
        truth, _ = exact_search(full, full[:30], 5)
        result = bigger.search(full[:30], 5, SearchConfig(itopk=64))
        assert recall(result.indices, truth) > 0.85

    def test_dim_mismatch_rejected(self, base_and_extra):
        _, _, index = base_and_extra
        with pytest.raises(ValueError, match="dim"):
            index.extend(np.zeros((3, 7), dtype=np.float32))

    def test_extend_preserves_dtype(self, small_data):
        fp16 = CagraIndex.build(
            small_data[:300], GraphBuildConfig(graph_degree=8),
            dataset_dtype="float16",
        )
        bigger = fp16.extend(small_data[300:320])
        assert bigger.dataset.dtype == np.float16

    def test_repeated_small_extends_keep_paths_agreeing(self, base_and_extra):
        """Many small extends, then the reference and fast search paths
        must still agree on the grown graph (same results, high recall)."""
        base, extra, index = base_and_extra
        grown = index
        for start in range(0, 40, 8):
            grown = grown.extend(extra[start : start + 8])
        assert grown.size == index.size + 40
        assert grown.degree == index.degree

        queries = base[:20]
        config = SearchConfig(itopk=64, seed=1)
        reference = grown.search(queries, 10, config)
        fast = grown.search_fast(queries, 10, config)
        overlap = np.mean([
            len(np.intersect1d(a, b)) / 10
            for a, b in zip(reference.indices, fast.indices)
        ])
        assert overlap > 0.9  # same algorithm, different hash semantics

        full = np.vstack([base, extra[:40]])
        truth, _ = exact_search(full, queries, 10)
        assert recall(reference.indices, truth) > 0.85
        assert recall(fast.indices, truth) > 0.85

    def test_extend_id_space_overflow_rejected(self, base_and_extra, monkeypatch):
        """The 2**31 - 1 id-space cap (MSB parented flag) must hold on
        extend, not just build (core/index.py)."""
        import repro.core.index as index_module

        _, extra, index = base_and_extra
        monkeypatch.setattr(index_module, "MAX_DATASET_SIZE", index.size + 3)
        with pytest.raises(ValueError, match="id space"):
            index.extend(extra[:10])
        # Under the cap the same call still works.
        assert index.extend(extra[:3]).size == index.size + 3


class TestSharding:
    @pytest.fixture(scope="class")
    def sharded(self, small_data):
        return ShardedCagraIndex.build(
            small_data, 3, GraphBuildConfig(graph_degree=8, seed=2)
        )

    def test_partition_complete(self, sharded, small_data):
        assert sharded.size == len(small_data)
        all_ids = np.concatenate(sharded.assignments)
        assert len(np.unique(all_ids)) == len(small_data)

    def test_search_recall(self, sharded, small_queries, small_truth):
        result = sharded.search(small_queries, 10, SearchConfig(itopk=64))
        assert recall(result.indices, small_truth) > 0.9

    def test_global_ids_returned(self, sharded, small_data, small_queries):
        from repro.core.distances import distances_to_query

        result = sharded.search(small_queries[:3], 5, SearchConfig(itopk=32))
        for i in range(3):
            ref = distances_to_query(small_data, small_queries[i], result.indices[i])
            np.testing.assert_allclose(result.distances[i], ref, rtol=1e-3, atol=1e-3)

    def test_one_report_per_shard(self, sharded, small_queries):
        result = sharded.search(small_queries[:2], 5, SearchConfig(itopk=32))
        assert len(result.shard_reports) == 3

    def test_memory_bound_by_sharding(self, sharded, small_data):
        single = CagraIndex.build(small_data, GraphBuildConfig(graph_degree=8))
        assert sharded.max_shard_memory_bytes() < single.memory_bytes()

    def test_validation(self, small_data):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedCagraIndex.build(small_data, 0)
        with pytest.raises(ValueError, match="at least 2 vectors"):
            ShardedCagraIndex.build(small_data[:4], 3)


class TestShardingPersistence:
    def test_save_load_roundtrip(self, small_data, tmp_path):
        from repro import SearchConfig

        original = ShardedCagraIndex.build(
            small_data[:400], 2, GraphBuildConfig(graph_degree=8, seed=1)
        )
        path = str(tmp_path / "sharded.npz")
        original.save(path)
        loaded = ShardedCagraIndex.load(path)
        assert loaded.num_shards == 2
        assert loaded.size == 400
        config = SearchConfig(itopk=32, seed=4)
        a = original.search(small_data[:5], 5, config)
        b = loaded.search(small_data[:5], 5, config)
        np.testing.assert_array_equal(a.indices, b.indices)


class TestExtendPersistence:
    def test_extend_then_save_load(self, small_data, tmp_path):
        index = CagraIndex.build(
            small_data[:400], GraphBuildConfig(graph_degree=8, seed=1)
        )
        bigger = index.extend(small_data[400:450])
        path = str(tmp_path / "extended.npz")
        bigger.save(path)
        loaded = CagraIndex.load(path)
        assert loaded.size == 450
        config = SearchConfig(itopk=32, seed=2)
        a = bigger.search(small_data[:5], 5, config)
        b = loaded.search(small_data[:5], 5, config)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_repeated_extends(self, small_data):
        index = CagraIndex.build(
            small_data[:300], GraphBuildConfig(graph_degree=8, seed=1)
        )
        for start in range(300, 360, 20):
            index = index.extend(small_data[start : start + 20])
        assert index.size == 360
        result = index.search(small_data[:5], 5, SearchConfig(itopk=32))
        assert np.isfinite(result.distances[:, 0]).all()
