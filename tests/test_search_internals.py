"""White-box tests of the CAGRA search loop mechanics."""

import numpy as np
import pytest

from repro import SearchConfig
from repro.core.config import HashTableConfig
from repro.core.graph import INDEX_MASK, PARENT_FLAG
from repro.core.hashtable import StandardHashTable
from repro.core.metrics import recall
from repro.core.search import CostReport, _greedy_core, search_batch


class TestGreedyCore:
    """Direct exercise of one CTA's loop with controlled seeds."""

    def _run(self, index, query, seed_ids, itopk=16, width=1, max_iter=50):
        report = CostReport()
        table = StandardHashTable(12)
        ids, dists = _greedy_core(
            index.dataset,
            index.graph,
            query,
            itopk,
            width,
            max_iter,
            0,
            table,
            np.random.default_rng(0),
            "sqeuclidean",
            report,
            seed_ids=np.asarray(seed_ids, dtype=np.uint32),
        )
        return ids, dists, report

    def test_explicit_seeds_are_visited(self, small_index, small_queries):
        ids, dists, report = self._run(small_index, small_queries[0], [5, 10, 15])
        assert report.random_inits == 3
        assert report.distance_computations >= 3

    def test_all_topm_entries_end_parented(self, small_index, small_queries):
        ids, _, _ = self._run(small_index, small_queries[0], [1, 2, 3], max_iter=500)
        real = ids[ids != INDEX_MASK]
        assert ((real & PARENT_FLAG) != 0).all()

    def test_duplicate_seeds_counted_once(self, small_index, small_queries):
        _, _, report = self._run(small_index, small_queries[0], [7, 7, 7])
        # Only the first copy computes a distance at initialization.
        assert report.skipped_distance_computations >= 2

    def test_greedy_descends(self, small_index, small_queries):
        """The best distance in the final buffer must beat the seeds'."""
        from repro.core.distances import distances_to_query

        seeds = [3, 400, 800]
        seed_d = distances_to_query(
            small_index.dataset, small_queries[0], np.array(seeds)
        )
        _, dists, _ = self._run(small_index, small_queries[0], seeds, max_iter=200)
        assert dists[0] <= seed_d.min()

    def test_max_iterations_zero_iterations_cap(self, small_index, small_queries):
        _, _, report = self._run(small_index, small_queries[0], [1], max_iter=2)
        assert report.iterations <= 2


class TestSortStrategyIntegration:
    def test_small_candidate_buffer_uses_bitonic(self, small_index, small_queries):
        result = small_index.search(
            small_queries[:3], 10,
            SearchConfig(itopk=32, algo="single_cta", search_width=1),
        )
        assert result.report.sort_comparator_ops > 0
        assert result.report.radix_sorted_elements == 0

    def test_huge_candidate_buffer_uses_radix(self, small_index, small_queries):
        """search_width 64 x degree 16 = 1024 candidates > 512 -> radix."""
        result = small_index.search(
            small_queries[:2], 10,
            SearchConfig(itopk=64, algo="single_cta", search_width=64),
        )
        assert result.report.radix_sorted_elements > 0


class TestBatchSemantics:
    def test_result_independent_of_batch_position(self, small_index, small_queries):
        """Per-query RNG streams: query 3 alone == query 3 in a batch."""
        config = SearchConfig(itopk=32, seed=11, algo="single_cta")
        batch = small_index.search(small_queries[:10], 10, config)
        # Build a batch where query index 3 is at position 3 again but
        # neighbors changed — per-index streams only guarantee equality
        # at the same position, which is what we check.
        again = small_index.search(small_queries[:10], 10, config)
        np.testing.assert_array_equal(batch.indices[3], again.indices[3])

    def test_recomputed_counter_only_with_forgettable(self, small_index, small_queries):
        standard = small_index.search(
            small_queries[:5], 10,
            SearchConfig(itopk=64, algo="single_cta",
                         hash_table=HashTableConfig(kind="standard", log2_size=14)),
        )
        assert standard.report.recomputed_distances == 0
        forget = small_index.search(
            small_queries[:5], 10,
            SearchConfig(itopk=64, algo="single_cta",
                         hash_table=HashTableConfig(kind="forgettable",
                                                    log2_size=10, reset_interval=1)),
        )
        assert forget.report.recomputed_distances > 0

    def test_recomputed_never_exceeds_computed(self, small_index, small_queries):
        result = small_index.search(
            small_queries, 10,
            SearchConfig(itopk=64, algo="single_cta",
                         hash_table=HashTableConfig(kind="forgettable",
                                                    log2_size=9, reset_interval=1)),
        )
        assert 0 < result.report.recomputed_distances <= result.report.distance_computations

    def test_empty_metric_consistency(self, small_index, small_queries):
        """search_batch validates against the graph it was given."""
        with pytest.raises(ValueError):
            search_batch(
                small_index.dataset, small_index.graph, small_queries, 5,
                SearchConfig(itopk=16),
                filter_mask=np.ones(3, dtype=bool),
            )


class TestParentFlagMechanics:
    def test_parents_never_reexpanded_with_standard_hash(
        self, small_index, small_queries
    ):
        """With a standard hash, candidate gathers = iterations x p x d
        exactly — each parent contributes once."""
        result = small_index.search(
            small_queries[:5], 10,
            SearchConfig(itopk=32, algo="single_cta",
                         hash_table=HashTableConfig(kind="standard", log2_size=14)),
        )
        d = small_index.degree
        assert result.report.candidate_gathers <= result.report.iterations * d

    def test_output_strips_flags(self, small_index, small_queries):
        result = small_index.search(small_queries, 10, SearchConfig(itopk=64))
        assert (result.indices < small_index.size).all()
