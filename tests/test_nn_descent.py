"""Unit tests for repro.core.nn_descent."""

import numpy as np
import pytest

from repro.core.config import GraphBuildConfig
from repro.core.nn_descent import (
    _merge_candidates,
    _reverse_samples,
    _reverse_samples_fast,
    brute_force_knn_graph,
    build_knn_graph,
)


class TestMergeCandidates:
    def test_keeps_best(self):
        ids = np.array([[1, 2]])
        dists = np.array([[1.0, 2.0]])
        cand = np.array([[3]])
        cand_d = np.array([[0.5]])
        new_ids, new_dists, entered = _merge_candidates(ids, dists, cand, cand_d, 2)
        np.testing.assert_array_equal(new_ids, [[3, 1]])
        np.testing.assert_allclose(new_dists, [[0.5, 1.0]])
        np.testing.assert_array_equal(entered, [[True, False]])

    def test_duplicate_keeps_best_distance(self):
        ids = np.array([[1, 2]])
        dists = np.array([[1.0, 2.0]])
        cand = np.array([[2, 2]])
        cand_d = np.array([[0.3, 5.0]])
        new_ids, new_dists, _ = _merge_candidates(ids, dists, cand, cand_d, 2)
        np.testing.assert_array_equal(new_ids, [[2, 1]])
        np.testing.assert_allclose(new_dists, [[0.3, 1.0]])

    def test_no_change_reports_nothing_entered(self):
        ids = np.array([[1, 2]])
        dists = np.array([[1.0, 2.0]])
        new_ids, _, entered = _merge_candidates(
            ids, dists, np.array([[9]]), np.array([[99.0]]), 2
        )
        np.testing.assert_array_equal(new_ids, ids)
        assert not entered.any()

    def test_rows_stay_sorted(self):
        rng = np.random.default_rng(0)
        ids = rng.permutation(20)[:8][None, :]
        dists = rng.random((1, 8))
        order = np.argsort(dists[0])
        ids, dists = ids[:, order], dists[:, order]
        cand = rng.permutation(30)[20:28][None, :] + 100
        cand_d = rng.random((1, 8))
        _, new_dists, _ = _merge_candidates(ids, dists, cand, cand_d, 8)
        assert (np.diff(new_dists[0]) >= 0).all()


class TestReverseSamples:
    def test_fast_matches_reference_semantics(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 30, size=(30, 5))
        out = _reverse_samples_fast(ids.astype(np.int64), 4, np.random.default_rng(2))
        # Every sampled reverse neighbor must actually point at the node.
        for node in range(30):
            for src in out[node]:
                if src != node:  # padding value
                    assert node in ids[src]

    def test_reference_variant_same_property(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 20, size=(20, 4))
        out = _reverse_samples(ids.astype(np.int64), 3, np.random.default_rng(2))
        for node in range(20):
            for src in out[node]:
                if src != node:
                    assert node in ids[src]

    def test_shapes(self):
        ids = np.zeros((10, 3), dtype=np.int64)
        ids[:] = np.arange(3)
        out = _reverse_samples_fast(ids, 5, np.random.default_rng(0))
        assert out.shape == (10, 5)


class TestBruteForceKnnGraph:
    def test_exact_against_manual(self, tiny_data):
        result = brute_force_knn_graph(tiny_data, 5)
        d = ((tiny_data[:, None, :].astype(np.float64) - tiny_data[None]) ** 2).sum(-1)
        np.fill_diagonal(d, np.inf)
        expected = np.argsort(d, axis=1)[:, :5]
        # Compare sets (ties may reorder).
        for i in range(len(tiny_data)):
            assert set(result.graph.neighbors[i].tolist()) == set(expected[i].tolist())

    def test_rows_sorted_by_distance(self, tiny_data):
        result = brute_force_knn_graph(tiny_data, 6)
        assert (np.diff(result.distances, axis=1) >= 0).all()

    def test_no_self_loops(self, tiny_data):
        result = brute_force_knn_graph(tiny_data, 5)
        assert not result.graph.has_self_loops()

    def test_k_clamped(self):
        data = np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32)
        result = brute_force_knn_graph(data, 10)
        assert result.graph.degree == 4


class TestBuildKnnGraph:
    def test_high_accuracy_vs_exact(self, small_data, small_knn):
        exact = brute_force_knn_graph(small_data, 32)
        overlaps = [
            len(np.intersect1d(small_knn.graph.neighbors[i], exact.graph.neighbors[i]))
            / 32
            for i in range(0, len(small_data), 10)
        ]
        assert np.mean(overlaps) > 0.85

    def test_rows_sorted_by_distance(self, small_knn):
        assert (np.diff(small_knn.distances, axis=1) >= -1e-6).all()

    def test_distances_match_ids(self, small_data, small_knn):
        """The reported distance table must be consistent with the ids."""
        from repro.core.distances import distances_to_query

        for node in (0, 17, 311):
            ref = distances_to_query(small_data, small_data[node], small_knn.graph.neighbors[node])
            np.testing.assert_allclose(small_knn.distances[node], ref, rtol=1e-3, atol=1e-3)

    def test_no_self_loops(self, small_knn):
        assert not small_knn.graph.has_self_loops()

    def test_deterministic_given_seed(self):
        data = np.random.default_rng(3).standard_normal((200, 8)).astype(np.float32)
        a = build_knn_graph(data, 8, GraphBuildConfig(graph_degree=4, seed=11))
        b = build_knn_graph(data, 8, GraphBuildConfig(graph_degree=4, seed=11))
        np.testing.assert_array_equal(a.graph.neighbors, b.graph.neighbors)

    def test_different_seeds_differ(self):
        data = np.random.default_rng(3).standard_normal((200, 8)).astype(np.float32)
        a = build_knn_graph(data, 8, GraphBuildConfig(graph_degree=4, seed=11))
        b = build_knn_graph(data, 8, GraphBuildConfig(graph_degree=4, seed=12))
        assert not np.array_equal(a.graph.neighbors, b.graph.neighbors)

    def test_termination_before_cap(self, small_knn):
        config_cap = GraphBuildConfig().nn_descent_iterations
        assert small_knn.iterations <= config_cap

    def test_counts_distance_computations(self, small_knn, small_data):
        # At least the initialization distances must be counted.
        assert small_knn.distance_computations >= len(small_data) * 32

    def test_tiny_dataset(self):
        data = np.random.default_rng(0).standard_normal((4, 4)).astype(np.float32)
        result = build_knn_graph(data, 8)
        assert result.graph.degree == 3  # clamped to n-1

    def test_rejects_single_vector(self):
        with pytest.raises(ValueError, match="at least 2"):
            build_knn_graph(np.zeros((1, 4), dtype=np.float32), 2)

    def test_inner_product_metric(self):
        data = np.random.default_rng(0).standard_normal((150, 8)).astype(np.float32)
        result = build_knn_graph(
            data, 6, GraphBuildConfig(graph_degree=4, metric="inner_product")
        )
        exact = brute_force_knn_graph(data, 6, metric="inner_product")
        overlap = np.mean(
            [
                len(np.intersect1d(result.graph.neighbors[i], exact.graph.neighbors[i])) / 6
                for i in range(150)
            ]
        )
        assert overlap > 0.7


class TestReferenceNnDescent:
    """The textbook local-join NN-descent as an oracle for the vectorized
    variant."""

    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.datasets.synthetic import clustered_gaussian

        return clustered_gaussian(300, 16, seed=3)

    def test_reference_reaches_high_quality(self, corpus):
        from repro.core.nn_descent_reference import build_knn_graph_reference

        exact = brute_force_knn_graph(corpus, 10)
        result = build_knn_graph_reference(corpus, 10, seed=1)
        overlap = np.mean([
            len(np.intersect1d(result.graph.neighbors[i], exact.graph.neighbors[i])) / 10
            for i in range(len(corpus))
        ])
        assert overlap > 0.9

    def test_vectorized_matches_reference_quality(self, corpus):
        """The NumPy restructuring must not cost meaningful graph quality
        relative to the literal algorithm."""
        from repro.core.nn_descent_reference import build_knn_graph_reference

        exact = brute_force_knn_graph(corpus, 10)

        def quality(neighbors):
            return np.mean([
                len(np.intersect1d(neighbors[i], exact.graph.neighbors[i])) / 10
                for i in range(len(corpus))
            ])

        reference = build_knn_graph_reference(corpus, 10, seed=1)
        fast = build_knn_graph(corpus, 10, GraphBuildConfig(graph_degree=4, seed=1))
        assert quality(fast.graph.neighbors) > quality(reference.graph.neighbors) - 0.1

    def test_reference_rows_sorted(self, corpus):
        from repro.core.nn_descent_reference import build_knn_graph_reference

        result = build_knn_graph_reference(corpus, 8, seed=2)
        assert (np.diff(result.distances, axis=1) >= -1e-6).all()
        assert not result.graph.has_self_loops()

    def test_reference_terminates_early(self, corpus):
        from repro.core.nn_descent_reference import build_knn_graph_reference

        result = build_knn_graph_reference(corpus, 8, max_iterations=30, seed=2)
        assert result.iterations < 30
