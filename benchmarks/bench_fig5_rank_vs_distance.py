"""Fig. 5: search performance of rank- vs distance-optimized graphs.

Runs the same CAGRA search over graphs optimized with each reordering
flavour and compares recall–QPS curves.

Expected shape: the curves coincide (the paper's Q-A3: "the
recall-throughput balance is almost the same"), so the faster rank-based
optimization costs nothing at search time.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_curve_table, run_cagra_sweep

DATASETS = ["deep-1m", "glove-200"]
SWEEP = [10, 16, 32, 64, 128]
BATCH = 10_000


def test_fig5_rank_vs_distance_search(ctx, benchmark):
    def run():
        curves = []
        pairs = {}
        for name in DATASETS:
            bundle = ctx.bundle(name)
            truth = ctx.truth(name)
            for flavour in ("rank", "distance"):
                index = ctx.cagra(name, reordering=flavour)
                curve = run_cagra_sweep(
                    index, bundle.queries, truth, 10, SWEEP, BATCH,
                    SearchConfig(algo="single_cta"),
                    method=f"{name}/{flavour}",
                )
                curves.append(curve)
                pairs[(name, flavour)] = curve
        return curves, pairs

    curves, pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig5_rank_vs_distance",
        format_curve_table(
            curves,
            title=f"Fig. 5: CAGRA search on rank- vs distance-optimized graphs "
            f"(batch {BATCH:,})",
        ),
    )

    # Shape: at every sweep point the two flavours' recalls are close and
    # QPS is identical up to counter noise (same search, same kernel).
    for name in DATASETS:
        rank_points = pairs[(name, "rank")].points
        dist_points = pairs[(name, "distance")].points
        for rp, dp in zip(rank_points, dist_points):
            assert abs(rp.recall - dp.recall) < 0.08, (name, rp.param)
            assert 0.5 < rp.qps / dp.qps < 2.0, (name, rp.param)
