"""Extension bench: the array-parallel traversal engine vs the legacy loop.

The engine (:mod:`repro.core.traversal`) steps every live query of a
batch through one masked numpy program; the legacy shape — the
per-query sequential loop that ``search_batch`` ran before the engine
existed — survives as the executable specification
(:meth:`TraversalEngine.search_single`).  This bench measures *actual*
Python wall time for both at the same search configuration, plus the
fp16-storage variant, and asserts the engine's batched QPS is at least
the legacy loop's at matched recall.

Alongside the human-readable table in ``benchmarks/results/``, the run
appends a machine-readable entry to ``BENCH_traversal.json`` at the
repo root so engine-vs-legacy headroom is tracked across PRs (the
traversal-side companion to ``BENCH_search.json``).
"""

import json
import os
import time
from datetime import date

import numpy as np
import pytest
from conftest import emit

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.bench import format_table
from repro.core.metrics import recall
from repro.datasets.synthetic import clustered_gaussian, make_queries

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_traversal.json"
)

ROWS = 1500
DIM = 32
DEGREE = 16
NUM_QUERIES = 64
K = 10
SEED = 47
ITOPK = 64


@pytest.fixture(scope="module")
def setup():
    data = clustered_gaussian(ROWS, DIM, seed=SEED)
    index = CagraIndex.build(data, GraphBuildConfig(graph_degree=DEGREE, seed=SEED))
    queries = make_queries(data, NUM_QUERIES, seed=SEED + 1)
    from repro.baselines import exact_search

    truth, _ = exact_search(data, queries, K)
    return index, queries, truth


def _legacy_loop(index, queries, config):
    """The pre-engine ``search_batch`` shape: one query at a time through
    the sequential executable specification."""
    engine = index.engine()
    out = np.empty((queries.shape[0], K), dtype=np.int64)
    for i, query in enumerate(queries):
        rng = np.random.default_rng([config.seed, i])
        ids, _, _ = engine.search_single(query, K, config, "single_cta", rng)
        out[i] = ids
    return out


def test_engine_vs_legacy_qps(setup, benchmark):
    index, queries, truth = setup
    config = SearchConfig(itopk=ITOPK, algo="single_cta", seed=SEED)

    def run():
        timings = {}
        t0 = time.perf_counter()
        legacy_ids = _legacy_loop(index, queries, config)
        timings["legacy"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        ref = index.search(queries, K, config)
        timings["engine_reference"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        fast = index.search_fast(queries, K, config)
        timings["engine_fast"] = time.perf_counter() - t0

        fp16 = config.with_overrides(precision="fp16")
        t0 = time.perf_counter()
        half = index.search_fast(queries, K, fp16)
        timings["engine_fast_fp16"] = time.perf_counter() - t0

        recalls = {
            "legacy": recall(legacy_ids, truth),
            "engine_reference": recall(ref.indices, truth),
            "engine_fast": recall(fast.indices, truth),
            "engine_fast_fp16": recall(half.indices, truth),
        }
        return timings, recalls

    timings, recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    qps = {name: NUM_QUERIES / seconds for name, seconds in timings.items()}

    rows = [
        [name, f"{timings[name] * 1e3:.1f} ms", f"{qps[name]:,.0f}",
         f"{recalls[name]:.4f}"]
        for name in ("legacy", "engine_reference", "engine_fast",
                     "engine_fast_fp16")
    ]
    rows.append(["engine_fast / legacy", "", f"{qps['engine_fast'] / qps['legacy']:.2f}x", ""])
    emit(
        "ext_traversal",
        format_table(
            ["path", "python wall time", "QPS (real)", f"recall@{K}"],
            rows,
            title=(
                f"Extension: array-parallel traversal engine vs legacy "
                f"per-query loop ({ROWS}-row degree-{DEGREE} index, "
                f"{NUM_QUERIES} queries, itopk {ITOPK})"
            ),
        ),
    )

    entry = {
        "recorded": date.today().isoformat(),
        "bench": "ext_traversal",
        "config": {
            "rows": ROWS, "dim": DIM, "degree": DEGREE, "k": K,
            "num_queries": NUM_QUERIES, "seed": SEED, "itopk": ITOPK,
        },
        "cells": {
            name: {
                "wall_seconds": round(timings[name], 4),
                "qps": round(qps[name], 1),
                "recall": round(recalls[name], 4),
            }
            for name in timings
        },
        "costs": {
            "engine_fast_over_legacy_qps": round(qps["engine_fast"] / qps["legacy"], 3),
            "fp16_recall_delta": round(
                recalls["engine_fast"] - recalls["engine_fast_fp16"], 4
            ),
        },
    }
    trajectory = {"schema": 1, "entries": []}
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
            trajectory = json.load(handle)
    trajectory["entries"].append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Acceptance: reference mode reproduces the legacy loop's results
    # exactly, and the batched engine is at least as fast as the legacy
    # per-query loop at matched recall.
    assert recalls["engine_reference"] == recalls["legacy"]
    assert recalls["engine_fast"] >= recalls["legacy"] - 0.01
    assert abs(recalls["engine_fast"] - recalls["engine_fast_fp16"]) <= 0.01
    assert qps["engine_fast"] >= qps["legacy"]
