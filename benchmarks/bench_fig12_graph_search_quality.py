"""Fig. 12: graph quality — CAGRA vs NSSG graphs under the NSSG searcher.

The CAGRA graph is handed to the *NSSG* search implementation (random
seeds + best-first beam, single CPU thread) so only the graphs differ,
exactly the paper's methodology.  Degrees are aligned: CAGRA's fixed
degree is the largest multiple of 16 at or below the NSSG graph's average
out-degree — but never above the bench degree.

Expected shape: near-equivalent recall–QPS curves, with small mixed wins.
"""

from conftest import emit

from repro import CagraIndex, GraphBuildConfig
from repro.baselines import nssg_search
from repro.bench import format_curve_table, run_beam_sweep_cpu

DATASETS = ["sift-1m", "glove-200", "nytimes", "deep-1m"]
BEAMS = [16, 32, 64, 128]
BATCH = 1000


def test_fig12_graph_quality_nssg_searcher(ctx, benchmark):
    def run():
        curves = []
        by_key = {}
        for name in DATASETS:
            bundle = ctx.bundle(name)
            truth = ctx.truth(name)
            metric = bundle.spec.metric
            nssg = ctx.nssg(name)

            # Degree alignment, as in the paper.
            aligned = max(16, int(nssg.average_degree // 16) * 16)
            aligned = min(aligned, ctx.degree(name))
            cagra = CagraIndex.from_knn_result(
                bundle.data, ctx.knn(name),
                GraphBuildConfig(graph_degree=aligned, metric=metric),
            )

            for graph_name, adjacency in (
                ("CAGRA-graph", cagra.graph),
                ("NSSG-graph", nssg.adjacency),
            ):
                def fn(queries, k, beam, adjacency=adjacency):
                    return nssg_search(
                        bundle.data, adjacency, queries, k,
                        beam_width=beam, num_seeds=16, metric=metric,
                    )

                curve = run_beam_sweep_cpu(
                    f"{name}/{graph_name}", fn, bundle.queries, truth, 10,
                    BEAMS, BATCH, dim=bundle.spec.dim, threads=1,
                )
                curves.append(curve)
                by_key[(name, graph_name)] = curve
        return curves, by_key

    curves, by_key = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig12_graph_search_quality",
        format_curve_table(
            curves,
            title="Fig. 12: NSSG single-thread searcher on CAGRA vs NSSG graphs",
        ),
    )

    for name in DATASETS:
        cagra_curve = by_key[(name, "CAGRA-graph")]
        nssg_curve = by_key[(name, "NSSG-graph")]
        # Roughly equivalent: comparable peak recall and, at a 90% target,
        # QPS within ~2.5x either way.
        assert cagra_curve.max_recall() >= nssg_curve.max_recall() - 0.1, name
        cagra_qps = cagra_curve.qps_at_recall(0.9)
        nssg_qps = nssg_curve.qps_at_recall(0.9)
        if cagra_qps and nssg_qps:
            assert 0.4 < cagra_qps / nssg_qps < 2.5, name
