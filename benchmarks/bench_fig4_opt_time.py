"""Fig. 4: graph optimization time — rank- vs distance-based reordering.

Two costs are compared, exactly as the paper frames them:

* simulated GPU optimization time (rank-based touches only the adjacency
  arrays; distance-based adds its distance work), and
* the distance-table memory distance-based needs (``N x d_init`` floats)
  — at DEEP-100M's real scale that table no longer fits beside the
  dataset in 80 GB device memory, reproducing the paper's OOM.

Expected shape: rank-based faster everywhere (paper: up to 1.9x) and
distance-based infeasible on the largest dataset.
"""

import time

from conftest import emit

from repro import GraphBuildConfig
from repro.bench import format_table
from repro.core.optimize import optimize_graph
from repro.datasets import DATASETS as REGISTRY
from repro.gpusim import GpuCostModel

DATASETS = ["sift-1m", "glove-200", "nytimes", "deep-1m"]


def test_fig4_optimization_time(ctx, benchmark):
    gpu = GpuCostModel()

    def run():
        rows = []
        speedups = {}
        for name in DATASETS:
            knn = ctx.knn(name)
            n, d_init = knn.graph.neighbors.shape
            d = ctx.degree(name)
            times = {}
            for flavour in ("rank", "distance"):
                config = GraphBuildConfig(
                    graph_degree=d,
                    metric=ctx.bundle(name).spec.metric,
                    reordering=flavour,
                )
                started = time.perf_counter()
                _, report = optimize_graph(knn, config)
                wall = time.perf_counter() - started
                simulated = gpu.optimize_time(
                    report.detour_checks, n, d,
                    dim=ctx.bundle(name).spec.dim,
                    distance_based=(flavour == "distance"),
                )
                times[flavour] = simulated
                rows.append([
                    name, flavour, f"{simulated * 1e3:.2f} ms",
                    f"{wall:.2f} s",
                    f"{report.distance_table_bytes / 1e6:.2f} MB",
                ])
            speedups[name] = times["distance"] / times["rank"]
        return rows, speedups

    rows, speedups = benchmark.pedantic(run, rounds=1, iterations=1)

    # The paper-scale memory check that reproduces the DEEP-100M OOM.
    # Optimization holds the dataset + the N x d_init initial graph; the
    # distance-based variant adds an equally-sized float distance table.
    memory_rows = []
    oom_seen = {}
    for name in ("deep-1m", "deep-10m", "deep-100m"):
        spec = REGISTRY[name]
        d_init = 2 * spec.graph_degree
        dataset_bytes = spec.original_size * spec.dim * 4
        graph_bytes = spec.original_size * d_init * 4
        table_bytes = spec.original_size * d_init * 4
        rank_fits = gpu.fits_in_memory(dataset_bytes + graph_bytes)
        dist_fits = gpu.fits_in_memory(dataset_bytes + graph_bytes + table_bytes)
        oom_seen[name] = (rank_fits, dist_fits)
        memory_rows.append([
            name,
            f"{dataset_bytes / 1e9:.1f} GB",
            f"{graph_bytes / 1e9:.1f} GB",
            f"{table_bytes / 1e9:.1f} GB",
            "ok" if rank_fits else "OUT OF MEMORY",
            "ok" if dist_fits else "OUT OF MEMORY",
        ])

    table = format_table(
        ["dataset", "reordering", "optimize (sim)", "optimize (python wall)",
         "distance table"],
        rows,
        title="Fig. 4: optimization time, rank- vs distance-based",
    )
    memory = format_table(
        ["dataset (paper scale)", "dataset", "kNN graph", "dist table",
         "rank-based", "distance-based"],
        memory_rows,
        title="Fig. 4 inset: A100-80GB memory feasibility at paper scale",
    )
    speedup_text = "\n".join(
        f"  {name}: distance-based / rank-based = {s:.2f}x"
        for name, s in speedups.items()
    )
    emit("fig4_opt_time", table + "\n\n" + memory + "\n\nspeedups:\n" + speedup_text)

    for name, s in speedups.items():
        assert 1.0 < s < 3.0, (
            f"rank-based must be faster on {name} by a paper-like factor (<=1.9x)"
        )
    # Paper: rank-based still ran on DEEP-100M; distance-based OOMed.
    rank_fits, dist_fits = oom_seen["deep-100m"]
    assert rank_fits and not dist_fits
