"""Extension bench: the single-query gap grows with dataset scale.

EXPERIMENTS.md notes that Fig. 14's 3.4–53x CAGRA-over-HNSW factor
compresses at bench scale because HNSW's per-query hop count shrinks with
N while CAGRA's multi-CTA critical path is nearly flat.  This bench
substantiates that claim: over the DEEP size ladder, HNSW's batch-1 cost
must grow faster than CAGRA's, i.e. the measured speedup must increase
with N — extrapolating toward the paper's regime.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_table
from repro.gpusim import CpuCostModel, GpuCostModel

SERIES = [("deep-1m", 1250), ("deep-10m", 2500), ("deep-100m", 5000)]
NUM_QUERIES = 15


def test_ext_single_query_scale_trend(ctx, benchmark):
    gpu = GpuCostModel()
    cpu = CpuCostModel()

    def run():
        rows = []
        speedups = []
        for name, scale in SERIES:
            bundle = ctx.bundle(name, scale=scale)
            index = ctx.cagra(name, scale=scale)
            hnsw = ctx.hnsw(name, scale=scale)
            queries = bundle.queries[:NUM_QUERIES]

            cagra_seconds = 0.0
            for i in range(NUM_QUERIES):
                result = index.search(
                    queries[i], 10, SearchConfig(itopk=64, algo="multi_cta", seed=i)
                )
                cagra_seconds += gpu.search_time(
                    result.report, index.dim, itopk=64
                ).seconds
            cagra_latency = cagra_seconds / NUM_QUERIES

            _, _, counters = hnsw.search(queries, 10, ef=64)
            hnsw_latency = cpu.search_time(
                counters.distance_computations // NUM_QUERIES,
                counters.hops // NUM_QUERIES,
                index.dim,
                batch_size=1,
            ).seconds

            speedup = hnsw_latency / cagra_latency
            speedups.append(speedup)
            rows.append([
                name, len(bundle.data),
                f"{cagra_latency * 1e6:.1f} us", f"{hnsw_latency * 1e6:.1f} us",
                f"{speedup:.2f}x",
            ])
        return rows, speedups

    rows, speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_scale_trend",
        format_table(
            ["dataset", "bench N", "CAGRA multi-CTA latency (sim)",
             "HNSW 1-thread latency (sim)", "CAGRA speedup"],
            rows,
            title="Extension: batch-1 CAGRA-over-HNSW gap vs dataset scale "
            "(the Fig. 14 factor grows with N)",
        ),
    )

    # The speedup must grow monotonically-ish with N.
    assert speedups[-1] > speedups[0]
    # CAGRA ahead at every size.
    assert min(speedups) > 1.0
