"""Fig. 15: construction-time scaling — CAGRA vs HNSW over DEEP sizes.

The DEEP-1M/10M/100M series is represented by a geometric size ladder of
the DEEP-like generator (the 1:10:100 ratio is kept; absolute sizes are
bench-scaled, as recorded in DESIGN.md §2).

Expected shape: both builders scale ~linearly with N, and CAGRA stays
~2x faster than HNSW (paper: 1.8–2.0x on this series).
"""

from conftest import emit

from repro.bench import format_table
from repro.gpusim import CpuCostModel, GpuCostModel

SERIES = [("deep-1m", 1250), ("deep-10m", 2500), ("deep-100m", 5000)]


def test_fig15_build_scaling(ctx, benchmark):
    gpu = GpuCostModel()
    cpu = CpuCostModel()

    def run():
        rows = []
        times = {}
        for name, scale in SERIES:
            bundle = ctx.bundle(name, scale=scale)
            dim = bundle.spec.dim
            knn = ctx.knn(name, scale=scale)
            index = ctx.cagra(name, scale=scale)
            n = len(bundle.data)

            cagra_s = gpu.knn_build_time(
                knn.distance_computations, dim,
                num_nodes=n, k=knn.graph.degree, iterations=knn.iterations,
            ) + gpu.optimize_time(
                index.build_report.optimize.detour_checks, n, ctx.degree(name)
            )
            hnsw = ctx.hnsw(name, scale=scale)
            hnsw_s = cpu.build_time(
                hnsw.build_stats.distance_computations, hnsw.build_stats.hops, dim
            )
            times[(name, "CAGRA")] = cagra_s
            times[(name, "HNSW")] = hnsw_s
            rows.append([name, n, f"{cagra_s * 1e3:.1f} ms", f"{hnsw_s * 1e3:.1f} ms",
                         f"{hnsw_s / cagra_s:.1f}x"])
        return rows, times

    rows, times = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig15_scaling_build",
        format_table(
            ["dataset", "bench N", "CAGRA build (sim)", "HNSW build (sim)",
             "HNSW / CAGRA"],
            rows,
            title="Fig. 15: construction-time scaling over the DEEP series "
            "(sizes bench-scaled 1:2:4 for the paper's 1:10:100)",
        ),
    )

    # CAGRA faster at every size.
    for name, _ in SERIES:
        assert times[(name, "HNSW")] > times[(name, "CAGRA")], name
    # ~Linear scaling: doubling N should not much more than double time.
    for method in ("CAGRA", "HNSW"):
        small = times[(SERIES[0][0], method)]
        large = times[(SERIES[-1][0], method)]
        growth = large / small
        assert 2.0 < growth < 12.0, (method, growth)  # 4x N -> ~4x time
