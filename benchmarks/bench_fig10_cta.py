"""Fig. 10: single-CTA vs multi-CTA, single-query and large-batch.

Both implementations sweep itopk on a DEEP-like and a GloVe-like dataset
at batch 1 (top row of the figure) and batch 10K (bottom row).

Expected shapes:
* batch 1 — multi-CTA's wall time stays nearly flat as itopk grows (the
  extra exploration runs on otherwise-idle SMs) while single-CTA's grows,
  so multi-CTA wins wherever meaningful exploration is needed;
* batch 10K — single-CTA wins at moderate recall; multi-CTA catches up
  when very high recall (large itopk) is required, especially on the
  harder dataset.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_curve_table, run_cagra_sweep

DATASETS = ["deep-1m", "glove-200"]
SWEEP = [16, 64, 256]


def test_fig10_single_vs_multi_cta(ctx, benchmark):
    def run():
        curves = []
        qps = {}
        for name in DATASETS:
            bundle = ctx.bundle(name)
            index = ctx.cagra(name)
            truth = ctx.truth(name)
            for batch in (1, 10_000):
                for algo in ("single_cta", "multi_cta"):
                    curve = run_cagra_sweep(
                        index, bundle.queries[:20], truth[:20], 10, SWEEP, batch,
                        SearchConfig(algo=algo),
                        method=f"{name}/b{batch}/{algo}",
                    )
                    curves.append(curve)
                    for point in curve.points:
                        qps[(name, batch, algo, point.param)] = point.qps
        return curves, qps

    curves, qps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig10_cta",
        format_curve_table(
            curves, title="Fig. 10: single- vs multi-CTA (batch 1 and 10K)"
        ),
    )

    for name in DATASETS:
        # Batch 1: multi-CTA degrades less as exploration (itopk) grows.
        single_growth = qps[(name, 1, "single_cta", 16)] / qps[(name, 1, "single_cta", 256)]
        multi_growth = qps[(name, 1, "multi_cta", 16)] / qps[(name, 1, "multi_cta", 256)]
        assert multi_growth < single_growth, name
        # Batch 1 at the largest itopk: multi-CTA is faster outright.
        assert (
            qps[(name, 1, "multi_cta", 256)] > qps[(name, 1, "single_cta", 256)]
        ), name
        # Batch 10K at moderate itopk: single-CTA wins (its shared-memory
        # pipeline amortizes perfectly over full waves).
        assert (
            qps[(name, 10_000, "single_cta", 16)] > qps[(name, 10_000, "multi_cta", 16)]
        ), name
    # Batch 10K at very high itopk on the harder dataset: the curves
    # cross — multi-CTA catches single-CTA (the paper's "higher recall is
    # required" case).  Single-CTA's lead collapses from >2.5x at itopk 16
    # to parity at 256.
    lead_16 = (
        qps[("glove-200", 10_000, "single_cta", 16)]
        / qps[("glove-200", 10_000, "multi_cta", 16)]
    )
    lead_256 = (
        qps[("glove-200", 10_000, "single_cta", 256)]
        / qps[("glove-200", 10_000, "multi_cta", 256)]
    )
    assert lead_256 < 1.1 < lead_16
