"""Fig. 14: single-query (online) search — CAGRA vs HNSW, FP32 + FP16.

Batch 1 — the use case where GPU batch methods traditionally lose to the
CPU (GGNN/GANNS are omitted, as in the paper).  CAGRA uses the multi-CTA
implementation the Fig. 7 rule dispatches at this batch size; HNSW runs
single-threaded (one query has no batch parallelism to mine).

Expected shape: CAGRA above HNSW at matched recall (paper: 3.4–53x at
95%), with the advantage growing as the recall target rises.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_curve_table, run_cagra_sweep, run_hnsw_sweep

DATASETS = ["sift-1m", "glove-200", "nytimes", "deep-1m"]
SWEEP = [16, 32, 64, 128]


def test_fig14_single_query(ctx, benchmark):
    def run():
        results = {}
        for name in DATASETS:
            bundle = ctx.bundle(name)
            truth = ctx.truth(name)
            queries = bundle.queries[:20]
            index = ctx.cagra(name)
            curves = [
                run_cagra_sweep(
                    index, queries, truth[:20], 10, SWEEP, 1,
                    SearchConfig(algo="multi_cta"), method="CAGRA (FP32)",
                ),
                run_cagra_sweep(
                    index, queries, truth[:20], 10, SWEEP, 1,
                    SearchConfig(algo="multi_cta"), dtype_bytes=2,
                    method="CAGRA (FP16)",
                ),
                run_hnsw_sweep(
                    ctx.hnsw(name), queries, truth[:20], 10, SWEEP, 1, threads=1
                ),
            ]
            results[name] = curves
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = [
        format_curve_table(curves, title=f"Fig. 14 [{name}]: batch 1, recall@10")
        for name, curves in results.items()
    ]
    emit("fig14_single_query", "\n\n".join(sections))

    for name, curves in results.items():
        by_name = {c.method: c for c in curves}
        cagra = by_name["CAGRA (FP32)"].qps_at_recall(0.95)
        hnsw = by_name["HNSW"].qps_at_recall(0.95)
        assert cagra is not None, name
        # CAGRA wins at matched recall on every dataset.  The magnitude
        # compresses at bench scale: HNSW's hop count shrinks with N
        # (log-ish) while CAGRA's multi-CTA critical path is nearly flat,
        # so the paper's 3.4-53x at 1M points becomes ~1.5-2x at 2.5k —
        # see EXPERIMENTS.md.
        if hnsw:
            assert cagra / hnsw > 1.3, (name, cagra / hnsw)
