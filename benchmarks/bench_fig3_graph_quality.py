"""Fig. 3: 2-hop node counts and strong CC across optimization stages.

For each dataset: a plain pruned k-NN graph, reorder-only, reverse-only,
and the fully optimized CAGRA graph, all derived from one shared initial
NN-descent graph (exactly the paper's ablation).

Expected shape: both optimizations raise the 2-hop count, reordering more
than reverse edges; reverse edges collapse the strong CC count toward 1.
"""

import pytest
from conftest import emit

from repro import CagraIndex, GraphBuildConfig
from repro.bench import format_table
from repro.core.graph import FixedDegreeGraph
from repro.core.metrics import average_two_hop_count, strong_connected_components
from repro.core.optimize import prune_to_degree

DATASETS = ["sift-1m", "glove-200", "nytimes", "deep-1m"]


def _variants(ctx, name):
    bundle = ctx.bundle(name)
    knn = ctx.knn(name)
    d = ctx.degree(name)
    metric = bundle.spec.metric
    return {
        "knn": FixedDegreeGraph(prune_to_degree(knn.graph.neighbors, d)),
        "reorder-only": CagraIndex.from_knn_result(
            bundle.data, knn,
            GraphBuildConfig(graph_degree=d, metric=metric, add_reverse_edges=False),
        ).graph,
        "reverse-only": CagraIndex.from_knn_result(
            bundle.data, knn,
            GraphBuildConfig(graph_degree=d, metric=metric, reordering="none"),
        ).graph,
        "full": CagraIndex.from_knn_result(
            bundle.data, knn, GraphBuildConfig(graph_degree=d, metric=metric)
        ).graph,
    }


def test_fig3_graph_quality(ctx, benchmark):
    def run():
        rows = []
        metrics = {}
        for name in DATASETS:
            d = ctx.degree(name)
            max_2hop = d + d * d
            for variant, graph in _variants(ctx, name).items():
                two_hop = average_two_hop_count(graph, sample=400, seed=0)
                scc = strong_connected_components(graph)
                rows.append([name, variant, d, f"{two_hop:.1f}",
                             f"{two_hop / max_2hop:.0%}", scc])
                metrics[(name, variant)] = (two_hop, scc)
        return rows, metrics

    rows, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "graph", "degree", "avg 2-hop", "of max", "strong CC"],
        rows,
        title="Fig. 3: 2-hop node count and strong CC by optimization stage",
    )
    emit("fig3_graph_quality", table)

    for name in DATASETS:
        knn_2hop, knn_scc = metrics[(name, "knn")]
        full_2hop, full_scc = metrics[(name, "full")]
        reorder_2hop, _ = metrics[(name, "reorder-only")]
        _, reverse_scc = metrics[(name, "reverse-only")]
        # Shape assertions from the paper.
        assert full_2hop > knn_2hop, name
        assert reorder_2hop > knn_2hop, name
        assert full_scc <= knn_scc, name
        assert reverse_scc <= knn_scc, name


@pytest.mark.parametrize("name", DATASETS)
def test_fig3_full_graph_is_strongly_connected_or_close(ctx, name):
    full = _variants(ctx, name)["full"]
    assert strong_connected_components(full) <= 3
