"""Fig. 8: the effect of warp-splitting team size on throughput.

The same searches are priced with every team size in {2, 4, 8, 16, 32}
on a small-dimension dataset (DEEP-like, 96) and a large-dimension one
(GIST-like, 960).  Recall is team-size-independent (the split changes only
the kernel mapping), matching the paper's flat recall axis.

Expected shape: dim 96 peaks at team 4-8 with a register-pressure penalty
at 2; dim 960 peaks at 32 with severe degradation at small teams.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_table, scale_report
from repro.gpusim import GpuCostModel

DATASETS = ["deep-1m", "gist-1m"]
TEAMS = [2, 4, 8, 16, 32]
BATCH = 10_000
ITOPK = 64


def test_fig8_team_size(ctx, benchmark):
    gpu = GpuCostModel()

    def run():
        rows = []
        qps = {}
        for name in DATASETS:
            bundle = ctx.bundle(name)
            index = ctx.cagra(name)
            result = index.search(
                bundle.queries, 10, SearchConfig(itopk=ITOPK, algo="single_cta")
            )
            report = scale_report(result.report, BATCH / len(bundle.queries))
            for team in TEAMS:
                timing = gpu.search_time(
                    report, index.dim, team_size=team, itopk=ITOPK
                )
                qps[(name, team)] = timing.qps(BATCH)
                rows.append([
                    name, bundle.spec.dim, team,
                    f"{timing.qps(BATCH):,.0f}",
                    int(timing.breakdown["registers"]),
                    timing.waves,
                ])
        return rows, qps

    rows, qps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig8_team_size",
        format_table(
            ["dataset", "dim", "team size", "QPS (sim)", "regs/thread", "waves"],
            rows,
            title=f"Fig. 8: team-size sweep (batch {BATCH:,}, itopk {ITOPK})",
        ),
    )

    deep = {t: qps[("deep-1m", t)] for t in TEAMS}
    gist = {t: qps[("gist-1m", t)] for t in TEAMS}
    # Paper shapes: DEEP peaks at 4 or 8; team 2 is worse than the peak.
    assert max(deep, key=deep.get) in (4, 8)
    assert deep[2] < max(deep.values())
    # GIST peaks at the largest teams (paper: 32; our bandwidth model
    # ties 16 and 32 within a few percent); small teams degrade severely.
    assert max(gist, key=gist.get) in (16, 32)
    assert gist[32] >= 0.9 * max(gist.values())
    assert gist[32] > 3 * gist[2]
