"""Extension bench: parallel shard execution (repro.parallel).

The sharding bench (bench_ext_sharding) prices concurrency with the GPU
cost model; this bench *runs* it — the same 4-shard build and search
executed serially and on 2- / 4-worker process pools, with three
measurements per configuration:

* measured wall time on this host (honest: bounded by physical cores,
  reported alongside the core count);
* the critical path — the slowest shard's own time, i.e. the wall time
  a host with one core per worker would approach (the paper's multi-GPU
  claim, where each shard owns a device);
* bitwise identity of results against the serial run (the determinism
  contract of repro.parallel).

Speedup is reported as serial-sum / critical-path: the parallel section
of Amdahl's law, independent of how oversubscribed this machine is.  The
measured-wall speedup assertion only arms on hosts with >= 4 usable
cores.
"""

from conftest import emit
import time

import numpy as np

from repro import GraphBuildConfig, SearchConfig, ShardedCagraIndex
from repro.bench import format_table
from repro.parallel import ParallelConfig, available_cpus

DATASET_SCALE = 1600
DIM = 64
NUM_SHARDS = 4
NUM_QUERIES = 32


def _makespan(times, workers):
    """LPT schedule makespan of per-shard times over ``workers`` lanes."""
    lanes = [0.0] * workers
    for t in sorted(times, reverse=True):
        lanes[lanes.index(min(lanes))] += t
    return max(lanes)


def test_ext_parallel_shards(ctx, benchmark):
    rng = np.random.default_rng(42)
    data = rng.standard_normal((DATASET_SCALE, DIM)).astype(np.float32)
    queries = rng.standard_normal((NUM_QUERIES, DIM)).astype(np.float32)
    build_config = GraphBuildConfig(graph_degree=16, seed=7)
    search_config = SearchConfig(itopk=64, seed=3)
    cpus = available_cpus()

    def run():
        configs = [
            ("serial", ParallelConfig(num_workers=1, backend="serial")),
            ("process x2", ParallelConfig(num_workers=2, backend="process")),
            ("process x4", ParallelConfig(num_workers=4, backend="process")),
        ]
        measurements = {}
        baseline = None
        for label, parallel in configs:
            started = time.perf_counter()
            index = ShardedCagraIndex.build(
                data, NUM_SHARDS, build_config, parallel=parallel
            )
            build_wall = time.perf_counter() - started
            shard_build = [s.build_report.total_seconds for s in index.shards]

            started = time.perf_counter()
            result = index.search(queries, 10, search_config)
            search_wall = time.perf_counter() - started

            if baseline is None:
                baseline = (index, result)
            else:
                # Determinism contract: bitwise-identical graphs + results.
                for ours, ref in zip(index.shards, baseline[0].shards):
                    np.testing.assert_array_equal(
                        ours.graph.neighbors, ref.graph.neighbors
                    )
                np.testing.assert_array_equal(result.indices, baseline[1].indices)
                np.testing.assert_array_equal(result.distances, baseline[1].distances)

            measurements[label] = {
                "workers": parallel.resolved_workers(NUM_SHARDS),
                "build_wall": build_wall,
                "search_wall": search_wall,
                "build_shard_times": shard_build,
                "search_shard_times": list(result.shard_seconds),
            }
            index.close()

        # The critical path models a host with one core per worker (the
        # paper's one-GPU-per-shard setting): the serial run's clean,
        # uncontended per-shard times laid out over w worker lanes.  Using
        # each run's own shard times would bake this host's core
        # oversubscription into the model.
        serial = measurements["serial"]
        for m in measurements.values():
            m["build_critical"] = _makespan(serial["build_shard_times"], m["workers"])
            m["search_critical"] = _makespan(serial["search_shard_times"], m["workers"])
            m["build_sum"] = sum(serial["build_shard_times"])
            m["search_sum"] = sum(serial["search_shard_times"])
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)

    serial = measurements["serial"]
    rows = []
    for label, m in measurements.items():
        build_speedup = serial["build_sum"] / m["build_critical"]
        search_speedup = serial["search_sum"] / m["search_critical"]
        rows.append([
            label,
            f"{m['build_wall']:.2f} s",
            f"{m['build_critical']:.2f} s",
            f"{build_speedup:.2f}x",
            f"{m['search_wall'] * 1e3:.1f} ms",
            f"{search_speedup:.2f}x",
        ])
    emit(
        "ext_parallel_shards",
        format_table(
            ["executor", "build wall", "build critical path",
             "build speedup", "search wall", "search speedup"],
            rows,
            title=(
                f"Extension: parallel shard execution — {NUM_SHARDS} shards, "
                f"n={DATASET_SCALE}, host has {cpus} usable core(s); speedup = "
                "serial shard-time sum / critical path (slowest worker lane)"
            ),
        ),
    )

    x4 = measurements["process x4"]
    # 4 near-equal shards across 4 workers: the parallel section's
    # critical path must beat the serial sum by >= 2x.
    assert serial["build_sum"] / x4["build_critical"] >= 2.0
    assert serial["search_sum"] / x4["search_critical"] >= 2.0
    if cpus >= 4:
        # Enough physical lanes: the modeled speedup must show up on the
        # wall clock too (allowing pool + shared-memory overhead).
        assert serial["build_wall"] / x4["build_wall"] >= 2.0
