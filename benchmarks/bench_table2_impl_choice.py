"""Table II + Fig. 7: the single-CTA / multi-CTA implementation matrix.

Regenerates the configuration summary (use case, CTA mapping, hash table
location and management) by interrogating the actual implementations, and
benchmarks the dispatch rule across the (batch, itopk) plane.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_table
from repro.core.config import choose_algo


def test_table2_configuration_matrix(ctx, benchmark):
    index = ctx.cagra("deep-1m")
    bundle = ctx.bundle("deep-1m")

    def run_both():
        single = index.search(
            bundle.queries[:4], 10, SearchConfig(itopk=64, algo="single_cta")
        )
        multi = index.search(
            bundle.queries[:4], 10, SearchConfig(itopk=64, algo="multi_cta")
        )
        return single.report, multi.report

    single, multi = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        ["use case", "large-batch", "small-batch / higher recall"],
        ["CTAs per query", "1", f"{multi.cta_count // 4} (itopk=64)"],
        ["hash table location",
         "shared memory" if single.hash_in_shared else "device memory",
         "shared memory" if multi.hash_in_shared else "device memory"],
        ["hash management",
         "forgettable" if single.hash_resets else "standard",
         "forgettable" if multi.hash_resets else "standard"],
    ]
    table = format_table(
        ["", "single-CTA", "multi-CTA"], rows,
        title="Table II: implementation summary (from live CostReports)",
    )

    # Fig. 7 dispatch rule across the (batch, itopk) plane.
    dispatch_rows = []
    for batch in (1, 32, 107, 108, 10_000):
        for itopk in (64, 512, 513):
            algo = choose_algo(SearchConfig(itopk=itopk), batch, num_sms=108)
            dispatch_rows.append([batch, itopk, algo])
    dispatch = format_table(
        ["batch", "itopk", "chosen implementation"], dispatch_rows,
        title="Fig. 7: dispatch rule (b_T = 108 SMs, M_T = 512)",
    )
    emit("table2_impl_choice", table + "\n\n" + dispatch)

    assert single.hash_in_shared and single.hash_resets > 0
    assert not multi.hash_in_shared and multi.hash_resets == 0
    assert multi.cta_count > 4
