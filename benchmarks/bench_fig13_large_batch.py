"""Fig. 13: large-batch search — all methods, four datasets, FP32 + FP16.

Batch 10K, recall@10.  CAGRA single-CTA (FP32 and FP16 storage), GGNN and
GANNS on the GPU model; HNSW and NSSG (searched with the HNSW-style
multi-threaded bottom-layer searcher, best thread count) on the CPU model.

Expected shape: CAGRA above everything; tens-of-x over the CPU methods in
the 90–95% recall band (paper: 33–77x); several-x over the GPU baselines
(paper: 3.8–8.8x); FP16 at or above FP32.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import (
    format_curve_table,
    run_beam_sweep_cpu,
    run_beam_sweep_gpu,
    run_cagra_sweep,
    run_hnsw_sweep,
    speedup_at_recall,
)

DATASETS = ["sift-1m", "glove-200", "nytimes", "deep-1m"]
BATCH = 10_000
SWEEP = [10, 16, 32, 64, 128]
BEAMS = [16, 32, 64, 128]


def _curves_for(ctx, name):
    bundle = ctx.bundle(name)
    truth = ctx.truth(name)
    dim = bundle.spec.dim
    metric = bundle.spec.metric
    degree = ctx.degree(name)
    curves = []

    index = ctx.cagra(name)
    curves.append(run_cagra_sweep(
        index, bundle.queries, truth, 10, SWEEP, BATCH,
        SearchConfig(algo="single_cta"), method="CAGRA (FP32)",
    ))
    curves.append(run_cagra_sweep(
        index, bundle.queries, truth, 10, SWEEP, BATCH,
        SearchConfig(algo="single_cta"), dtype_bytes=2, method="CAGRA (FP16)",
    ))

    ggnn = ctx.ggnn(name)
    curves.append(run_beam_sweep_gpu(
        "GGNN", lambda q, k, b: ggnn.search(q, k, beam_width=b),
        bundle.queries, truth, 10, BEAMS, BATCH, dim=dim, degree=degree,
    ))
    ganns = ctx.ganns(name)
    curves.append(run_beam_sweep_gpu(
        "GANNS", lambda q, k, b: ganns.search(q, k, beam_width=b),
        bundle.queries, truth, 10, BEAMS, BATCH, dim=dim, degree=degree,
    ))

    hnsw = ctx.hnsw(name)
    curves.append(run_hnsw_sweep(hnsw, bundle.queries, truth, 10, SWEEP, BATCH))

    nssg = ctx.nssg(name)
    curves.append(run_beam_sweep_cpu(
        "NSSG", lambda q, k, b: nssg.search(q, k, beam_width=b, num_seeds=16),
        bundle.queries, truth, 10, BEAMS, BATCH, dim=dim,
    ))
    return curves


def test_fig13_large_batch(ctx, benchmark):
    def run():
        return {name: _curves_for(ctx, name) for name in DATASETS}

    all_curves = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for name, curves in all_curves.items():
        sections.append(format_curve_table(
            curves, title=f"Fig. 13 [{name}]: batch {BATCH:,}, recall@10"
        ))
        sections.append(speedup_at_recall(curves, "HNSW", [0.90, 0.95]))
    emit("fig13_large_batch", "\n\n".join(sections))

    for name, curves in all_curves.items():
        by_name = {c.method: c for c in curves}
        target = 0.90
        cagra = by_name["CAGRA (FP32)"].qps_at_recall(target)
        hnsw = by_name["HNSW"].qps_at_recall(target)
        nssg = by_name["NSSG"].qps_at_recall(target)
        ggnn = by_name["GGNN"].qps_at_recall(target)
        ganns = by_name["GANNS"].qps_at_recall(target)
        assert cagra is not None, name
        # CPU methods: roughly an order of magnitude or more behind.
        # (Paper: 33-77x at 1M scale; at bench scale HNSW needs relatively
        # fewer hops, compressing the ratio — see EXPERIMENTS.md.)
        if hnsw:
            assert cagra / hnsw > 8, (name, cagra / hnsw)
        if nssg:
            assert cagra / nssg > 8, (name, cagra / nssg)
        # GPU baselines: a small-integer factor behind.
        if ggnn:
            assert cagra / ggnn > 1.5, (name, cagra / ggnn)
        if ganns:
            assert cagra / ganns > 1.5, (name, cagra / ganns)
        # FP16 compatible-or-better at matched recall.
        fp16 = by_name["CAGRA (FP16)"].qps_at_recall(target)
        if fp16 and cagra:
            assert fp16 >= cagra * 0.95, name
