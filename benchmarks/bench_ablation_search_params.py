"""Ablations: search-side knobs.

* forgettable hash geometry — table size (2^8..2^13, the paper's stated
  range) x reset interval (1..4): recomputation overhead vs recall;
* search width ``p`` — parents expanded per iteration (the paper sets
  ``p=1`` to maximize single-CTA throughput);
* random-initialization width — how many random seeds step ⓪ draws.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_table, run_cagra_sweep
from repro.core.config import HashTableConfig
from repro.core.metrics import recall
from repro.gpusim import GpuCostModel

DATASET = "deep-1m"
BATCH = 10_000


def test_ablation_forgettable_geometry(ctx, benchmark):
    bundle = ctx.bundle(DATASET)
    truth = ctx.truth(DATASET)
    index = ctx.cagra(DATASET)
    gpu = GpuCostModel()

    def run():
        rows = []
        stats = {}
        for log2_size in (8, 11, 13):
            for interval in (1, 2, 4):
                config = SearchConfig(
                    itopk=64, algo="single_cta",
                    hash_table=HashTableConfig(
                        kind="forgettable", log2_size=log2_size,
                        reset_interval=interval,
                    ),
                )
                result = index.search(bundle.queries, 10, config)
                r = recall(result.indices, truth)
                recompute = (
                    result.report.recomputed_distances
                    / max(1, result.report.distance_computations)
                )
                stats[(log2_size, interval)] = (r, recompute)
                rows.append([
                    f"2^{log2_size}", interval, f"{r:.4f}", f"{recompute:.1%}",
                    result.report.distance_computations // len(bundle.queries),
                ])
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_hash_geometry",
        format_table(
            ["table size", "reset interval", "recall@10", "recomputed",
             "dist/query"],
            rows,
            title=f"Ablation: forgettable hash geometry on {DATASET}",
        ),
    )
    # No catastrophic recall loss anywhere in the paper's parameter range.
    for (log2_size, interval), (r, _) in stats.items():
        assert r > 0.85, (log2_size, interval)
    # Longer reset intervals recompute less.
    assert stats[(11, 4)][1] <= stats[(11, 1)][1]


def test_ablation_search_width(ctx, benchmark):
    bundle = ctx.bundle(DATASET)
    truth = ctx.truth(DATASET)
    index = ctx.cagra(DATASET)

    def run():
        curves = {}
        for p in (1, 2, 4):
            curves[p] = run_cagra_sweep(
                index, bundle.queries, truth, 10, [32, 64], BATCH,
                SearchConfig(algo="single_cta", search_width=p),
                method=f"p={p}",
            )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [curve.method, point.param, f"{point.recall:.4f}", f"{point.qps:,.0f}"]
        for curve in curves.values()
        for point in curve.points
    ]
    emit(
        "ablation_search_width",
        format_table(
            ["search width", "itopk", "recall@10", "QPS (sim)"],
            rows,
            title=f"Ablation: search width p on {DATASET} (batch {BATCH:,})",
        ),
    )
    # p=1 maximizes throughput at matched itopk (the paper's default).
    assert curves[1].points[0].qps >= curves[4].points[0].qps


def test_ablation_random_init_width(ctx, benchmark):
    """Wider random initialization (larger p only for step ⓪ via
    search_width) costs distance computations; the graph optimization is
    what keeps narrow initialization sufficient."""
    bundle = ctx.bundle(DATASET)
    truth = ctx.truth(DATASET)
    index = ctx.cagra(DATASET)

    def run():
        rows = []
        recalls = {}
        for width_label, config in (
            ("p*d random (default)", SearchConfig(itopk=64, algo="single_cta")),
            ("4x wider init", SearchConfig(itopk=64, algo="single_cta", search_width=4)),
        ):
            result = index.search(bundle.queries, 10, config)
            r = recall(result.indices, truth)
            recalls[width_label] = r
            rows.append([
                width_label, f"{r:.4f}",
                result.report.random_inits // len(bundle.queries),
                result.report.distance_computations // len(bundle.queries),
            ])
        return rows, recalls

    rows, recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_init_width",
        format_table(
            ["initialization", "recall@10", "random seeds/query", "dist/query"],
            rows,
            title=f"Ablation: random-initialization width on {DATASET}",
        ),
    )
    # The narrow default is already sufficient (within noise of 4x).
    assert recalls["p*d random (default)"] >= recalls["4x wider init"] - 0.03
