"""Extension bench: online serving — arrival rate × max_wait sweep.

Like :mod:`bench_ext_fast_path`, this measures *real* Python wall time,
not simulated testbed time: the quantity of interest is the latency /
throughput trade-off of the dynamic micro-batching scheduler itself.
Higher ``max_wait_ms`` coalesces larger batches (more single-CTA
throughput, per Fig. 13) at the cost of added queueing latency; at low
arrival rates the scheduler degrades to batch-of-1 flushes on the
multi-CTA path (Table II).  The sweep makes that trade-off visible as a
table over (arrival rate, max_wait).
"""

import pytest
from conftest import emit

from repro import SearchConfig
from repro.bench import format_table
from repro.core.metrics import recall
from repro.serve import CagraServer, ServeConfig, run_open_loop

DATASET = "deep-1m"
RATES_QPS = (150.0, 400.0, 1000.0)
MAX_WAITS_MS = (1.0, 4.0, 16.0)
NUM_REQUESTS = 120
SEED = 11


@pytest.fixture(scope="module")
def setup(ctx):
    return ctx.cagra(DATASET), ctx.bundle(DATASET), ctx.truth(DATASET)


def _run_cell(index, queries, rate, max_wait_ms):
    server = CagraServer(
        index,
        ServeConfig(
            max_batch=32,
            max_wait_ms=max_wait_ms,
            queue_capacity=4096,
            cache_capacity=0,  # measure the scheduler, not the cache
        ),
        search_config=SearchConfig(itopk=64, seed=SEED),
    )
    with server:
        report = run_open_loop(
            server, queries, rate_qps=rate, num_requests=NUM_REQUESTS, seed=SEED
        )
    return report, server.stats()


def test_serving_rate_wait_sweep(setup, benchmark):
    """Latency/throughput curves over arrival rate × max_wait_ms."""
    index, bundle, truth = setup

    def run():
        rows = []
        for max_wait_ms in MAX_WAITS_MS:
            for rate in RATES_QPS:
                report, stats = _run_cell(index, bundle.queries, rate, max_wait_ms)
                assert report.failed == 0 and report.completed == NUM_REQUESTS
                rows.append([
                    f"{max_wait_ms:.0f}",
                    f"{rate:,.0f}",
                    f"{report.achieved_qps:,.0f}",
                    f"{stats.mean_batch_size:.1f}",
                    stats.single_query_batches,
                    f"{report.latency_percentile_ms(50):.2f}",
                    f"{report.latency_percentile_ms(95):.2f}",
                    f"{report.latency_percentile_ms(99):.2f}",
                ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_serving",
        format_table(
            ["max_wait (ms)", "offered qps", "achieved qps", "mean batch",
             "multi-CTA flushes", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
            rows,
            title=(
                f"Extension: online serving sweep on {DATASET} "
                f"({NUM_REQUESTS} Poisson requests/cell, max_batch 32, "
                f"itopk 64, real wall time)"
            ),
        ),
    )


def test_serving_recall_matches_offline(setup, benchmark):
    """Served results must score the same recall as the offline fast path."""
    index, bundle, truth = setup

    def run():
        report, _ = _run_cell(index, bundle.queries, rate=400.0, max_wait_ms=4.0)
        import numpy as np

        rows = np.array([row for row, _ in report.results], dtype=np.int64)
        found = np.stack([ids for _, ids in report.results])
        served = recall(found, truth[rows])
        offline = recall(
            index.search_fast(
                bundle.queries, 10, config=SearchConfig(itopk=64, seed=SEED)
            ).indices,
            truth,
        )
        return served, offline

    served, offline = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(served - offline) <= 0.01
