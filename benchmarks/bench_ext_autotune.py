"""Extension bench: search-parameter auto-tuning — default vs tuned QPS.

The paper hand-picks ``itopk``/``search_width`` per dataset (Table I/V);
``repro.tune`` automates the pick.  This bench runs the tuner on a
synthetic dataset, then compares the library default (``itopk=64``,
``search_width=1``) against the tuned operating point at the same recall
target: genuine recall from the brute-force oracle, QPS from the GPU
cost model at the simulated launch batch (the same pricing pipeline as
the Fig. 10/13 benches).  Since profile schema v2 the sweep also covers
``team_size`` (threads per distance computation, Fig. 8), and the entry
records the extra QPS headroom that axis buys over the v1 grid.

Alongside the human-readable table in ``benchmarks/results/``, the run
appends a machine-readable entry to ``BENCH_search.json`` at the repo
root (the search-side perf trajectory, companion to
``BENCH_streaming.json``): re-running on a later checkout appends a new
entry, so tuned-vs-default headroom is tracked across PRs.
"""

import json
import os
from datetime import date

import pytest
from conftest import emit

from repro import CagraIndex, GraphBuildConfig
from repro.bench import format_table
from repro.datasets.synthetic import clustered_gaussian, make_queries
from repro.tune import TuneGrid, tune_search_params

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_search.json"
)

ROWS = 1500
DIM = 32
DEGREE = 16
NUM_QUERIES = 64
K = 10
SEED = 31
RECALL_TARGET = 0.95
BATCH = 10_000
# Schema-v2 sweep: team_size joins the grid (0 = auto from dim; 8/32
# bracket the auto pick so per-team load waste shows in the pricing).
GRID = TuneGrid(
    itopk_values=(16, 32, 64, 96, 128),
    search_widths=(1, 2, 4),
    team_size_values=(0, 8, 32),
)


@pytest.fixture(scope="module")
def tune_setup():
    data = clustered_gaussian(ROWS, DIM, seed=SEED)
    index = CagraIndex.build(
        data, GraphBuildConfig(graph_degree=DEGREE, seed=SEED)
    )
    queries = make_queries(data, NUM_QUERIES, seed=SEED + 1)
    return index, queries


def test_autotune_default_vs_tuned(tune_setup, benchmark):
    """Tuned point must meet the recall target at >= the default's QPS."""
    index, queries = tune_setup

    def run():
        return tune_search_params(
            index,
            k=K,
            recall_target=RECALL_TARGET,
            queries=queries,
            grid=GRID,
            batch_size=BATCH,
            created=date.today().isoformat(),
        )

    profile = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for point in profile.sweep:
        label = ""
        if point == profile.chosen:
            label = "<= tuned"
        elif point == profile.baseline:
            label = "<= default"
        rows.append([
            point.itopk, point.search_width, point.max_iterations or "auto",
            point.team_size or "auto",
            f"{point.recall:.4f}", f"{point.qps:,.0f}",
            f"{point.distance_computations_per_query:.0f}", label,
        ])
    emit(
        "ext_autotune",
        format_table(
            ["itopk", "width", "max_it", "team", f"recall@{K}", "QPS (sim)",
             "dist/query", ""],
            rows,
            title=(
                f"Extension: auto-tuned search parameters "
                f"({ROWS}-row degree-{DEGREE} index, {NUM_QUERIES} queries, "
                f"recall target {RECALL_TARGET}, simulated batch {BATCH})"
            ),
        )
        + f"\ntuned/default QPS at recall>={RECALL_TARGET}: "
        f"{profile.speedup():.2f}x",
    )

    def cell(point):
        return {
            "itopk": point.itopk,
            "search_width": point.search_width,
            "max_iterations": point.max_iterations,
            "team_size": point.team_size,
            "recall": round(point.recall, 4),
            "qps": round(point.qps),
            "distance_computations_per_query": round(
                point.distance_computations_per_query, 1
            ),
        }

    entry = {
        "recorded": date.today().isoformat(),
        "bench": "ext_autotune",
        "config": {
            "rows": ROWS, "dim": DIM, "degree": DEGREE, "k": K,
            "num_queries": NUM_QUERIES, "seed": SEED,
            "recall_target": RECALL_TARGET, "batch": BATCH,
            "itopk_grid": list(GRID.itopk_values),
            "width_grid": list(GRID.search_widths),
            "team_grid": list(GRID.team_size_values),
        },
        "cells": {
            "default": cell(profile.baseline),
            "tuned": cell(profile.chosen),
        },
        "costs": {
            "tuned_over_default_qps": round(profile.speedup(), 3),
            # Headroom of the v2 team_size axis: tuned QPS over the best
            # point constrained to team_size=auto (the v1 grid).
            "team_size_headroom_qps": round(
                profile.chosen.qps
                / max(p.qps for p in profile.sweep if p.team_size == 0),
                3,
            ),
            "meets_target": profile.meets_target,
            "grid_points": len(profile.sweep),
        },
    }
    trajectory = {"schema": 1, "entries": []}
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
            trajectory = json.load(handle)
    trajectory["entries"].append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Acceptance: the tuned config meets the recall target with at least
    # the default's QPS (the default is on the grid, so this can't lose).
    assert profile.meets_target
    assert profile.chosen.recall >= RECALL_TARGET
    assert profile.chosen.qps >= profile.baseline.qps
