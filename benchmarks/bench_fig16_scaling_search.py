"""Fig. 16: search-performance scaling — CAGRA vs HNSW over DEEP sizes,
recall@10 and recall@100, batch 10K.

Expected shape: as N grows, recall at a fixed search budget declines only
slightly and similarly for both methods, and CAGRA's throughput advantage
persists at every size.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_curve_table, run_cagra_sweep, run_hnsw_sweep

SERIES = [("deep-1m", 1250), ("deep-10m", 2500), ("deep-100m", 5000)]
BATCH = 10_000


def test_fig16_search_scaling(ctx, benchmark):
    def run():
        results = {}
        for k, sweep in ((10, [16, 32, 64]), (100, [128, 256])):
            for name, scale in SERIES:
                bundle = ctx.bundle(name, scale=scale)
                truth = ctx.truth(name, k=k, scale=scale)
                index = ctx.cagra(name, scale=scale)
                hnsw = ctx.hnsw(name, scale=scale)
                curves = [
                    run_cagra_sweep(
                        index, bundle.queries, truth, k, sweep, BATCH,
                        SearchConfig(algo="single_cta"),
                        method=f"CAGRA@{k}/{name}",
                    ),
                    run_hnsw_sweep(
                        hnsw, bundle.queries, truth, k, sweep, BATCH,
                        method=f"HNSW@{k}/{name}",
                    ),
                ]
                results[(k, name)] = curves
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = []
    for (k, name), curves in results.items():
        sections.append(format_curve_table(
            curves, title=f"Fig. 16 [{name}] recall@{k}, batch {BATCH:,}"
        ))
    emit("fig16_scaling_search", "\n\n".join(sections))

    for k in (10, 100):
        recalls = []
        for name, _ in SERIES:
            cagra, hnsw = results[(k, name)]
            recalls.append(cagra.max_recall())
            # CAGRA's throughput edge persists at every size.
            best_cagra = max(p.qps for p in cagra.points)
            best_hnsw = max(p.qps for p in hnsw.points)
            assert best_cagra > 3 * best_hnsw, (k, name)
        # Recall declines only gently with dataset size.
        assert recalls[-1] > recalls[0] - 0.15, (k, recalls)
