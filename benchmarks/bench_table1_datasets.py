"""Table I: the dataset roster.

Regenerates the paper's dataset table (dim, N, dtype, CAGRA degree) side
by side with this reproduction's scaled synthetic substitutes, and
benchmarks dataset generation itself.
"""

from conftest import BENCH_SCALES, emit

from repro.bench import format_table
from repro.datasets import DATASETS, load_dataset


def _rows():
    rows = []
    for spec in DATASETS.values():
        rows.append([
            spec.name,
            spec.dim,
            f"{spec.original_size:,}",
            "float",
            spec.graph_degree,
            f"{BENCH_SCALES[spec.name]:,}",
            spec.metric,
            spec.hardness,
        ])
    return rows


def test_table1_dataset_roster(benchmark):
    def generate_all():
        for name in DATASETS:
            load_dataset(name, scale=500, num_queries=4)
        return True

    assert benchmark.pedantic(generate_all, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "dim (n)", "paper N", "dtype", "degree (d)",
         "bench N", "metric", "hardness"],
        _rows(),
        title="Table I: datasets (paper roster -> synthetic substitutes)",
    )
    emit("table1_datasets", table)


def test_table1_shapes_match_spec(ctx):
    for name, spec in DATASETS.items():
        bundle = ctx.bundle(name, scale=300)
        assert bundle.data.shape == (300, spec.dim)
        assert bundle.data.dtype.name == "float32"
