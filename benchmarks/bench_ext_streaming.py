"""Extension bench: streaming ingest — freshness strategy break-even.

A mutable index has three ways to absorb a write burst:

(a) **memtable only** — leave the rows in the exact brute-force segment
    (zero maintenance, but every search pays an extra exact scan);
(b) **incremental repair** — fold the memtable through
    ``CagraIndex.extend`` (cost grows with the batch);
(c) **full rebuild** — rebuild the graph from the live rows (cost grows
    with the *total* size, amortizes any amount of churn).

This bench measures real Python wall time: per-query search p95 and
recall-vs-live-oracle after absorbing increasing write-burst sizes under
each strategy, plus the measured per-row costs the
:class:`~repro.stream.policy.StalenessPolicy` feeds on.  The break-even
burst size (where a full rebuild starts beating repair,
``live_rows * c_build / c_extend``) is derived from those measurements
and recorded — the same arithmetic the policy runs online.

Alongside the human-readable table in ``benchmarks/results/``, the run
appends a machine-readable entry to ``BENCH_streaming.json`` at the repo
root — the first perf-trajectory file (ROADMAP item 4 asks for these):
re-running the bench on a later checkout appends a new entry, so the
cost of the streaming layer is tracked across PRs.
"""

import json
import os
import time
from datetime import date

import numpy as np
import pytest
from conftest import emit

from repro import CagraIndex, GraphBuildConfig
from repro.api import BruteForceIndex
from repro.bench import format_table
from repro.core.metrics import recall
from repro.datasets.synthetic import clustered_gaussian, make_queries
from repro.stream import CostModel, MutableIndex, StalenessPolicy

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_streaming.json"
)

BASE_ROWS = 600
DIM = 32
DEGREE = 16
NUM_QUERIES = 40
K = 10
SEED = 23
#: Write-burst sizes absorbed before measuring (rows inserted; one
#: quarter of each burst is deleted again to exercise tombstones).
BURSTS = (16, 64, 160)
MODES = ("memtable", "incremental", "full")


@pytest.fixture(scope="module")
def stream_setup():
    data = clustered_gaussian(BASE_ROWS + max(BURSTS), DIM, seed=SEED)
    base = CagraIndex.build(
        data[:BASE_ROWS], GraphBuildConfig(graph_degree=DEGREE, seed=SEED)
    )
    queries = make_queries(data[:BASE_ROWS], NUM_QUERIES, seed=SEED + 1)
    return data, base, queries


def _absorb_burst(index: MutableIndex, pool: np.ndarray, burst: int) -> None:
    rng = np.random.default_rng(SEED + burst)
    index.insert(pool[:burst])
    assigned = np.arange(BASE_ROWS, BASE_ROWS + burst)
    victims = rng.choice(assigned, size=burst // 4, replace=False)
    deletable = sorted(int(v) for v in victims)
    index.delete(deletable)
    # Some base-row churn too, so tombstones touch the graph leg.
    index.delete([int(i) for i in rng.choice(BASE_ROWS, size=burst // 8,
                                             replace=False)])


def _measure(index: MutableIndex, queries: np.ndarray):
    """(recall vs live oracle, per-query p95 ms, mean ms)."""
    oracle = BruteForceIndex(index.dataset, metric=index.metric)
    truth = oracle.search(queries, K, filter_mask=index.live_mask())
    latencies = []
    found = []
    for query in queries:
        started = time.perf_counter()
        result = index.search(query, k=K)
        latencies.append((time.perf_counter() - started) * 1e3)
        found.append(result.indices[0])
    measured = recall(np.stack(found), truth.indices)
    return measured, float(np.percentile(latencies, 95)), float(np.mean(latencies))


def test_streaming_write_absorption_sweep(stream_setup, benchmark):
    """Recall + p95 vs burst size for the three freshness strategies."""
    data, base, queries = stream_setup
    pool = data[BASE_ROWS:]

    def run():
        rows = []
        costs = CostModel()
        cells = {}
        for burst in BURSTS:
            for mode in MODES:
                index = MutableIndex(base)
                _absorb_burst(index, pool, burst)
                maintenance_s = 0.0
                if mode == "incremental":
                    report = index.repair_incremental(seed=SEED)
                    maintenance_s = report.build_seconds
                    costs.note_extend(report.rows_built, report.build_seconds)
                elif mode == "full":
                    report = index.rebuild_full()
                    maintenance_s = report.build_seconds
                    costs.note_build(report.rows_built, report.build_seconds)
                measured, p95_ms, mean_ms = _measure(index, queries)
                fresh = index.freshness()
                cells[(burst, mode)] = {
                    "recall": round(measured, 4),
                    "p95_ms": round(p95_ms, 3),
                    "mean_ms": round(mean_ms, 3),
                    "maintenance_s": round(maintenance_s, 3),
                }
                rows.append([
                    burst,
                    mode,
                    f"{measured:.4f}",
                    f"{p95_ms:.2f}",
                    f"{mean_ms:.2f}",
                    f"{maintenance_s:.2f}",
                    fresh.memtable_rows,
                    f"{fresh.tombstone_ratio:.3f}",
                ])
        return rows, cells, costs.as_dict()

    rows, cells, measured_costs = benchmark.pedantic(run, rounds=1, iterations=1)

    c_extend = measured_costs["extend_seconds_per_row"]
    c_build = measured_costs["build_seconds_per_row"]
    live_rows = BASE_ROWS + BURSTS[-1]
    break_even_rows = int(live_rows * c_build / c_extend) if c_extend else 0
    footer = (
        f"measured c_extend={c_extend * 1e3:.2f} ms/row, "
        f"c_build={c_build * 1e3:.2f} ms/row -> repair beats rebuild below "
        f"~{break_even_rows} buffered rows at {live_rows} live rows "
        f"(the StalenessPolicy arithmetic, idle-query case)"
    )
    emit(
        "ext_streaming",
        format_table(
            ["burst", "strategy", "recall@10", "p95 (ms)", "mean (ms)",
             "maintenance (s)", "memtable", "tombstones"],
            rows,
            title=(
                f"Extension: streaming freshness strategies "
                f"({BASE_ROWS}-row degree-{DEGREE} base, {NUM_QUERIES} queries, "
                f"burst = inserts then 25% deletes, real wall time)"
            ),
        )
        + "\n" + footer,
    )

    entry = {
        "recorded": date.today().isoformat(),
        "bench": "ext_streaming",
        "config": {
            "base_rows": BASE_ROWS, "dim": DIM, "degree": DEGREE,
            "bursts": list(BURSTS), "k": K, "seed": SEED,
        },
        "cells": {f"{burst}/{mode}": cell for (burst, mode), cell in cells.items()},
        "costs": {
            "extend_seconds_per_row": c_extend,
            "build_seconds_per_row": c_build,
            "break_even_buffered_rows": break_even_rows,
        },
    }
    trajectory = {"schema": 1, "entries": []}
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
            trajectory = json.load(handle)
    trajectory["entries"].append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Sanity floor: every strategy must keep serving good results.
    for (burst, mode), cell in cells.items():
        assert cell["recall"] >= 0.90, (burst, mode, cell)


def test_streaming_policy_uses_measured_break_even(stream_setup, benchmark):
    """The online policy must reproduce the offline crossover: repair for
    small bursts, rebuild once tombstone overhead + batch size pay for it."""
    data, base, queries = stream_setup
    pool = data[BASE_ROWS:]

    def run():
        index = MutableIndex(base)
        policy = StalenessPolicy(min_memtable_rows=8)
        # Measure both sides once (what Rebuilder.run_once does for real).
        probe = MutableIndex(base)
        _absorb_burst(probe, pool, BURSTS[0])
        policy.note_report(probe.repair_incremental(seed=SEED))
        policy.note_report(probe.rebuild_full())
        _absorb_burst(index, pool, BURSTS[1])
        small = policy.decide(index.freshness())
        # A hot query stream over a tombstone-heavy index tips it.
        heavy = index.freshness()
        heavy = type(heavy)(
            **{**heavy.__dict__, "tombstone_rows": heavy.base_rows // 2,
               "query_rate_qps": 2000.0, "search_seconds_per_query": 0.05}
        )
        return small, policy.decide(heavy)

    small, heavy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert small.action == "incremental"
    assert np.isfinite(small.est_incremental_s)
    assert heavy.action == "full"
