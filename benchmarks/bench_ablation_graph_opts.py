"""Ablations: what each CAGRA design choice buys at search time.

Complements Fig. 3 (graph metrics) with end-to-end search effects:

* reordering flavour (rank / distance / none) at fixed search budget;
* reverse edges on vs off;
* initial-graph degree ``d_init`` = 2d vs 3d (the paper's recommended
  range) — build cost vs search quality.
"""

from conftest import emit

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.bench import format_table
from repro.core.metrics import recall

DATASET = "deep-1m"
ITOPK = 32


def test_ablation_reordering_and_reverse(ctx, benchmark):
    bundle = ctx.bundle(DATASET)
    truth = ctx.truth(DATASET)
    knn = ctx.knn(DATASET)
    d = ctx.degree(DATASET)

    variants = {
        "rank + reverse (CAGRA)": GraphBuildConfig(graph_degree=d),
        "distance + reverse": GraphBuildConfig(graph_degree=d, reordering="distance"),
        "none + reverse": GraphBuildConfig(graph_degree=d, reordering="none"),
        "rank, no reverse": GraphBuildConfig(graph_degree=d, add_reverse_edges=False),
        "none, no reverse (plain kNN)": GraphBuildConfig(
            graph_degree=d, reordering="none", add_reverse_edges=False
        ),
    }

    def run():
        rows = []
        recalls = {}
        for label, config in variants.items():
            index = CagraIndex.from_knn_result(bundle.data, knn, config)
            result = index.search(
                bundle.queries, 10, SearchConfig(itopk=ITOPK, algo="single_cta")
            )
            r = recall(result.indices, truth)
            recalls[label] = r
            rows.append([
                label, f"{r:.4f}",
                result.report.distance_computations // len(bundle.queries),
            ])
        return rows, recalls

    rows, recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_graph_opts",
        format_table(
            ["graph variant", f"recall@10 (itopk={ITOPK})", "dist/query"],
            rows,
            title=f"Ablation: optimization choices on {DATASET} (fixed budget)",
        ),
    )
    assert recalls["rank + reverse (CAGRA)"] >= recalls["none, no reverse (plain kNN)"] - 0.01
    # Rank-based matches distance-based (the Q-A3 claim, search-level).
    assert abs(recalls["rank + reverse (CAGRA)"] - recalls["distance + reverse"]) < 0.05


def test_ablation_dinit(ctx, benchmark):
    from repro.core.nn_descent import build_knn_graph
    from repro.gpusim import GpuCostModel

    bundle = ctx.bundle(DATASET)
    truth = ctx.truth(DATASET)
    d = ctx.degree(DATASET)
    gpu = GpuCostModel()

    def run():
        rows = []
        quality = {}
        for factor in (2, 3):
            knn = build_knn_graph(
                bundle.data, factor * d,
                GraphBuildConfig(graph_degree=d, metric=bundle.spec.metric),
            )
            build_seconds = gpu.knn_build_time(
                knn.distance_computations, bundle.spec.dim,
                num_nodes=len(bundle.data), k=factor * d, iterations=knn.iterations,
            )
            index = CagraIndex.from_knn_result(
                bundle.data, knn,
                GraphBuildConfig(graph_degree=d, metric=bundle.spec.metric),
            )
            result = index.search(
                bundle.queries, 10, SearchConfig(itopk=ITOPK, algo="single_cta")
            )
            r = recall(result.indices, truth)
            quality[factor] = (build_seconds, r)
            rows.append([f"{factor}d", f"{build_seconds * 1e3:.1f} ms", f"{r:.4f}"])
        return rows, quality

    rows, quality = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_dinit",
        format_table(
            ["d_init", "initial build (sim)", f"recall@10 (itopk={ITOPK})"],
            rows,
            title=f"Ablation: d_init = 2d vs 3d on {DATASET}",
        ),
    )
    # 3d costs more to build and must not hurt quality materially.
    assert quality[3][0] > quality[2][0]
    assert quality[3][1] >= quality[2][1] - 0.03
