"""Shared benchmark context: datasets, memoized index builds, reporting.

Every bench regenerates one table/figure of the paper.  Pure-Python
builds are the expensive part, so all builders are memoized in one
session-scoped context and shared across bench files.

Bench scales are deliberately small (the scale substitution is recorded in
DESIGN.md §2); each bench prints the scale factor it ran at.  Output goes
to stdout (visible with ``pytest -s``) and to ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro import CagraIndex, GraphBuildConfig
from repro.baselines import (
    GannsIndex,
    GgnnIndex,
    HnswIndex,
    NssgIndex,
    exact_search,
)
from repro.core.nn_descent import KnnGraphResult, build_knn_graph
from repro.datasets import DatasetBundle, load_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Per-dataset bench scales (original sizes are 290K-100M; see DESIGN.md).
BENCH_SCALES = {
    "sift-1m": 2500,
    "gist-1m": 1200,
    "glove-200": 2500,
    "nytimes": 2000,
    "deep-1m": 2500,
    "deep-10m": 5000,
    "deep-100m": 10000,
}

#: Bench graph degrees: Table I's degrees assume 1M-100M points; at bench
#: scale we keep their *ratios* but cap so degree << N.
BENCH_DEGREES = {
    "sift-1m": 32,
    "gist-1m": 48,
    "glove-200": 64,
    "nytimes": 48,
    "deep-1m": 32,
    "deep-10m": 32,
    "deep-100m": 32,
}

NUM_QUERIES = 40


@dataclass
class BenchContext:
    """Memoizes datasets, ground truth, and index builds for the session."""

    bundles: dict = field(default_factory=dict)
    truths: dict = field(default_factory=dict)
    knns: dict = field(default_factory=dict)
    cagras: dict = field(default_factory=dict)
    hnsws: dict = field(default_factory=dict)
    nssgs: dict = field(default_factory=dict)
    ggnns: dict = field(default_factory=dict)
    gannses: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def bundle(self, name: str, scale: int = 0) -> DatasetBundle:
        key = (name, scale)
        if key not in self.bundles:
            self.bundles[key] = load_dataset(
                name, scale=scale or BENCH_SCALES[name], num_queries=NUM_QUERIES
            )
        return self.bundles[key]

    def truth(self, name: str, k: int = 10, scale: int = 0) -> np.ndarray:
        key = (name, k, scale)
        if key not in self.truths:
            bundle = self.bundle(name, scale)
            ids, _ = exact_search(bundle.data, bundle.queries, k, metric=bundle.spec.metric)
            self.truths[key] = ids
        return self.truths[key]

    def degree(self, name: str) -> int:
        return BENCH_DEGREES[name]

    # ------------------------------------------------------------------
    def knn(self, name: str, d_init_factor: int = 2, scale: int = 0) -> KnnGraphResult:
        key = (name, d_init_factor, scale)
        if key not in self.knns:
            bundle = self.bundle(name, scale)
            d = self.degree(name)
            self.knns[key] = build_knn_graph(
                bundle.data,
                d_init_factor * d,
                GraphBuildConfig(graph_degree=d, metric=bundle.spec.metric),
            )
        return self.knns[key]

    def cagra(self, name: str, reordering: str = "rank", scale: int = 0,
              dtype: str = "float32") -> CagraIndex:
        key = (name, reordering, scale, dtype)
        if key not in self.cagras:
            bundle = self.bundle(name, scale)
            config = GraphBuildConfig(
                graph_degree=self.degree(name),
                metric=bundle.spec.metric,
                reordering=reordering,
            )
            if dtype == "float32":
                # Reuse the memoized initial k-NN graph across reorderings.
                index = CagraIndex.from_knn_result(bundle.data, self.knn(name, scale=scale), config)
            else:
                index = CagraIndex.build(bundle.data, config, dataset_dtype=dtype)
            self.cagras[key] = index
        return self.cagras[key]

    def hnsw(self, name: str, scale: int = 0) -> HnswIndex:
        key = (name, scale)
        if key not in self.hnsws:
            bundle = self.bundle(name, scale)
            self.hnsws[key] = HnswIndex(
                bundle.data, m=16, ef_construction=100, metric=bundle.spec.metric
            ).build()
        return self.hnsws[key]

    def nssg(self, name: str, scale: int = 0) -> NssgIndex:
        key = (name, scale)
        if key not in self.nssgs:
            bundle = self.bundle(name, scale)
            self.nssgs[key] = NssgIndex(
                bundle.data,
                self.knn(name, scale=scale),
                degree_bound=self.degree(name),
                pool_size=3 * self.degree(name),
                metric=bundle.spec.metric,
            ).build()
        return self.nssgs[key]

    def ggnn(self, name: str, scale: int = 0) -> GgnnIndex:
        key = (name, scale)
        if key not in self.ggnns:
            bundle = self.bundle(name, scale)
            self.ggnns[key] = GgnnIndex(
                bundle.data,
                degree=self.degree(name),
                shard_size=400,
                metric=bundle.spec.metric,
            ).build()
        return self.ggnns[key]

    def ganns(self, name: str, scale: int = 0) -> GannsIndex:
        key = (name, scale)
        if key not in self.gannses:
            bundle = self.bundle(name, scale)
            self.gannses[key] = GannsIndex(
                bundle.data,
                degree=self.degree(name),
                metric=bundle.spec.metric,
            ).build()
        return self.gannses[key]


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext()


def emit(name: str, text: str) -> None:
    """Print a bench table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
