"""Fig. 11: graph construction time across all five methods.

Every builder really runs (same datasets, aligned degrees); construction
work counters are priced on the testbed models — CAGRA/GGNN/GANNS on the
A100 model, HNSW/NSSG on the EPYC model (NSSG's reference implementation
builds its k-NN graph on the CPU).  CAGRA and NSSG show the initial
k-NN-graph / optimization breakdown the paper plots.

Expected shape: CAGRA compatible-or-fastest everywhere; far faster than
NSSG (paper: 8.3–41x); faster than HNSW (paper: 2.2–27x).
"""

from conftest import emit

from repro.bench import format_table
from repro.gpusim import CpuCostModel, GpuCostModel

DATASETS = ["sift-1m", "glove-200", "nytimes", "deep-1m"]


def _cagra_time(ctx, name, gpu):
    bundle = ctx.bundle(name)
    knn = ctx.knn(name)
    index = ctx.cagra(name)
    n, d_init = knn.graph.neighbors.shape
    knn_seconds = gpu.knn_build_time(
        knn.distance_computations, bundle.spec.dim,
        num_nodes=n, k=d_init, iterations=knn.iterations,
    )
    opt = index.build_report.optimize
    opt_seconds = gpu.optimize_time(opt.detour_checks, n, ctx.degree(name))
    return knn_seconds, opt_seconds


def _ggnn_time(ctx, name, gpu):
    bundle = ctx.bundle(name)
    ggnn = ctx.ggnn(name)
    stats = ggnn.build_stats
    # Shard graphs + refinement sweeps are batched GPU work, but GGNN's
    # hierarchical merge rewrites the graph level by level with separate,
    # uncoalesced kernels — priced at a lower arithmetic efficiency and a
    # multi-pass update cost (4x the fused NN-descent update).
    base = gpu.knn_build_time(
        stats.distance_computations, bundle.spec.dim,
        num_nodes=len(bundle.data), k=ggnn.degree,
        iterations=2 * (2 + ggnn.refine_rounds),
        efficiency=0.2,
        update_seconds_per_entry=24e-9,
    )
    serial_depth = stats.hops / max(1, len(bundle.data))
    linking = serial_depth * gpu.spec.device_mem_latency / (gpu.spec.clock_ghz * 1e9)
    return base + linking


def _ganns_time(ctx, name, gpu):
    bundle = ctx.bundle(name)
    ganns = ctx.ganns(name)
    stats = ganns.build_stats
    # NSW insertion rewrites neighbor lists point by point; the batched
    # GPU variant still commits links with scattered atomics — priced at
    # a lower efficiency and the multi-pass update cost.
    base = gpu.knn_build_time(
        stats.distance_computations, bundle.spec.dim,
        num_nodes=len(bundle.data), k=ganns.degree, iterations=8,
        efficiency=0.15,
        update_seconds_per_entry=24e-9,
    )
    # Batches are sequential: each waits for the previous batch's graph.
    per_batch_depth = stats.hops / max(1, stats.num_batches)
    serial = (
        stats.num_batches
        * (per_batch_depth / max(1, ganns.batch_size))
        * gpu.spec.device_mem_latency
        / (gpu.spec.clock_ghz * 1e9)
        + stats.num_batches * gpu.spec.kernel_launch_seconds * 4
    )
    return base + serial


def test_fig11_construction_time(ctx, benchmark):
    gpu = GpuCostModel()
    cpu = CpuCostModel()

    def run():
        rows = []
        times = {}
        for name in DATASETS:
            bundle = ctx.bundle(name)
            dim = bundle.spec.dim

            knn_s, opt_s = _cagra_time(ctx, name, gpu)
            times[(name, "CAGRA")] = knn_s + opt_s
            rows.append([name, "CAGRA (GPU)", f"{(knn_s + opt_s) * 1e3:.1f} ms",
                         f"knn {knn_s * 1e3:.1f} + opt {opt_s * 1e3:.1f}"])

            times[(name, "GGNN")] = _ggnn_time(ctx, name, gpu)
            rows.append([name, "GGNN (GPU)",
                         f"{times[(name, 'GGNN')] * 1e3:.1f} ms", ""])

            times[(name, "GANNS")] = _ganns_time(ctx, name, gpu)
            rows.append([name, "GANNS (GPU)",
                         f"{times[(name, 'GANNS')] * 1e3:.1f} ms", ""])

            hnsw = ctx.hnsw(name)
            hnsw_s = cpu.build_time(
                hnsw.build_stats.distance_computations, hnsw.build_stats.hops, dim
            )
            times[(name, "HNSW")] = hnsw_s
            rows.append([name, "HNSW (CPU)", f"{hnsw_s * 1e3:.1f} ms", ""])

            nssg = ctx.nssg(name)
            knn = ctx.knn(name)
            nssg_knn_s = cpu.build_time(knn.distance_computations, 0, dim)
            nssg_opt_s = cpu.build_time(
                nssg.build_stats.distance_computations, 0, dim
            )
            times[(name, "NSSG")] = nssg_knn_s + nssg_opt_s
            rows.append([name, "NSSG (CPU)",
                         f"{(nssg_knn_s + nssg_opt_s) * 1e3:.1f} ms",
                         f"knn {nssg_knn_s * 1e3:.1f} + opt {nssg_opt_s * 1e3:.1f}"])
        return rows, times

    rows, times = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = []
    for name in DATASETS:
        cagra = times[(name, "CAGRA")]
        for other in ("GGNN", "GANNS", "HNSW", "NSSG"):
            speedups.append([name, other, f"{times[(name, other)] / cagra:.1f}x"])
    table = format_table(
        ["dataset", "method", "build (sim)", "breakdown"],
        rows,
        title="Fig. 11: graph construction time",
    )
    speedup_table = format_table(
        ["dataset", "vs", "CAGRA speedup"], speedups,
        title="construction speedups (paper: NSSG 8.3-41x, HNSW 2.2-27x, "
        "GGNN 1.1-31x, GANNS 1.0-6.1x)",
    )
    emit("fig11_construction", table + "\n\n" + speedup_table)

    for name in DATASETS:
        cagra = times[(name, "CAGRA")]
        assert times[(name, "NSSG")] > 3 * cagra, name
        assert times[(name, "HNSW")] > 1.5 * cagra, name
        assert times[(name, "GGNN")] >= 0.9 * cagra, name
        assert times[(name, "GANNS")] >= 0.9 * cagra, name
