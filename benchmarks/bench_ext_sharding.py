"""Extension bench: multi-GPU sharding (Sec. IV-C2 / V-E).

The paper recommends sharding "where each GPU is assigned to process one
sub-graph independently" for datasets beyond device memory.  This bench
measures what the recommendation implies: per-GPU memory drops ~1/G, the
batch wall time is the slowest shard's kernel (shards run concurrently on
different GPUs), and recall holds because every shard is exhaustively
searched with the same per-shard budget.
"""

from conftest import emit

from repro import GraphBuildConfig, SearchConfig, ShardedCagraIndex
from repro.bench import format_table, scale_report
from repro.core.metrics import recall
from repro.gpusim import GpuCostModel

DATASET = "deep-1m"
BATCH = 10_000


def test_ext_sharding(ctx, benchmark):
    bundle = ctx.bundle(DATASET)
    truth = ctx.truth(DATASET)
    gpu = GpuCostModel()
    single = ctx.cagra(DATASET)

    def run():
        rows = []
        stats = {}
        # Monolithic reference.
        result = single.search(bundle.queries, 10, SearchConfig(itopk=64, algo="single_cta"))
        timing = gpu.search_time(
            scale_report(result.report, BATCH / len(bundle.queries)),
            single.dim, itopk=64,
        )
        r = recall(result.indices, truth)
        stats[1] = (r, timing.seconds, single.memory_bytes())
        rows.append([1, f"{r:.4f}", f"{timing.seconds * 1e3:.2f} ms",
                     f"{single.memory_bytes():,}"])

        for shards in (2, 4):
            index = ShardedCagraIndex.build(
                bundle.data, shards,
                GraphBuildConfig(
                    graph_degree=ctx.degree(DATASET), metric=bundle.spec.metric
                ),
            )
            result = index.search(bundle.queries, 10, SearchConfig(itopk=64, algo="single_cta"))
            # Shards run on separate GPUs: wall time = slowest shard.
            wall = max(
                gpu.search_time(
                    scale_report(rep, BATCH / len(bundle.queries)),
                    single.dim, itopk=64,
                ).seconds
                for rep in result.shard_reports
            )
            r = recall(result.indices, truth)
            stats[shards] = (r, wall, index.max_shard_memory_bytes())
            rows.append([shards, f"{r:.4f}", f"{wall * 1e3:.2f} ms",
                         f"{index.max_shard_memory_bytes():,}"])
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_sharding",
        format_table(
            ["shards (GPUs)", "recall@10", "batch wall (sim)", "per-GPU bytes"],
            rows,
            title=f"Extension: multi-GPU sharding on {DATASET} (batch {BATCH:,})",
        ),
    )

    # Memory per GPU shrinks with the shard count.
    assert stats[4][2] < stats[2][2] < stats[1][2]
    # Recall holds (each shard fully searched).
    assert stats[4][0] >= stats[1][0] - 0.03
