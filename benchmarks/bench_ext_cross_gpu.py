"""Extension bench: do the paper's conclusions transfer across GPUs?

The paper notes that the Fig. 7 thresholds "depend on the hardware" and
recommends ``b_T`` = the SM count.  Re-pricing the *same* measured search
counters on an H100 model checks which conclusions are hardware-robust:

* absolute QPS scales roughly with bandwidth (the large-batch kernel is
  memory-bound);
* the single-/multi-CTA dispatch boundary moves with the SM count;
* the team-size optimum is a property of the data shape, not the GPU.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_table, scale_report
from repro.core.config import choose_algo
from repro.gpusim import A100_80GB, H100_80GB, GpuCostModel
from repro.gpusim.kernels import auto_team_size

DATASET = "deep-1m"
BATCH = 10_000


def test_ext_cross_gpu(ctx, benchmark):
    bundle = ctx.bundle(DATASET)
    index = ctx.cagra(DATASET)
    specs = {"A100": A100_80GB, "H100": H100_80GB}

    def run():
        result = index.search(
            bundle.queries, 10, SearchConfig(itopk=64, algo="single_cta")
        )
        report = scale_report(result.report, BATCH / len(bundle.queries))
        rows = []
        qps = {}
        for name, spec in specs.items():
            timing = GpuCostModel(spec).search_time(report, index.dim, itopk=64)
            qps[name] = timing.qps(BATCH)
            boundary = choose_algo(SearchConfig(itopk=64), spec.num_sms - 1,
                                   num_sms=spec.num_sms)
            rows.append([
                name, spec.num_sms, f"{spec.mem_bandwidth_gbps:,.0f} GB/s",
                f"{qps[name]:,.0f}",
                f"batch < {spec.num_sms} -> {boundary}",
                auto_team_size(index.dim, 4, spec),
            ])
        return rows, qps

    rows, qps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_cross_gpu",
        format_table(
            ["GPU", "SMs", "bandwidth", "QPS (sim)", "dispatch boundary",
             "auto team (dim 96)"],
            rows,
            title=f"Extension: same counters, different GPU ({DATASET}, "
            f"batch {BATCH:,}, itopk 64)",
        ),
    )

    # H100's higher bandwidth lifts the memory-bound kernel's throughput
    # by roughly the bandwidth ratio.
    ratio = qps["H100"] / qps["A100"]
    bw_ratio = H100_80GB.mem_bandwidth_gbps / A100_80GB.mem_bandwidth_gbps
    assert 0.7 * bw_ratio < ratio < 1.3 * bw_ratio
    # The team-size optimum is data-shape-driven, not GPU-driven.
    assert auto_team_size(96, 4, A100_80GB) == auto_team_size(96, 4, H100_80GB)
