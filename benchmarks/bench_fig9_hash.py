"""Fig. 9: forgettable (shared-memory) vs standard (device-memory) hash.

Both hash policies run inside the single-CTA implementation on a
DEEP-like and a GloVe-like dataset, with the forgettable table reset
every iteration (the paper's setting for this experiment).

Expected shape: forgettable reaches compatible-or-higher throughput at
compatible recall, and its gain is smaller on the higher-dimensional
dataset where distance arithmetic dominates hash overhead.
"""

from conftest import emit

from repro import SearchConfig
from repro.bench import format_table, scale_report
from repro.core.config import HashTableConfig
from repro.core.metrics import recall
from repro.gpusim import GpuCostModel

DATASETS = ["deep-1m", "glove-200"]
BATCH = 10_000
ITOPK = 64

POLICIES = {
    "forgettable": HashTableConfig(kind="forgettable", log2_size=11, reset_interval=1),
    "standard": HashTableConfig(kind="standard", log2_size=13),
}


def test_fig9_hash_management(ctx, benchmark):
    gpu = GpuCostModel()

    def run():
        rows = []
        stats = {}
        for name in DATASETS:
            bundle = ctx.bundle(name)
            index = ctx.cagra(name)
            truth = ctx.truth(name)
            for policy, hash_config in POLICIES.items():
                result = index.search(
                    bundle.queries, 10,
                    SearchConfig(itopk=ITOPK, algo="single_cta", hash_table=hash_config),
                )
                report = scale_report(result.report, BATCH / len(bundle.queries))
                timing = gpu.search_time(report, index.dim, itopk=ITOPK)
                r = recall(result.indices, truth)
                stats[(name, policy)] = (timing.qps(BATCH), r)
                rows.append([
                    name, bundle.spec.dim, policy,
                    f"{timing.qps(BATCH):,.0f}", f"{r:.4f}",
                    result.report.distance_computations // len(bundle.queries),
                    result.report.hash_resets // len(bundle.queries),
                ])
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig9_hash",
        format_table(
            ["dataset", "dim", "hash", "QPS (sim)", "recall@10",
             "dist/query", "resets/query"],
            rows,
            title=f"Fig. 9: hash-table management (single-CTA, batch {BATCH:,}, "
            "reset every iteration)",
        ),
    )

    for name in DATASETS:
        forget_qps, forget_recall = stats[(name, "forgettable")]
        std_qps, std_recall = stats[(name, "standard")]
        # Paper shape: compatible or higher throughput, no catastrophic
        # recall loss despite the per-iteration resets.
        assert forget_qps >= std_qps * 0.9, name
        assert forget_recall >= std_recall - 0.05, name

    # Secondary shape: the throughput gain is larger on the smaller
    # dimension, where hash overhead is a bigger share of the kernel.
    deep_gain = stats[("deep-1m", "forgettable")][0] / stats[("deep-1m", "standard")][0]
    glove_gain = (
        stats[("glove-200", "forgettable")][0] / stats[("glove-200", "standard")][0]
    )
    assert deep_gain > glove_gain
