"""Extension bench: the vectorized fast path's real Python wall time.

Unlike the figure benches (whose time axis is the simulated testbed),
this one measures *actual* Python wall time with pytest-benchmark: the
lockstep implementation in :mod:`repro.core.batch_search` versus the
query-at-a-time reference — the speedup a downstream user of this library
actually experiences.
"""

import pytest
from conftest import emit

from repro import SearchConfig
from repro.bench import format_table
from repro.core.metrics import recall

DATASET = "deep-1m"


@pytest.fixture(scope="module")
def setup(ctx):
    return ctx.cagra(DATASET), ctx.bundle(DATASET), ctx.truth(DATASET)


def test_fast_path_wall_time(setup, benchmark):
    index, bundle, truth = setup
    config = SearchConfig(itopk=64, algo="single_cta")

    result = benchmark(lambda: index.search_fast(bundle.queries, 10, config))
    assert recall(result.indices, truth) > 0.9


def test_reference_wall_time(setup, benchmark):
    index, bundle, truth = setup
    config = SearchConfig(itopk=64, algo="single_cta")

    result = benchmark.pedantic(
        lambda: index.search(bundle.queries, 10, config), rounds=2, iterations=1
    )
    assert recall(result.indices, truth) > 0.9


def test_fast_path_summary(setup, benchmark):
    """One-shot comparison table persisted to results/."""
    import time

    index, bundle, truth = setup
    config = SearchConfig(itopk=64, algo="single_cta")

    def run():
        rows = []
        t0 = time.perf_counter()
        ref = index.search(bundle.queries, 10, config)
        ref_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = index.search_fast(bundle.queries, 10, config)
        fast_s = time.perf_counter() - t0
        rows.append(["reference (per-query)", f"{ref_s:.3f} s",
                     f"{recall(ref.indices, truth):.4f}"])
        rows.append(["fast (lockstep)", f"{fast_s:.3f} s",
                     f"{recall(fast.indices, truth):.4f}"])
        rows.append(["speedup", f"{ref_s / fast_s:.1f}x", ""])
        return rows, ref_s, fast_s

    rows, ref_s, fast_s = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_fast_path",
        format_table(
            ["implementation", "python wall time", "recall@10"],
            rows,
            title=f"Extension: lockstep fast path on {DATASET} "
            f"({len(setup[1].queries)} queries, itopk 64)",
        ),
    )
    assert fast_s < ref_s
