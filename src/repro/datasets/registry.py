"""Named dataset registry mirroring the paper's Table I.

Every entry records the *original* dimension, size, metric and CAGRA graph
degree from Table I, plus the synthetic generator and the scaled-down
default size this pure-Python reproduction runs at.  Benches print both
sizes so the scale substitution is always visible.

>>> from repro.datasets import load_dataset
>>> bundle = load_dataset("deep-1m", scale=4000)
>>> bundle.data.shape
(4000, 96)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.synthetic import clustered_gaussian, hard_heavy_tailed, make_queries

__all__ = ["DatasetSpec", "DatasetBundle", "DATASETS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I row plus its synthetic substitution.

    Attributes:
        name: registry key.
        dim: original dimensionality (kept exactly).
        original_size: the paper's N.
        metric: distance metric the paper uses on it.
        graph_degree: CAGRA degree ``d`` from Table I.
        default_scale: default synthetic N for this reproduction.
        hardness: ``"easy"`` (descriptor-like) or ``"hard"``
            (embedding-like); selects the generator.
        generator: callable ``(n, dim, seed) -> (n, dim) float32``.
    """

    name: str
    dim: int
    original_size: int
    metric: str
    graph_degree: int
    default_scale: int
    hardness: str
    generator: Callable[[int, int, int], np.ndarray]


@dataclass
class DatasetBundle:
    """A generated dataset with its queries and spec."""

    spec: DatasetSpec
    data: np.ndarray
    queries: np.ndarray

    @property
    def scale_factor(self) -> float:
        """original_size / generated size (printed by every bench)."""
        return self.spec.original_size / self.data.shape[0]


def _easy(n: int, dim: int, seed: int) -> np.ndarray:
    return clustered_gaussian(n, dim, seed=seed)


def _hard(n: int, dim: int, seed: int) -> np.ndarray:
    return hard_heavy_tailed(n, dim, seed=seed)


#: Table I of the paper, with scaled-down synthetic defaults.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("sift-1m", 128, 1_000_000, "sqeuclidean", 32, 8000, "easy", _easy),
        DatasetSpec("gist-1m", 960, 1_000_000, "sqeuclidean", 48, 4000, "easy", _easy),
        DatasetSpec("glove-200", 200, 1_183_514, "inner_product", 80, 8000, "hard", _hard),
        DatasetSpec("nytimes", 256, 290_000, "inner_product", 64, 6000, "hard", _hard),
        DatasetSpec("deep-1m", 96, 1_000_000, "sqeuclidean", 32, 8000, "easy", _easy),
        DatasetSpec("deep-10m", 96, 10_000_000, "sqeuclidean", 32, 16000, "easy", _easy),
        DatasetSpec("deep-100m", 96, 100_000_000, "sqeuclidean", 32, 32000, "easy", _easy),
    ]
}


def load_dataset(
    name: str,
    scale: int = 0,
    num_queries: int = 100,
    seed: int = 0,
) -> DatasetBundle:
    """Generate a named dataset at a given scale.

    Args:
        name: a key of :data:`DATASETS` (case-insensitive).
        scale: number of vectors (0 = the spec's ``default_scale``).
        num_queries: query-set size.
        seed: RNG seed (queries derive a distinct stream).
    """
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    spec = DATASETS[key]
    n = scale or spec.default_scale
    data = spec.generator(n, spec.dim, seed)
    queries = make_queries(data, num_queries, seed=seed + 1)
    return DatasetBundle(spec=spec, data=data, queries=queries)
