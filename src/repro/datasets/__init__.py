"""Datasets: synthetic analogues of the paper's Table I plus texmex IO.

The paper evaluates on SIFT-1M, GIST-1M, GloVe-200, NYTimes, and
DEEP-1M/10M/100M — none of which can be downloaded in an offline
reproduction — so :mod:`repro.datasets.synthetic` generates scaled-down
synthetic datasets that match each original's *dimension*, *metric*, and
*hardness* (cluster structure / local intrinsic dimensionality), and
:mod:`repro.datasets.registry` registers them under the paper's names with
the per-dataset graph degrees of Table I.  Users with the real files can
load them through :mod:`repro.datasets.io` (fvecs/ivecs/bvecs).
"""

from repro.datasets.registry import DATASETS, DatasetBundle, DatasetSpec, load_dataset
from repro.datasets.synthetic import (
    clustered_gaussian,
    hard_heavy_tailed,
    make_queries,
)
from repro.datasets.io import read_fvecs, read_ivecs, read_bvecs, write_fvecs, write_ivecs

__all__ = [
    "DATASETS",
    "DatasetBundle",
    "DatasetSpec",
    "load_dataset",
    "clustered_gaussian",
    "hard_heavy_tailed",
    "make_queries",
    "read_fvecs",
    "read_ivecs",
    "read_bvecs",
    "write_fvecs",
    "write_ivecs",
]
