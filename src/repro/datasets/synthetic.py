"""Synthetic dataset generators matching the benchmark datasets' character.

Graph-ANN behaviour is driven by three properties of the data: dimension,
metric, and *hardness* — roughly, local intrinsic dimensionality (LID).
SIFT/DEEP-style descriptors are clusterable with a low LID and a globally
connected neighborhood structure; GloVe/NYTimes embeddings are
heavy-tailed, angularly spread, and notoriously "harder" (the paper cites
[15] and [27]) — they need wider searches for the same recall.

Both generators therefore sample a *low-dimensional latent manifold*
(where cluster overlap — and hence k-NN graph connectivity — behaves like
real data; isolated high-dimensional Gaussian islands would produce
disconnected graphs no ANN index could search across) and embed it in the
target dimension with a random linear map plus ambient noise:

* :func:`clustered_gaussian` — overlapping latent Gaussian mixture, low
  intrinsic dimension (SIFT/GIST/DEEP analogue).
* :func:`hard_heavy_tailed` — higher intrinsic dimension, Student-t
  tails, row-normalized (GloVe/NYTimes analogue).
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import normalize_rows

__all__ = ["clustered_gaussian", "hard_heavy_tailed", "make_queries"]


def _embed(latent: np.ndarray, dim: int, rng: np.random.Generator,
           ambient_noise: float) -> np.ndarray:
    """Embed latent points into ``dim`` via a random orthonormal-ish map."""
    k = latent.shape[1]
    basis = rng.standard_normal((k, dim)) / np.sqrt(k)
    data = latent @ basis
    if ambient_noise > 0.0:
        data = data + rng.standard_normal(data.shape) * ambient_noise
    return data


def clustered_gaussian(
    n: int,
    dim: int,
    num_clusters: int = 0,
    cluster_std: float = 1.0,
    intrinsic_dim: int = 0,
    ambient_noise: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Descriptor-like dataset (SIFT/GIST/DEEP analogue).

    A Gaussian mixture on a low-dimensional latent manifold, embedded in
    ``dim`` dimensions.  Latent cluster centers are spread comparably to
    the cluster widths so neighborhoods overlap and the k-NN graph is
    connected, as in real descriptor datasets.

    Args:
        n: number of vectors.
        dim: ambient dimensionality (kept exactly, e.g. 96 for DEEP).
        num_clusters: mixture components (0 = ``max(16, n // 500)``).
        cluster_std: latent intra-cluster standard deviation; centers are
            spread with standard deviation ~1.5x this, giving heavy
            overlap.
        intrinsic_dim: latent dimensionality (0 = ``min(24, max(4, dim // 4))``)
            — the LID knob; scaled-down datasets need a slightly higher
            LID than real descriptors so recall curves span the paper's
            0.8–1.0 band.
        ambient_noise: full-dimensional noise floor after embedding.
        seed: RNG seed.
    """
    if n < 1 or dim < 2:
        raise ValueError("need n >= 1 and dim >= 2")
    rng = np.random.default_rng(seed)
    num_clusters = num_clusters or max(16, n // 500)
    k = intrinsic_dim or min(24, max(4, dim // 4))
    centers = rng.standard_normal((num_clusters, k)) * (1.5 * cluster_std)
    assignment = rng.integers(0, num_clusters, size=n)
    latent = centers[assignment] + rng.standard_normal((n, k)) * cluster_std
    return _embed(latent, dim, rng, ambient_noise).astype(np.float32)


def hard_heavy_tailed(
    n: int,
    dim: int,
    num_clusters: int = 0,
    tail_df: float = 2.5,
    intrinsic_dim: int = 0,
    normalize: bool = True,
    seed: int = 0,
) -> np.ndarray:
    """Embedding-like dataset (GloVe/NYTimes analogue; high LID).

    A higher-dimensional latent space with Student-t offsets produces
    outliers and weakly separated neighborhoods; normalization puts rows
    on the sphere, where these embeddings live under cosine/inner-product
    metrics.

    Args:
        n: number of vectors.
        dim: ambient dimensionality.
        num_clusters: mixture components (0 = ``max(4, n // 2000)``).
        tail_df: Student-t degrees of freedom (smaller = heavier tails =
            harder).
        intrinsic_dim: latent dimensionality (0 = ``min(120, max(8, dim // 2))``)
            — substantially higher than the descriptor datasets.
        normalize: project rows onto the unit sphere.
        seed: RNG seed.
    """
    if n < 1 or dim < 2:
        raise ValueError("need n >= 1 and dim >= 2")
    rng = np.random.default_rng(seed)
    num_clusters = num_clusters or max(4, n // 2000)
    k = intrinsic_dim or min(120, max(8, dim // 2))
    centers = rng.standard_normal((num_clusters, k)) * 0.8
    assignment = rng.integers(0, num_clusters, size=n)
    latent = centers[assignment] + rng.standard_t(tail_df, size=(n, k))
    data = _embed(latent, dim, rng, ambient_noise=0.02)
    if normalize:
        data = normalize_rows(data)
    return data.astype(np.float32)


def make_queries(
    data: np.ndarray, count: int, jitter: float = 0.3, seed: int = 1
) -> np.ndarray:
    """Query set drawn near (not from) the dataset distribution.

    Held-out-style queries: random convex mixes of two dataset rows plus
    noise.  Mixing keeps queries on the data manifold without making any
    single row a trivially recoverable nearest neighbor (the benchmark
    query sets — held-out SIFT descriptors, held-out GloVe words — behave
    the same way).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, data.shape[0], size=count)
    b = rng.integers(0, data.shape[0], size=count)
    t = rng.uniform(0.0, 0.35, size=(count, 1))
    mixed = (1.0 - t) * data[a] + t * data[b]
    scale = float(np.std(data)) * jitter
    noise = rng.standard_normal((count, data.shape[1])) * scale
    return (mixed + noise).astype(np.float32)
