"""texmex vector-file IO: fvecs / ivecs / bvecs.

The paper's datasets ship in the `corpus-texmex.irisa.fr` formats: each
vector is a little-endian ``int32`` dimension header followed by ``dim``
elements (``float32`` for fvecs, ``int32`` for ivecs, ``uint8`` for
bvecs).  These readers let users run the benches on the real SIFT/GIST/
DEEP files when they have them.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["read_fvecs", "read_ivecs", "read_bvecs", "write_fvecs", "write_ivecs"]


def _read_vecs(path: str, element_dtype: np.dtype, element_size: int, limit: int) -> np.ndarray:
    with open(path, "rb") as handle:
        header = np.fromfile(handle, dtype="<i4", count=1)
        if len(header) == 0:
            raise ValueError(f"{path}: empty file")
        dim = int(header[0])
        if dim <= 0:
            raise ValueError(f"{path}: invalid dimension header {dim}")
    record_bytes = 4 + dim * element_size
    file_bytes = os.path.getsize(path)
    if file_bytes % record_bytes != 0:
        raise ValueError(
            f"{path}: size {file_bytes} is not a multiple of the record size "
            f"{record_bytes} (dim={dim})"
        )
    count = file_bytes // record_bytes
    if limit:
        count = min(count, limit)
    raw = np.fromfile(path, dtype=np.uint8, count=count * record_bytes)
    raw = raw.reshape(count, record_bytes)
    body = raw[:, 4:].copy()
    return body.view(element_dtype).reshape(count, dim)


def read_fvecs(path: str, limit: int = 0) -> np.ndarray:
    """Read an ``.fvecs`` file into a float32 ``(N, dim)`` array."""
    return _read_vecs(path, np.dtype("<f4"), 4, limit)


def read_ivecs(path: str, limit: int = 0) -> np.ndarray:
    """Read an ``.ivecs`` file (ground-truth ids) into an int32 array."""
    return _read_vecs(path, np.dtype("<i4"), 4, limit)


def read_bvecs(path: str, limit: int = 0) -> np.ndarray:
    """Read a ``.bvecs`` file into a uint8 ``(N, dim)`` array."""
    return _read_vecs(path, np.dtype("u1"), 1, limit)


def write_fvecs(path: str, data: np.ndarray) -> None:
    """Write a float32 array as ``.fvecs``."""
    data = np.ascontiguousarray(data, dtype="<f4")
    _write_vecs(path, data)


def write_ivecs(path: str, data: np.ndarray) -> None:
    """Write an int32 array as ``.ivecs``."""
    data = np.ascontiguousarray(data, dtype="<i4")
    _write_vecs(path, data)


def _write_vecs(path: str, data: np.ndarray) -> None:
    if data.ndim != 2:
        raise ValueError("data must be 2-D")
    n, dim = data.shape
    header = np.full((n, 1), dim, dtype="<i4")
    with open(path, "wb") as handle:
        interleaved = np.hstack([header.view(data.dtype), data])
        interleaved.tofile(handle)
