"""Hardware specifications for the analytical performance models.

Defaults mirror the paper's testbed (Sec. III-C): an NVIDIA A100 80 GB GPU
and a 64-core AMD EPYC 7742 CPU.  Only first-order quantities appear here —
the cost formulas in :mod:`repro.gpusim.kernels` consume them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "CpuSpec", "A100_80GB", "H100_80GB", "EPYC_7742"]


@dataclass(frozen=True)
class GpuSpec:
    """First-order GPU model.

    Attributes:
        name: marketing name, for reports.
        num_sms: streaming multiprocessors (CTAs run on SMs).
        clock_ghz: SM clock.
        mem_bandwidth_gbps: device (HBM) bandwidth in GB/s.
        device_mem_bytes: device memory capacity (the Fig. 4 distance-table
            OOM check uses this).
        shared_mem_per_sm: shared memory per SM in bytes.
        registers_per_sm: 32-bit registers per SM.
        max_threads_per_sm: resident-thread occupancy limit.
        max_ctas_per_sm: resident-CTA occupancy limit.
        warp_size: threads per warp (32 on every NVIDIA GPU).
        shared_mem_latency: shared-memory access latency in cycles.
        device_mem_latency: device-memory access latency in cycles.
        memory_parallelism: outstanding requests that overlap, i.e. how much
            of the raw latency pipelining hides.
        kernel_launch_seconds: host-side launch overhead per kernel.
    """

    name: str = "NVIDIA A100 80GB"
    num_sms: int = 108
    clock_ghz: float = 1.41
    mem_bandwidth_gbps: float = 2039.0
    device_mem_bytes: int = 80 * 1024**3
    shared_mem_per_sm: int = 164 * 1024
    registers_per_sm: int = 65536
    max_threads_per_sm: int = 2048
    max_ctas_per_sm: int = 32
    warp_size: int = 32
    shared_mem_latency: float = 25.0
    device_mem_latency: float = 400.0
    memory_parallelism: float = 16.0
    kernel_launch_seconds: float = 5e-6
    fp32_tflops: float = 19.5

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


@dataclass(frozen=True)
class CpuSpec:
    """First-order CPU model for the HNSW/NSSG baselines.

    Attributes:
        cores: physical cores available to OpenMP (the paper sweeps thread
            counts up to 64 and keeps the fastest).
        clock_ghz: sustained clock.
        simd_lanes_fp32: FP32 lanes per FMA (AVX2 = 8).
        fma_per_cycle: FMA issue ports.
        cache_miss_seconds: cost of the random node fetch each graph hop
            makes (graph traversal on CPUs is latency-bound).
        candidate_overhead_seconds: scalar bookkeeping per candidate —
            priority-queue push/pop, visited-set lookup, branching.  This
            dominates CPU graph search in practice (hnswlib spends
            ~0.3–0.5 µs per candidate single-threaded).
        thread_efficiency: multi-thread scaling factor (NUMA effects,
            allocator contention; perfect scaling never happens).
        mem_bandwidth_gbps: socket memory bandwidth — the roofline for
            batched vector fetches.
        thread_sync_seconds: per-query scheduling/synchronization overhead
            when multi-threaded batches fan out.
    """

    name: str = "AMD EPYC 7742"
    cores: int = 64
    clock_ghz: float = 2.25
    simd_lanes_fp32: int = 8
    fma_per_cycle: int = 2
    cache_miss_seconds: float = 90e-9
    candidate_overhead_seconds: float = 250e-9
    thread_efficiency: float = 0.7
    mem_bandwidth_gbps: float = 140.0
    thread_sync_seconds: float = 2e-6

    def flops_per_second(self, threads: int) -> float:
        """Peak useful FLOP/s for distance arithmetic at a thread count."""
        threads = min(threads, self.cores)
        return threads * self.clock_ghz * 1e9 * self.simd_lanes_fp32 * self.fma_per_cycle


#: The paper's GPU testbed.
A100_80GB = GpuSpec()

#: A newer-generation data-center GPU, for cross-hardware what-if benches
#: (the paper notes its thresholds "depend on the hardware").
H100_80GB = GpuSpec(
    name="NVIDIA H100 80GB SXM",
    num_sms=132,
    clock_ghz=1.83,
    mem_bandwidth_gbps=3350.0,
    device_mem_bytes=80 * 1024**3,
    shared_mem_per_sm=228 * 1024,
    fp32_tflops=66.9,
)

#: The paper's CPU testbed.
EPYC_7742 = CpuSpec()
