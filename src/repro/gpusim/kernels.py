"""Per-operation cost formulas for the CAGRA search kernels.

Each formula prices one operation class in *warp cycles per operation*,
following the reasoning in Sec. IV-B of the paper:

* **Distance computation with warp teams** (Sec. IV-B1): a team of ``t``
  threads loads a vector with 128-bit loads — ``t * 16`` bytes per load
  instruction — so a ``dim``-dimensional vector of ``b``-byte elements
  takes ``ceil(dim*b / (16*t))`` load instructions, ``ceil(dim/t)`` FMAs
  and ``log2(t)`` warp-shuffle reduction steps.  A warp holds ``32/t``
  teams computing distances concurrently, so per-candidate cost divides by
  the team count.  Small teams need more registers per thread
  (``~ dim*b / (4*t)`` accumulator/staging registers), which lowers
  occupancy and eventually spills — the Fig. 8 penalty for ``t=2``.
* **Hash probes** (Sec. IV-B3): shared-memory probes cost ~latency/warp
  cycles; device-memory probes an order of magnitude more.
* **Top-M sorting** (Sec. IV-B2): bitonic comparators in registers below
  512 candidates, CTA radix above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.device import GpuSpec

__all__ = [
    "DistanceCost",
    "distance_cost",
    "auto_team_size",
    "hash_probe_cycles",
    "sort_cycles",
    "gather_cycles",
    "registers_per_thread",
    "occupancy_factor",
    "load_waste",
    "iteration_latency_cycles",
]

_ISSUE_CYCLES_LOAD = 4.0  # issue+address cycles per 128-bit load instruction
_CYCLES_FMA = 1.0
_CYCLES_SHUFFLE = 2.0
_BASE_REGISTERS = 40  # loop counters, pointers, buffer bookkeeping
_MAX_REGISTERS = 255  # per-thread architectural limit; beyond this, spills
_SPILL_PENALTY = 4.0  # local-memory spill slowdown factor
_BYTES_PER_LOAD_LANE = 16  # 128-bit vectorized load per thread


def registers_per_thread(dim: int, dtype_bytes: int, team_size: int) -> int:
    """Estimated register footprint of the distance pipeline per thread.

    Each thread stages ``dim/t`` elements of the query (kept in registers
    across all candidates) plus accumulators; 4 bytes per register.
    """
    staging = math.ceil(dim * dtype_bytes / (4 * team_size))
    return _BASE_REGISTERS + staging


@dataclass(frozen=True)
class DistanceCost:
    """Cost of one candidate-distance computation.

    Attributes:
        warp_cycles: warp-cycles per distance (already divided by the
            number of teams working concurrently in the warp).
        registers: per-thread register estimate.
        spilled: whether the register estimate exceeds the architectural
            limit (cost already includes the spill penalty).
        load_instructions: 128-bit loads issued per team.
    """

    warp_cycles: float
    registers: int
    spilled: bool
    load_instructions: int


def distance_cost(dim: int, dtype_bytes: int, team_size: int) -> DistanceCost:
    """Warp-cycles for one query↔candidate distance at a given team size."""
    if team_size not in (2, 4, 8, 16, 32):
        raise ValueError("team_size must be a power of two in [2, 32]")
    vector_bytes = dim * dtype_bytes
    loads = max(1, math.ceil(vector_bytes / (_BYTES_PER_LOAD_LANE * team_size)))
    fmas = math.ceil(dim / team_size)
    shuffles = int(math.log2(team_size))
    team_cycles = (
        loads * _ISSUE_CYCLES_LOAD + fmas * _CYCLES_FMA + shuffles * _CYCLES_SHUFFLE
    )
    teams_per_warp = 32 // team_size
    regs = registers_per_thread(dim, dtype_bytes, team_size)
    spilled = regs > _MAX_REGISTERS
    cycles = team_cycles / teams_per_warp
    if spilled:
        cycles *= _SPILL_PENALTY
    return DistanceCost(
        warp_cycles=cycles,
        registers=min(regs, _MAX_REGISTERS),
        spilled=spilled,
        load_instructions=loads,
    )


def auto_team_size(dim: int, dtype_bytes: int = 4, spec: GpuSpec | None = None) -> int:
    """Pick the cheapest team size for a dataset shape.

    This searches the same cost formula the simulator charges, including
    the occupancy effect of register pressure, so the choice matches what
    Fig. 8 measures (4–8 for 96-dim FP32, 32 for 960-dim).
    """
    spec = spec or GpuSpec()
    best, best_score = 8, float("inf")
    for team in (2, 4, 8, 16, 32):
        cost = distance_cost(dim, dtype_bytes, team)
        occupancy = occupancy_factor(cost.registers, spec)
        score = cost.warp_cycles / occupancy
        if score < best_score:
            best, best_score = team, score
    return best


def occupancy_factor(registers: int, spec: GpuSpec) -> float:
    """Fraction of peak resident warps achievable at a register footprint.

    ``registers_per_sm / (regs * warp_size)`` warps fit; normalized by the
    thread-count occupancy limit and clamped to (0, 1].
    """
    max_warps = spec.max_threads_per_sm // spec.warp_size
    fit_warps = spec.registers_per_sm // max(1, registers * spec.warp_size)
    return max(1.0 / max_warps, min(1.0, fit_warps / max_warps))


#: Long-latency device accesses additionally overlap across the CTA's other
#: warps and co-resident CTAs (the SM switches warps while a probe is in
#: flight), so only a fraction of the raw latency is exposed.
_DEVICE_LATENCY_HIDING = 4.0


def hash_probe_cycles(in_shared: bool, spec: GpuSpec) -> float:
    """Warp-cycles per hash-table probe.

    Latency is divided by the memory-level parallelism the warp sustains —
    32 lanes probe independent slots concurrently — and, for device
    memory, by the extra warp-switching overlap the SM provides.  Shared
    memory still wins (the paper's motivation for the forgettable table),
    but by the ~4x a real kernel sees rather than the raw latency ratio.
    """
    if in_shared:
        return spec.shared_mem_latency / spec.memory_parallelism
    return spec.device_mem_latency / (spec.memory_parallelism * _DEVICE_LATENCY_HIDING)


def sort_cycles(comparator_ops: int, radix_elements: int) -> float:
    """Warp-cycles for step ①'s sorting work.

    Bitonic comparators run 32 to a warp-cycle in registers; the CTA radix
    sort streams elements through shared memory at ~8 cycles each over 4
    warps (Sec. IV-B2's >512 path).
    """
    bitonic = comparator_ops * 1.5 / 32.0
    radix = radix_elements * 8.0 / 4.0 / 32.0 * 4.0  # 4 passes of 8-bit digits
    return bitonic + radix


def gather_cycles(indices: int, spec: GpuSpec) -> float:
    """Warp-cycles to gather neighbor-list indices from device memory."""
    return indices * spec.device_mem_latency / spec.memory_parallelism / 32.0


def load_waste(dim: int, dtype_bytes: int, team_size: int) -> float:
    """Fraction of loaded bytes that are padding.

    A team of ``t`` threads loads ``t * 16`` bytes per 128-bit load
    instruction; when the vector length is not a multiple of that
    granularity the tail load carries idle lanes — the inefficiency the
    paper's warp splitting removes (Sec. IV-B1's dim-96 example).
    """
    vector_bytes = dim * dtype_bytes
    granularity = team_size * _BYTES_PER_LOAD_LANE
    loaded = math.ceil(vector_bytes / granularity) * granularity
    return 1.0 - vector_bytes / loaded


def iteration_latency_cycles(
    dim: int, dtype_bytes: int, team_size: int, spec: GpuSpec
) -> float:
    """Exposed-latency cycles of one search iteration's critical path.

    Within an iteration the steps are dependent: gather the parent's
    neighbor list, then stream each candidate vector through the team in
    ``loads`` back-to-back 128-bit transactions.  More loads per vector
    (small teams) means a longer dependent chain, and register spills
    multiply it (spilled chunks round-trip local memory).
    """
    cost = distance_cost(dim, dtype_bytes, team_size)
    chain = (cost.load_instructions + 1) * spec.device_mem_latency
    if cost.spilled:
        chain *= _SPILL_PENALTY
    return chain
