"""Analytical GPU/CPU performance model — the testbed substitute.

The paper evaluates on an NVIDIA A100 (80 GB) and a 64-core AMD EPYC 7742.
Neither is available to a pure-Python reproduction, so this package prices
the *operation counters* that every search/build implementation in
:mod:`repro` emits (:class:`repro.core.search.CostReport`) into simulated
wall time, using the same first-order hardware reasoning the paper itself
uses to motivate its design choices:

* 128-bit vectorized loads and warp *teams* (Sec. IV-B1) —
  :func:`repro.gpusim.kernels.distance_cost` reproduces the
  team-size/dimension trade-off including the register-pressure penalty.
* shared- vs device-memory hash tables (Sec. IV-B3) — per-probe latencies
  differ by an order of magnitude.
* warp bitonic vs CTA radix sorting (Sec. IV-B2).
* CTA wave scheduling over a fixed number of SMs with occupancy limits —
  :mod:`repro.gpusim.executor`; this is what makes single- vs multi-CTA
  and batch-size effects (Figs. 7, 10, 13, 14) emerge.
* a bandwidth roofline — large-batch, high-dimension searches become
  memory-bound, which is why FP16 storage helps (Figs. 13, 14).

The models never influence algorithmic results; they only convert counters
into seconds.
"""

from repro.gpusim.device import A100_80GB, EPYC_7742, H100_80GB, CpuSpec, GpuSpec
from repro.gpusim.costmodel import GpuCostModel, CpuCostModel, SimulatedTiming

__all__ = [
    "A100_80GB",
    "H100_80GB",
    "EPYC_7742",
    "CpuSpec",
    "GpuSpec",
    "GpuCostModel",
    "CpuCostModel",
    "SimulatedTiming",
]
