"""CTA wave scheduling over the simulated GPU.

A kernel launch creates one CTA per query (single-CTA) or several per
query (multi-CTA).  CTAs are resident on SMs subject to occupancy limits —
threads, shared memory, registers, and a hard CTA cap — and execute in
*waves*: with room for ``C`` concurrent CTAs, ``n`` CTAs take
``ceil(n / C)`` sequential waves.

This is the piece of the model that produces the batch-size effects of the
paper: a single query in single-CTA mode occupies one SM and leaves the
rest idle (hence multi-CTA, Sec. IV-C2), while a 10K batch fills every SM
for many waves and throughput approaches the compute/bandwidth roofline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.device import GpuSpec

__all__ = ["KernelShape", "ctas_per_sm", "schedule_waves"]


@dataclass(frozen=True)
class KernelShape:
    """Resources one CTA of a kernel consumes."""

    threads_per_cta: int = 128
    shared_bytes_per_cta: int = 16 * 1024
    registers_per_thread: int = 64


def ctas_per_sm(shape: KernelShape, spec: GpuSpec) -> int:
    """Resident CTAs per SM under all four occupancy limits."""
    by_threads = spec.max_threads_per_sm // max(1, shape.threads_per_cta)
    by_shared = (
        spec.shared_mem_per_sm // shape.shared_bytes_per_cta
        if shape.shared_bytes_per_cta
        else spec.max_ctas_per_sm
    )
    by_registers = spec.registers_per_sm // max(
        1, shape.registers_per_thread * shape.threads_per_cta
    )
    return max(1, min(spec.max_ctas_per_sm, by_threads, by_shared, by_registers))


def schedule_waves(
    total_ctas: int, shape: KernelShape, spec: GpuSpec
) -> tuple[int, int]:
    """Waves needed for ``total_ctas`` and the CTA concurrency used.

    Returns ``(waves, concurrency)``; ``waves = ceil(total / concurrency)``
    with ``concurrency = num_sms * ctas_per_sm``.
    """
    if total_ctas < 1:
        raise ValueError("total_ctas must be >= 1")
    concurrency = spec.num_sms * ctas_per_sm(shape, spec)
    waves = math.ceil(total_ctas / concurrency)
    return waves, concurrency
