"""Counter → simulated-time conversion for searches and index builds.

:class:`GpuCostModel` prices a :class:`repro.core.search.CostReport`
against a :class:`repro.gpusim.device.GpuSpec` using the per-operation
formulas of :mod:`repro.gpusim.kernels` and the CTA wave scheduling of
:mod:`repro.gpusim.executor`, then applies a bandwidth roofline.

:class:`CpuCostModel` does the same for the CPU baselines (HNSW, NSSG):
graph traversal on a CPU is dominated by one cache-missing vector fetch
per candidate plus SIMD distance arithmetic, parallelized over up to
``cores`` threads for batched queries.

Neither model ever changes algorithmic results — they only interpret the
operation counters the real (NumPy) implementations produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.search import CostReport
from repro.gpusim.device import A100_80GB, EPYC_7742, CpuSpec, GpuSpec
from repro.gpusim.executor import KernelShape, schedule_waves
from repro.gpusim import kernels

__all__ = ["SimulatedTiming", "GpuCostModel", "CpuCostModel"]


@dataclass
class SimulatedTiming:
    """Simulated wall time with its roofline breakdown.

    Attributes:
        seconds: final simulated time (``max(compute, bandwidth) + launch``).
        compute_seconds: CTA-wave compute time.
        bandwidth_seconds: device-memory roofline time.
        launch_seconds: kernel launch overhead.
        breakdown: per-operation-class warp-cycle totals (diagnostics).
        waves: CTA waves executed.
        concurrency: CTAs resident at once.
    """

    seconds: float
    compute_seconds: float
    bandwidth_seconds: float
    launch_seconds: float
    breakdown: dict[str, float] = field(default_factory=dict)
    waves: int = 1
    concurrency: int = 1

    def qps(self, batch_size: int) -> float:
        """Queries per second for a batch processed in this time."""
        return batch_size / self.seconds if self.seconds > 0 else float("inf")


class GpuCostModel:
    """Prices CAGRA search and build counters on a GPU spec."""

    #: threads per CTA by implementation (single-CTA kernels are wider).
    _BLOCK_THREADS = {"single_cta": 128, "multi_cta": 64}

    def __init__(self, spec: GpuSpec = A100_80GB):
        self.spec = spec

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search_time(
        self,
        report: CostReport,
        dim: int,
        dtype_bytes: int = 4,
        team_size: int = 0,
        itopk: int = 64,
        search_width: int = 1,
        mem_efficiency: float = 0.9,
    ) -> SimulatedTiming:
        """Simulated time of one search kernel launch over a whole batch.

        ``mem_efficiency`` is the fraction of peak device bandwidth the
        kernel's vector loads sustain.  CAGRA's team-based 128-bit loads
        are near-perfectly coalesced (default 0.9); pre-CAGRA kernels that
        load vectors with plain word accesses sustain far less — the beam
        baselines are priced at 0.3 (see :func:`repro.bench.harness.run_beam_sweep_gpu`).
        """
        spec = self.spec
        team = team_size or kernels.auto_team_size(dim, dtype_bytes, spec)
        dcost = kernels.distance_cost(dim, dtype_bytes, team)
        threads_per_cta = self._BLOCK_THREADS.get(report.algo, 128)
        warps_per_cta = max(1, threads_per_cta // spec.warp_size)

        probe_cost = kernels.hash_probe_cycles(report.hash_in_shared, spec)
        # SIMT lockstep: a hash-hit candidate still occupies its team's
        # pipeline slot in the distance step (only the memory traffic is
        # saved), so compute is charged per candidate *slot*.
        distance_slots = (
            report.distance_computations + report.skipped_distance_computations
        )
        distance_cycles = distance_slots * dcost.warp_cycles / warps_per_cta
        hash_cycles = report.hash_probes * probe_cost / warps_per_cta
        # Forgettable resets wipe + re-register in shared memory.
        reset_cycles = report.hash_resets * (1 << report.hash_log2_size) / (
            threads_per_cta * 4
        )
        sort = kernels.sort_cycles(report.sort_comparator_ops, report.radix_sorted_elements)
        queue = report.serial_queue_ops * 4.0  # serialized shared-mem heap updates
        gather = kernels.gather_cycles(report.candidate_gathers, spec)
        total_cycles = distance_cycles + hash_cycles + reset_cycles + sort + queue + gather
        cta_count = max(1, report.cta_count)
        per_cta_cycles = total_cycles / cta_count

        shared_bytes = self._shared_bytes_per_cta(report, itopk, search_width)
        shape = KernelShape(
            threads_per_cta=threads_per_cta,
            shared_bytes_per_cta=shared_bytes,
            registers_per_thread=dcost.registers,
        )
        waves, concurrency = schedule_waves(cta_count, shape, spec)
        compute_seconds = spec.cycles_to_seconds(waves * per_cta_cycles)

        # Latency roofline: each iteration's dependent chain (neighbor
        # gather -> per-vector load train) cannot be hidden inside one
        # CTA; small teams lengthen the chain, register spills multiply it.
        iterations_per_cta = report.iterations / cta_count
        chain = kernels.iteration_latency_cycles(dim, dtype_bytes, team, spec)
        latency_seconds = spec.cycles_to_seconds(
            waves * iterations_per_cta * chain
        )

        # DRAM traffic: first-time vector loads pay full price; vectors
        # recomputed after a forgettable reset were read moments earlier
        # and hit the 40 MB L2 (multiple times the HBM bandwidth, and the
        # reloads overlap with other warps' DRAM traffic — priced at 10%);
        # device-memory hash probes are uncoalesced 4-byte accesses that
        # each pull a 32-byte DRAM sector.
        first_time = report.distance_computations - report.recomputed_distances
        # Team-size load waste inflates vector traffic (tail loads carry
        # idle lanes when the vector is not a multiple of team*16 bytes).
        waste = kernels.load_waste(dim, dtype_bytes, team)
        vector_scale = 1.0 / max(1e-6, 1.0 - waste)
        bytes_moved = (
            first_time * dim * dtype_bytes * vector_scale
            + report.recomputed_distances * dim * dtype_bytes * 0.1 * vector_scale
            + report.candidate_gathers * 4
            + (0 if report.hash_in_shared else report.hash_probes * 32)
        )
        bandwidth_seconds = bytes_moved / (
            spec.mem_bandwidth_gbps * 1e9 * max(0.05, min(1.0, mem_efficiency))
        )
        launch = report.kernel_launches * spec.kernel_launch_seconds
        return SimulatedTiming(
            seconds=max(compute_seconds, latency_seconds, bandwidth_seconds) + launch,
            compute_seconds=compute_seconds,
            bandwidth_seconds=bandwidth_seconds,
            launch_seconds=launch,
            breakdown={
                "distance": distance_cycles,
                "hash": hash_cycles,
                "hash_reset": reset_cycles,
                "sort": sort,
                "queue": queue,
                "gather": gather,
                "team_size": team,
                "registers": dcost.registers,
                "latency_seconds": latency_seconds,
            },
            waves=waves,
            concurrency=concurrency,
        )

    def _shared_bytes_per_cta(
        self, report: CostReport, itopk: int, search_width: int
    ) -> int:
        buffer_bytes = (itopk + search_width * 64) * 8  # id+distance pairs
        hash_bytes = (1 << report.hash_log2_size) * 4 if report.hash_in_shared else 0
        return buffer_bytes + hash_bytes

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    #: Amortized cost of one adjacency-list entry update per NN-descent
    #: round: scattered reads, compare-exchange, and atomic flag traffic —
    #: the irregular part that dominates real GPU NN-descent wall time.
    _NND_UPDATE_SECONDS_PER_ENTRY = 6e-9

    def knn_build_time(
        self,
        distance_computations: int,
        dim: int,
        dtype_bytes: int = 4,
        num_nodes: int = 0,
        k: int = 0,
        iterations: int = 0,
        efficiency: float = 0.5,
        update_seconds_per_entry: float = 0.0,
    ) -> float:
        """Simulated NN-descent build time on the GPU.

        Two components: batched candidate-distance arithmetic (compute/
        bandwidth roofline at ~half of peak) and the per-round adjacency
        list updates, which are scattered and latency-bound and dominate
        measured GPU NN-descent times.  The update term is charged when
        the caller provides the graph shape (``num_nodes``, ``k``,
        ``iterations``).

        ``efficiency`` is the fraction of peak arithmetic the distance
        kernels sustain (CAGRA's fused NN-descent ~0.5; pre-CAGRA
        builders with separate, uncoalesced kernels much less) and
        ``update_seconds_per_entry`` overrides the per-entry update cost
        (multi-pass hierarchical restructuring pays several times the
        fused update's price).
        """
        flops = distance_computations * dim * 2.0
        compute = flops / (self.spec.fp32_tflops * 1e12 * max(0.01, efficiency))
        bytes_moved = distance_computations * dim * dtype_bytes
        # Inefficient (uncoalesced, multi-pass) kernels also waste
        # bandwidth; full bandwidth is reached at efficiency >= 0.5.
        bandwidth = bytes_moved / (
            self.spec.mem_bandwidth_gbps * 1e9 * min(1.0, 2.0 * max(0.01, efficiency))
        )
        updates = 0.0
        if num_nodes and k and iterations:
            per_entry = update_seconds_per_entry or self._NND_UPDATE_SECONDS_PER_ENTRY
            updates = iterations * num_nodes * k * per_entry
        return max(compute, bandwidth) + updates

    #: Cycles per detour check: neighbor-row binary search + atomic count
    #: increment.  The rank-based variant compares integer ranks it already
    #: has; the distance-based variant additionally fetches three table
    #: distances (w_XZ, w_ZY, w_XY) — the paper measures the resulting
    #: end-to-end gap at up to 1.9x.
    _CHECK_CYCLES_RANK = 8.0
    _CHECK_CYCLES_DISTANCE = 14.0

    def optimize_time(
        self, detour_checks: int, num_nodes: int, degree: int,
        distance_computations: int = 0, dim: int = 0,
        distance_based: bool = False,
    ) -> float:
        """Simulated graph-optimization time (reorder + reverse merge).

        The detour-counting kernel is latency/atomic-bound, one check per
        lane across the whole GPU.  ``distance_based=True`` (or legacy: a
        nonzero ``distance_computations``) prices the table variant —
        extra distance fetches per check plus the table build pass.
        """
        spec = self.spec
        distance_based = distance_based or bool(distance_computations)
        lanes = spec.num_sms * 128  # resident lanes doing checks
        per_check = (
            self._CHECK_CYCLES_DISTANCE if distance_based else self._CHECK_CYCLES_RANK
        )
        reorder = detour_checks * per_check / lanes / (spec.clock_ghz * 1e9)
        reverse = (num_nodes * degree * 16.0) / (spec.mem_bandwidth_gbps * 1e9)
        table_build = 0.0
        if distance_based and dim:
            # One write+read pass over the N x d_init float table.
            table_bytes = 2.0 * detour_checks / max(1, degree) * 4.0
            table_build = table_bytes / (spec.mem_bandwidth_gbps * 1e9)
        return reorder + reverse + table_build

    def fits_in_memory(self, bytes_needed: int) -> bool:
        """Device-memory capacity check (the Fig. 4 OOM reproduction)."""
        return bytes_needed <= self.spec.device_mem_bytes


class CpuCostModel:
    """Prices CPU-baseline search/build counters (HNSW, NSSG)."""

    def __init__(self, spec: CpuSpec = EPYC_7742):
        self.spec = spec

    def search_time(
        self,
        distance_computations: int,
        hops: int,
        dim: int,
        batch_size: int,
        threads: int = 0,
        dtype_bytes: int = 4,
    ) -> SimulatedTiming:
        """Simulated batched-search time on the CPU.

        Per candidate: scalar bookkeeping (priority-queue push/pop,
        visited-set lookup, branching — what actually dominates hnswlib),
        one cache-missing vector fetch, and SIMD distance arithmetic; per
        hop: one dependent pointer chase.  Queries parallelize over
        ``threads`` (default: min(batch, cores), matching the paper's
        "best thread count up to 64" methodology) at the spec's scaling
        efficiency, under a socket-bandwidth roofline for vector traffic.
        """
        spec = self.spec
        threads = threads or min(batch_size, spec.cores)
        threads = max(1, min(threads, spec.cores))
        flops = distance_computations * dim * 2.0
        arithmetic = flops / spec.flops_per_second(threads)
        overhead = distance_computations * spec.candidate_overhead_seconds
        misses = (distance_computations + hops) * spec.cache_miss_seconds
        effective_threads = max(1.0, threads * spec.thread_efficiency)
        serial = (overhead + misses) / effective_threads
        bandwidth = (
            distance_computations * dim * dtype_bytes
        ) / (spec.mem_bandwidth_gbps * 1e9)
        sync = batch_size * spec.thread_sync_seconds / threads if threads > 1 else 0.0
        seconds = max(arithmetic + serial, bandwidth) + sync
        return SimulatedTiming(
            seconds=seconds,
            compute_seconds=arithmetic + serial,
            bandwidth_seconds=bandwidth,
            launch_seconds=sync,
            breakdown={"threads": threads},
        )

    def build_time(
        self,
        distance_computations: int,
        hops: int,
        dim: int,
        threads: int = 0,
    ) -> float:
        """Simulated index-construction time on the CPU.

        HNSW insertions parallelize well (hnswlib builds multi-threaded);
        the traversal component is latency-bound just like search.
        """
        spec = self.spec
        threads = threads or spec.cores
        threads = max(1, min(threads, spec.cores))
        flops = distance_computations * dim * 2.0
        arithmetic = flops / spec.flops_per_second(threads)
        overhead = distance_computations * spec.candidate_overhead_seconds
        misses = (distance_computations + hops) * spec.cache_miss_seconds
        effective_threads = max(1.0, threads * spec.thread_efficiency)
        return arithmetic + (overhead + misses) / effective_threads
