"""HNSW (Malkov & Yashunin, 2018) — the CPU state-of-the-art baseline.

A from-scratch implementation of Hierarchical Navigable Small World
graphs with the pieces the CAGRA paper contrasts itself against:

* exponentially-sampled layer assignment (``mL = 1/ln(M)``);
* greedy descent through the upper layers to find the entry point — the
  hierarchy CAGRA replaces with random sampling;
* ``ef``-bounded best-first search on each layer;
* the *heuristic* neighbor selection of Algorithm 4 (keep a candidate only
  if it is closer to the inserted point than to any already-kept
  neighbor), with ``M`` links per node on upper layers and ``2M`` on the
  base layer, shrinking overfull lists with the same heuristic.

Build and search record distance/hop counters compatible with
:class:`repro.gpusim.costmodel.CpuCostModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.beam import BeamCounters
from repro.core.distances import distances_to_query

__all__ = ["HnswBuildStats", "HnswIndex"]


@dataclass
class HnswBuildStats:
    """Construction work counters."""

    distance_computations: int = 0
    hops: int = 0
    max_level: int = 0
    level_sizes: list[int] = field(default_factory=list)


class HnswIndex:
    """Hierarchical Navigable Small World index.

    Args:
        data: ``(N, dim)`` dataset (vectors are referenced, not copied).
        m: links per node on layers > 0 (``M``); base layer keeps ``2M``.
        ef_construction: beam width during insertion.
        metric: distance metric.
        seed: RNG seed for level sampling.
    """

    def __init__(
        self,
        data: np.ndarray,
        m: int = 16,
        ef_construction: int = 100,
        metric: str = "sqeuclidean",
        seed: int = 0,
    ):
        if m < 2:
            raise ValueError("m must be >= 2")
        self.data = np.asarray(data)
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.metric = metric
        self._ml = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        self.entry_point: int = -1
        self.max_level: int = -1
        # layers[l] maps node -> np.ndarray of neighbor ids.
        self.layers: list[dict[int, np.ndarray]] = []
        self.build_stats = HnswBuildStats()
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "HnswIndex":
        """Insert every vector; returns self."""
        for node in range(self.data.shape[0]):
            self._insert(node)
        self.build_stats.max_level = self.max_level
        self.build_stats.level_sizes = [len(layer) for layer in self.layers]
        self._built = True
        return self

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._ml)

    def _insert(self, node: int) -> None:
        level = self._random_level()
        while len(self.layers) <= level:
            self.layers.append({})
        if self.entry_point < 0:
            for l in range(level + 1):
                self.layers[l][node] = np.empty(0, dtype=np.int64)
            self.entry_point = node
            self.max_level = level
            return

        query = self.data[node]
        ep = self.entry_point
        stats = self.build_stats

        # Greedy descent through layers above the node's level.
        for l in range(self.max_level, level, -1):
            ep = self._greedy_closest(query, ep, l, stats)

        # ef-bounded search + heuristic linking on the node's layers.
        for l in range(min(level, self.max_level), -1, -1):
            pool = self._search_layer(query, [ep], l, self.ef_construction, stats)
            m_here = self.m0 if l == 0 else self.m
            chosen = self._select_heuristic(query, pool, self.m, stats)
            self.layers[l][node] = np.array([c for _, c in chosen], dtype=np.int64)
            for dist, other in chosen:
                self._link(other, node, dist, m_here, l, stats)
            ep = pool[0][1]
        for l in range(min(level, self.max_level) + 1, level + 1):
            self.layers[l][node] = np.empty(0, dtype=np.int64)

        if level > self.max_level:
            self.max_level = level
            self.entry_point = node

    def _link(
        self, node: int, new_neighbor: int, dist: float, m_max: int, level: int,
        stats: HnswBuildStats,
    ) -> None:
        """Add ``new_neighbor`` to ``node``'s list, shrinking heuristically."""
        current = self.layers[level].get(node)
        if current is None:
            self.layers[level][node] = np.array([new_neighbor], dtype=np.int64)
            return
        if len(current) < m_max:
            self.layers[level][node] = np.append(current, new_neighbor)
            return
        cand_ids = np.append(current, new_neighbor)
        dists = distances_to_query(self.data, self.data[node], cand_ids, self.metric)
        stats.distance_computations += len(cand_ids)
        pool = sorted(zip(dists.tolist(), cand_ids.tolist()))
        chosen = self._select_heuristic(self.data[node], pool, m_max, stats)
        self.layers[level][node] = np.array([c for _, c in chosen], dtype=np.int64)

    def _select_heuristic(
        self,
        query: np.ndarray,
        pool: list[tuple[float, int]],
        m: int,
        stats: HnswBuildStats | None,
    ) -> list[tuple[float, int]]:
        """Algorithm 4: keep a candidate only if it is closer to the query
        than to every already-kept neighbor (edge diversity)."""
        chosen: list[tuple[float, int]] = []
        for dist, cand in sorted(pool):
            if len(chosen) >= m:
                break
            keep = True
            if chosen:
                kept_ids = np.array([c for _, c in chosen], dtype=np.int64)
                to_kept = distances_to_query(
                    self.data, self.data[cand], kept_ids, self.metric
                )
                if stats is not None:
                    stats.distance_computations += len(kept_ids)
                keep = bool(np.all(to_kept >= dist))
            if keep:
                chosen.append((dist, cand))
        # Fall back to nearest-first if the heuristic was too aggressive.
        if len(chosen) < min(m, len(pool)):
            have = {c for _, c in chosen}
            for dist, cand in sorted(pool):
                if len(chosen) >= m:
                    break
                if cand not in have:
                    chosen.append((dist, cand))
                    have.add(cand)
        return chosen

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _greedy_closest(
        self, query: np.ndarray, start: int, level: int, stats
    ) -> int:
        """Hill-climb to the locally closest node on one layer."""
        current = start
        current_dist = float(
            distances_to_query(self.data, query, np.array([start]), self.metric)[0]
        )
        stats.distance_computations += 1
        improved = True
        while improved:
            improved = False
            neighbors = self.layers[level].get(current)
            if neighbors is None or len(neighbors) == 0:
                break
            dists = distances_to_query(self.data, query, neighbors, self.metric)
            stats.distance_computations += len(neighbors)
            stats.hops += 1
            best = int(np.argmin(dists))
            if float(dists[best]) < current_dist:
                current = int(neighbors[best])
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entry_points: list[int], level: int, ef: int, stats
    ) -> list[tuple[float, int]]:
        """ef-bounded best-first search on one layer; returns a sorted pool."""
        import heapq

        eps = list(dict.fromkeys(entry_points))
        dists = distances_to_query(
            self.data, query, np.array(eps, dtype=np.int64), self.metric
        )
        stats.distance_computations += len(eps)
        visited = set(eps)
        frontier = [(float(d), e) for d, e in zip(dists, eps)]
        heapq.heapify(frontier)
        pool = sorted(frontier)[:ef]
        worst = pool[-1][0] if len(pool) >= ef else np.inf

        while frontier:
            dist, node = heapq.heappop(frontier)
            if dist > worst and len(pool) >= ef:
                break
            stats.hops += 1
            neighbors = self.layers[level].get(node)
            if neighbors is None or len(neighbors) == 0:
                continue
            fresh = np.array(
                [n for n in neighbors if int(n) not in visited], dtype=np.int64
            )
            if len(fresh) == 0:
                continue
            visited.update(int(n) for n in fresh)
            nd = distances_to_query(self.data, query, fresh, self.metric)
            stats.distance_computations += len(fresh)
            for d, n in zip(nd, fresh):
                d = float(d)
                if len(pool) < ef or d < worst:
                    pool.append((d, int(n)))
                    pool.sort()
                    del pool[ef:]
                    worst = pool[-1][0] if len(pool) >= ef else np.inf
                    heapq.heappush(frontier, (d, int(n)))
        return pool

    def search(
        self, queries: np.ndarray, k: int, ef: int = 64
    ) -> tuple[np.ndarray, np.ndarray, BeamCounters]:
        """Batched k-ANN search; ``ef`` is the recall/throughput knob."""
        if not self._built:
            raise RuntimeError("call build() before search()")
        if k > ef:
            ef = k
        queries = np.atleast_2d(queries)
        counters = BeamCounters()
        ids = np.empty((queries.shape[0], k), dtype=np.uint32)
        dists = np.empty((queries.shape[0], k), dtype=np.float64)
        for i in range(queries.shape[0]):
            stats = BeamCounters()
            stats.queries = 1
            ep = self.entry_point
            for l in range(self.max_level, 0, -1):
                ep = self._greedy_closest(queries[i], ep, l, stats)
            pool = self._search_layer(queries[i], [ep], 0, ef, stats)
            top = pool[:k]
            row_ids = [n for _, n in top]
            row_dists = [d for d, _ in top]
            while len(row_ids) < k:
                row_ids.append(0)
                row_dists.append(np.inf)
            ids[i] = np.array(row_ids, dtype=np.uint32)
            dists[i] = row_dists
            counters.merge_from(stats)
        return ids, dists, counters

    @property
    def base_degree_mean(self) -> float:
        """Average out-degree of the base layer (for degree alignment)."""
        sizes = [len(v) for v in self.layers[0].values()]
        return float(np.mean(sizes)) if sizes else 0.0
