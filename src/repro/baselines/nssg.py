"""NSSG (Fu et al., TPAMI 2022) — the graph whose pipeline CAGRA's most
resembles (Sec. V: both build an explicit k-NN graph first and both start
search from random samples).

Construction: starting from a k-NN graph, each node gathers a candidate
pool (its neighbors plus 2-hop expansion), then prunes it with the
*angular* criterion — a candidate is kept only if the angle it forms at
the node with every already-kept neighbor exceeds a threshold (60° in the
NSSG paper), which spreads edges in all directions like satellite orbits.
Reverse edges are added up to the degree bound, and random spanning-tree
edges patch disconnected nodes.

Search: best-first beam from random seeds (:func:`nssg_search` also runs
on *any* adjacency array, which is how Fig. 12 evaluates a CAGRA graph
"converted to NSSG format" under the NSSG searcher).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.beam import BeamCounters, beam_search
from repro.core.distances import distances_to_query
from repro.core.graph import FixedDegreeGraph
from repro.core.nn_descent import KnnGraphResult

__all__ = ["NssgBuildStats", "NssgIndex", "nssg_search"]


@dataclass
class NssgBuildStats:
    """Construction work counters."""

    distance_computations: int = 0
    pool_sizes_mean: float = 0.0
    patched_nodes: int = 0


class NssgIndex:
    """Navigating Satellite System Graph.

    Args:
        data: dataset.
        knn: initial k-NN graph (reused from NN-descent, as NSSG does).
        degree_bound: maximum out-degree ``R``.
        pool_size: candidate pool length ``L`` per node.
        angle_degrees: minimum pairwise edge angle (NSSG default 60°).
        metric: distance metric.
        seed: RNG seed for 2-hop sampling / patching.
    """

    def __init__(
        self,
        data: np.ndarray,
        knn: KnnGraphResult,
        degree_bound: int = 32,
        pool_size: int = 100,
        angle_degrees: float = 60.0,
        metric: str = "sqeuclidean",
        seed: int = 0,
    ):
        self.data = np.asarray(data)
        self.knn = knn
        self.degree_bound = degree_bound
        self.pool_size = pool_size
        self.cos_threshold = math.cos(math.radians(angle_degrees))
        self.metric = metric
        self.seed = seed
        self.adjacency: list[np.ndarray] = []
        self.build_stats = NssgBuildStats()
        self._built = False

    # ------------------------------------------------------------------
    def build(self) -> "NssgIndex":
        """Prune every node's pool angularly, add reverse edges, patch."""
        rng = np.random.default_rng(self.seed)
        n = self.data.shape[0]
        neighbors = self.knn.graph.neighbors
        stats = self.build_stats
        pool_total = 0

        kept: list[list[int]] = []
        for node in range(n):
            pool = self._candidate_pool(node, neighbors, rng)
            pool_total += len(pool)
            kept.append(self._angular_prune(node, pool, stats))
        stats.pool_sizes_mean = pool_total / max(1, n)

        # Reverse edges up to the degree bound.
        adjacency = [list(dict.fromkeys(row)) for row in kept]
        for src, row in enumerate(kept):
            for dst in row:
                if len(adjacency[dst]) < self.degree_bound and src not in adjacency[dst]:
                    adjacency[dst].append(src)

        # Patch unreachable nodes with a random incoming edge (NSSG's
        # spanning-tree step, simplified to random attachment).
        in_degree = np.zeros(n, dtype=np.int64)
        for row in adjacency:
            for dst in row:
                in_degree[dst] += 1
        for node in np.nonzero(in_degree == 0)[0]:
            donor = int(rng.integers(0, n))
            if donor != node:
                adjacency[donor].append(int(node))
                stats.patched_nodes += 1

        self.adjacency = [np.array(row[: self.degree_bound], dtype=np.int64) for row in adjacency]
        self._built = True
        return self

    def _candidate_pool(
        self, node: int, neighbors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Neighbors plus sampled 2-hop expansion, distance-sorted, <= L."""
        one_hop = neighbors[node].astype(np.int64)
        two_hop = neighbors[one_hop].ravel().astype(np.int64)
        if len(two_hop) > self.pool_size:
            two_hop = rng.choice(two_hop, size=self.pool_size, replace=False)
        pool = np.unique(np.concatenate([one_hop, two_hop]))
        pool = pool[pool != node]
        dists = distances_to_query(self.data, self.data[node], pool, self.metric)
        self.build_stats.distance_computations += len(pool)
        order = np.argsort(dists, kind="stable")[: self.pool_size]
        return pool[order]

    def _angular_prune(
        self, node: int, pool: np.ndarray, stats: NssgBuildStats
    ) -> list[int]:
        """Keep candidates whose pairwise angles at ``node`` exceed the
        threshold; nearest-first (satellite-system spreading)."""
        origin = self.data[node].astype(np.float64)
        kept: list[int] = []
        kept_dirs: list[np.ndarray] = []
        for cand in pool:
            if len(kept) >= self.degree_bound:
                break
            direction = self.data[int(cand)].astype(np.float64) - origin
            # Geometric normalization of an edge direction, not a query
            # distance — no CostReport charge applies.
            # repro-lint: disable=RL004 — uncounted geometric norm
            norm = np.linalg.norm(direction)
            if norm == 0.0:
                continue
            direction /= norm
            ok = True
            for kd in kept_dirs:
                stats.distance_computations += 1
                # Unit-vector angle test, explicitly counted one line up.
                # repro-lint: disable=RL004 — counted via stats above
                if float(direction @ kd) > self.cos_threshold:
                    ok = False
                    break
            if ok:
                kept.append(int(cand))
                kept_dirs.append(direction)
        return kept

    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        beam_width: int = 64,
        num_seeds: int = 16,
        seed: int = 0,
    ) -> tuple[np.ndarray, np.ndarray, BeamCounters]:
        """Random-seeded beam search on the built graph."""
        if not self._built:
            raise RuntimeError("call build() before search()")
        return nssg_search(
            self.data,
            self.adjacency,
            queries,
            k,
            beam_width=beam_width,
            num_seeds=num_seeds,
            metric=self.metric,
            seed=seed,
        )

    @property
    def average_degree(self) -> float:
        return float(np.mean([len(row) for row in self.adjacency]))


def nssg_search(
    data: np.ndarray,
    adjacency,
    queries: np.ndarray,
    k: int,
    beam_width: int = 64,
    num_seeds: int = 16,
    metric: str = "sqeuclidean",
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, BeamCounters]:
    """NSSG's search procedure over any adjacency structure.

    This is the "NSSG search implementation" of Fig. 12: random seed
    sampling followed by best-first beam search.  ``adjacency`` may be an
    ``(N, d)`` array (e.g. a CAGRA graph) or a list of id arrays (a native
    NSSG graph).
    """
    queries = np.atleast_2d(queries)
    if isinstance(adjacency, FixedDegreeGraph):
        adjacency = adjacency.neighbors
    n = len(adjacency)
    rng = np.random.default_rng(seed)
    counters = BeamCounters()
    ids = np.empty((queries.shape[0], k), dtype=np.uint32)
    dists = np.empty((queries.shape[0], k), dtype=np.float64)
    for i in range(queries.shape[0]):
        seeds = rng.integers(0, n, size=num_seeds)
        ids[i], dists[i] = beam_search(
            data, adjacency, queries[i], k, beam_width, seeds, metric, counters
        )
    return ids, dists, counters
