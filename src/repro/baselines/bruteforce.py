"""Exact (brute-force) k-NN search — the recall ground truth (Eq. 2)."""

from __future__ import annotations

import numpy as np

from repro.core.distances import pairwise_distances

__all__ = ["exact_search"]


def exact_search(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: str = "sqeuclidean",
    block: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-k by blocked exhaustive scan.

    Returns ``(indices, distances)`` of shapes ``(n_queries, k)``, sorted
    ascending by distance.  Blocked over queries so memory stays at
    ``block × N`` floats.
    """
    queries = np.atleast_2d(queries)
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")
    indices = np.empty((queries.shape[0], k), dtype=np.uint32)
    distances = np.empty((queries.shape[0], k), dtype=np.float64)
    for start in range(0, queries.shape[0], block):
        stop = min(start + block, queries.shape[0])
        d = pairwise_distances(queries[start:stop], data, metric=metric)
        part = np.argpartition(d, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(d, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        indices[start:stop] = np.take_along_axis(part, order, axis=1).astype(np.uint32)
        distances[start:stop] = np.take_along_axis(part_d, order, axis=1)
    return indices, distances
