"""GGNN-like GPU baseline (Groh et al., IEEE Big Data 2022).

GGNN builds its graph hierarchically: the dataset is split into small
shards whose exact k-NN graphs are cheap to build in parallel on the GPU,
then shards are merged bottom-up, refining every node's neighbor list by
searching the merged graph.  Search is a per-query best-first traversal
(one query per thread block, fixed-degree graph, device-memory visited
set) without CAGRA's team splitting, forgettable hashing or buffer-based
top-M maintenance — precisely the gap the paper measures in Figs. 11/13.

This implementation keeps that structure: exact intra-shard graphs, a
beam-search refinement pass per node over the merged graph, fixed degree,
and operation counters that the GPU cost model prices with ``team_size=32``
and a device-memory hash (see :mod:`repro.bench.harness`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.beam import BeamCounters, beam_search
from repro.core.distances import gathered_distances, pairwise_distances
from repro.core.graph import FixedDegreeGraph

__all__ = ["GgnnBuildStats", "GgnnIndex"]


@dataclass
class GgnnBuildStats:
    """Construction work counters."""

    distance_computations: int = 0
    hops: int = 0
    num_shards: int = 0


class GgnnIndex:
    """GGNN-like index: sharded exact graphs + search-based merge refinement.

    Args:
        data: dataset.
        degree: fixed out-degree of the final graph (``KBuild`` in GGNN).
        shard_size: points per leaf shard (exact graphs inside).
        refine_beam: beam width of the merge-refinement searches.
        refine_rounds: merge-refinement passes (GGNN's hierarchy depth
            analogue; each pass searches the previous pass's graph).
        metric: distance metric.
        seed: shard shuffling seed.
    """

    def __init__(
        self,
        data: np.ndarray,
        degree: int = 24,
        shard_size: int = 512,
        refine_beam: int = 32,
        refine_rounds: int = 2,
        metric: str = "sqeuclidean",
        seed: int = 0,
    ):
        self.data = np.asarray(data)
        self.degree = min(degree, self.data.shape[0] - 1)
        self.shard_size = max(shard_size, self.degree + 1)
        self.refine_beam = max(refine_beam, self.degree)
        self.refine_rounds = max(1, refine_rounds)
        self.metric = metric
        self.seed = seed
        self.graph: FixedDegreeGraph | None = None
        self.build_stats = GgnnBuildStats()

    def build(self) -> "GgnnIndex":
        """Shard → exact intra-shard graphs → beam-refine over the union."""
        n = self.data.shape[0]
        rng = np.random.default_rng(self.seed)
        permutation = rng.permutation(n)
        stats = self.build_stats
        neighbors = np.zeros((n, self.degree), dtype=np.int64)

        # Stage 1: exact k-NN graphs inside each shard.
        shards = [
            permutation[start : start + self.shard_size]
            for start in range(0, n, self.shard_size)
        ]
        stats.num_shards = len(shards)
        for shard in shards:
            d = pairwise_distances(self.data[shard], self.data[shard], self.metric)
            stats.distance_computations += len(shard) * len(shard)
            np.fill_diagonal(d, np.inf)
            take = min(self.degree, len(shard) - 1)
            part = np.argpartition(d, take - 1, axis=1)[:, :take]
            part_d = np.take_along_axis(d, part, axis=1)
            order = np.argsort(part_d, axis=1, kind="stable")
            local = np.take_along_axis(part, order, axis=1)
            rows = shard[local]  # map shard-local ids to global
            if take < self.degree:  # tiny trailing shard: pad by repetition
                rows = np.pad(rows, ((0, 0), (0, self.degree - take)), mode="edge")
            neighbors[shard] = rows

        # Stage 2a: cross-shard linking — every node searches the stitched
        # graph from random seeds and merges what it finds (this is what
        # first connects the shards).
        counters = BeamCounters()
        for node in range(n):
            seeds = np.concatenate([neighbors[node][:4], rng.integers(0, n, size=8)])
            ids, _ = beam_search(
                self.data,
                neighbors,
                self.data[node],
                min(self.refine_beam, n - 1),
                self.refine_beam,
                seeds,
                self.metric,
                counters,
            )
            found = ids[ids != node].astype(np.int64)
            merged = np.concatenate([neighbors[node], found])
            _, keep = np.unique(merged, return_index=True)
            merged = merged[np.sort(keep)]
            dists = pairwise_distances(
                self.data[node : node + 1], self.data[merged], self.metric
            )[0]
            stats.distance_computations += len(merged)
            order = np.argsort(dists, kind="stable")[: self.degree]
            row = merged[order]
            if len(row) < self.degree:
                row = np.pad(row, (0, self.degree - len(row)), mode="edge")
            neighbors[node] = row
        stats.distance_computations += counters.distance_computations
        stats.hops += counters.hops

        # Stage 2b: neighborhood-propagation sweeps (GGNN's bottom-up
        # merges net out to this): each node re-ranks its 2-hop pool and
        # keeps the nearest ``degree``, batched over blocks.
        for _ in range(self.refine_rounds):
            neighbors = self._two_hop_sweep(neighbors, stats)

        # Reverse-edge pass: guarantee in-links so no node is unreachable
        # (GGNN symmetrizes during its merge step).
        for node in range(n):
            target = int(neighbors[node][0])
            if node not in neighbors[target]:
                neighbors[target][-1] = node

        # Top of the hierarchy: a coarse random subset used as search entry
        # points (GGNN descends its layer hierarchy to seed the base-layer
        # traversal; a nearest-of-coarse-sample scan is that descent's
        # net effect).
        coarse_size = min(n, max(32, 4 * int(np.sqrt(n))))
        self.coarse_ids = rng.choice(n, size=coarse_size, replace=False).astype(np.int64)

        self.graph = FixedDegreeGraph(neighbors.astype(np.uint32))
        return self

    def _two_hop_sweep(
        self, neighbors: np.ndarray, stats: GgnnBuildStats, block: int = 512
    ) -> np.ndarray:
        """One vectorized refinement sweep: each node keeps the nearest
        ``degree`` nodes of its (self ∪ 1-hop ∪ 2-hop) pool."""
        n = neighbors.shape[0]
        out = neighbors.copy()
        for start in range(0, n, block):
            stop = min(start + block, n)
            rows = np.arange(start, stop)
            pool = np.concatenate(
                [neighbors[start:stop], neighbors[neighbors[start:stop]].reshape(stop - start, -1)],
                axis=1,
            )
            # Mask self ids by replacing them with the first neighbor.
            self_mask = pool == rows[:, None]
            pool[self_mask] = np.broadcast_to(
                neighbors[start:stop, :1], pool.shape
            )[self_mask]
            dists = gathered_distances(self.data, self.data[rows], pool, self.metric)
            stats.distance_computations += pool.size
            # Deduplicate ids per row: worse copies get +inf.
            order = np.lexsort((dists, pool), axis=1)
            sorted_pool = np.take_along_axis(pool, order, axis=1)
            sorted_dists = np.take_along_axis(dists, order, axis=1)
            dup = np.zeros_like(sorted_dists, dtype=bool)
            dup[:, 1:] = sorted_pool[:, 1:] == sorted_pool[:, :-1]
            sorted_dists[dup] = np.inf
            keep = np.argsort(sorted_dists, axis=1, kind="stable")[:, : self.degree]
            out[start:stop] = np.take_along_axis(sorted_pool, keep, axis=1)
        return out

    def search(
        self,
        queries: np.ndarray,
        k: int,
        beam_width: int = 64,
        num_seeds: int = 8,
        seed: int = 0,
    ) -> tuple[np.ndarray, np.ndarray, BeamCounters]:
        """Per-query beam search seeded by the coarse hierarchy layer
        (GGNN maps one query to one thread block)."""
        if self.graph is None:
            raise RuntimeError("call build() before search()")
        queries = np.atleast_2d(queries)
        counters = BeamCounters()
        ids = np.empty((queries.shape[0], k), dtype=np.uint32)
        dists = np.empty((queries.shape[0], k), dtype=np.float64)
        # Hierarchy descent: nearest coarse-layer nodes seed the base layer.
        coarse_d = pairwise_distances(queries, self.data[self.coarse_ids], self.metric)
        counters.distance_computations += coarse_d.size
        seed_pick = np.argsort(coarse_d, axis=1, kind="stable")[:, :num_seeds]
        for i in range(queries.shape[0]):
            seeds = self.coarse_ids[seed_pick[i]]
            ids[i], dists[i] = beam_search(
                self.data,
                self.graph.neighbors,
                queries[i],
                k,
                beam_width,
                seeds,
                self.metric,
                counters,
            )
        return ids, dists, counters
