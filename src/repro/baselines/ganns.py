"""GANNS-like GPU baseline (Yu et al., ICDE 2022).

GANNS accelerates NSW-style proximity-graph construction and search on the
GPU by redesigning the data structures: points are inserted in *batches*
— every point in a batch searches the graph as it stood before the batch
(which is what makes the insertions parallel on a GPU) — and linked
bidirectionally to its nearest candidates without HNSW's selection
heuristic.  Search is a best-first traversal with a GPU-friendly
fixed-size pool.

This implementation mirrors that design: batched stale-state NSW
insertion, degree-capped bidirectional linking, beam search from the
global entry point plus random seeds.  Counters feed the GPU cost model
with ``team_size=32`` and a device-memory visited hash — GANNS predates
CAGRA's warp-splitting and forgettable-hash optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.beam import BeamCounters, beam_search
from repro.core.distances import pairwise_distances

__all__ = ["GannsBuildStats", "GannsIndex"]


@dataclass
class GannsBuildStats:
    """Construction work counters."""

    distance_computations: int = 0
    hops: int = 0
    num_batches: int = 0


class GannsIndex:
    """GANNS-like index: batched GPU-parallel NSW construction.

    Args:
        data: dataset.
        degree: link cap per node (``M`` of NSW; lists are degree-capped
            by nearest-kept rather than HNSW's heuristic).
        ef_construction: beam width during insertion.
        batch_size: insertions that run against the same (stale) graph
            state — the GPU parallelization unit.
        metric: distance metric.
        seed: RNG seed.
    """

    def __init__(
        self,
        data: np.ndarray,
        degree: int = 24,
        ef_construction: int = 64,
        batch_size: int = 256,
        metric: str = "sqeuclidean",
        seed: int = 0,
    ):
        self.data = np.asarray(data)
        self.degree = degree
        self.ef_construction = max(ef_construction, degree)
        self.batch_size = batch_size
        self.metric = metric
        self.seed = seed
        self.adjacency: list[np.ndarray] = []
        self.entry_point = 0
        self.build_stats = GannsBuildStats()
        self._built = False

    def build(self) -> "GannsIndex":
        """Insert all points batch-by-batch against stale graph snapshots."""
        n = self.data.shape[0]
        stats = self.build_stats
        counters = BeamCounters()

        # Bootstrap: exact graph over the first small block.
        boot = min(max(self.degree + 1, 64), n)
        d = pairwise_distances(self.data[:boot], self.data[:boot], self.metric)
        stats.distance_computations += boot * boot
        np.fill_diagonal(d, np.inf)
        take = min(self.degree, boot - 1)
        order = np.argsort(d, axis=1, kind="stable")[:, :take]
        self.adjacency = [order[i].astype(np.int64).copy() for i in range(boot)]

        inserted = boot
        while inserted < n:
            batch_end = min(inserted + self.batch_size, n)
            snapshot = [row.copy() for row in self.adjacency]
            links: list[tuple[int, np.ndarray]] = []
            for node in range(inserted, batch_end):
                seeds = np.array([self.entry_point], dtype=np.int64)
                ids, _ = beam_search(
                    self.data,
                    snapshot,
                    self.data[node],
                    min(self.degree, len(snapshot)),
                    self.ef_construction,
                    seeds,
                    self.metric,
                    counters,
                )
                links.append((node, ids[ids < len(snapshot)].astype(np.int64)))
            # Commit the whole batch: bidirectional links.  Rows may grow
            # to a 2x soft cap during construction (NSW keeps its early
            # long-range links; a hard nearest-only cap would destroy
            # navigability) and are trimmed once at the end.
            soft_cap = 2 * self.degree
            for node, targets in links:
                self.adjacency.append(targets[: self.degree].copy())
                for t in targets[: self.degree]:
                    row = self.adjacency[int(t)]
                    if node in row:
                        continue
                    if len(row) < soft_cap:
                        self.adjacency[int(t)] = np.append(row, node)
            inserted = batch_end
            stats.num_batches += 1

        self._trim_rows(stats)
        # Reachability guarantee: every node force-linked into its first
        # target's row so it keeps at least one in-edge after trimming.
        for node in range(boot, n):
            target = int(self.adjacency[node][0])
            row = self.adjacency[target]
            if node not in row:
                row[-1] = node
        stats.distance_computations += counters.distance_computations
        stats.hops += counters.hops
        self._built = True
        return self

    def _trim_rows(self, stats: GannsBuildStats) -> None:
        """Trim overgrown rows to ``degree``: nearest half for precision,
        earliest-inserted half for NSW's long-range navigability."""
        half = self.degree // 2
        for node, row in enumerate(self.adjacency):
            if len(row) <= self.degree:
                continue
            dists = pairwise_distances(
                self.data[node : node + 1], self.data[row], self.metric
            )[0]
            stats.distance_computations += len(row)
            nearest = row[np.argsort(dists, kind="stable")[:half]]
            earliest = [r for r in row[: self.degree] if r not in nearest][
                : self.degree - len(nearest)
            ]
            self.adjacency[node] = np.concatenate(
                [nearest, np.asarray(earliest, dtype=np.int64)]
            )

    def search(
        self,
        queries: np.ndarray,
        k: int,
        beam_width: int = 64,
        num_seeds: int = 4,
        seed: int = 0,
    ) -> tuple[np.ndarray, np.ndarray, BeamCounters]:
        """Beam search from the entry point plus random seeds."""
        if not self._built:
            raise RuntimeError("call build() before search()")
        queries = np.atleast_2d(queries)
        rng = np.random.default_rng(seed)
        counters = BeamCounters()
        n = len(self.adjacency)
        ids = np.empty((queries.shape[0], k), dtype=np.uint32)
        dists = np.empty((queries.shape[0], k), dtype=np.float64)
        for i in range(queries.shape[0]):
            seeds = np.concatenate(
                [[self.entry_point], rng.integers(0, n, size=num_seeds)]
            )
            ids[i], dists[i] = beam_search(
                self.data,
                self.adjacency,
                queries[i],
                k,
                beam_width,
                seeds,
                self.metric,
                counters,
            )
        return ids, dists, counters

    @property
    def average_degree(self) -> float:
        return float(np.mean([len(row) for row in self.adjacency]))
