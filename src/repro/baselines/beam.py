"""Greedy best-first beam search over an adjacency structure.

This is the classic graph-ANNS search loop (NSG/NSSG/GGNN/GANNS all use a
variant of it): keep a pool of the best ``L`` candidates found so far,
repeatedly expand the best unexpanded one, and stop when the pool's top-L
are all expanded.  It differs from the CAGRA loop in expanding *one*
parent at a time from an unbounded visited set rather than ``p`` parents
from a fixed buffer — which is exactly the contrast the paper draws.

Counters (:class:`BeamCounters`) record distance computations and hops so
the CPU/GPU cost models can price the search.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.distances import distances_to_query

__all__ = ["BeamCounters", "beam_search"]


@dataclass
class BeamCounters:
    """Work counters for beam searches (batch-accumulated)."""

    distance_computations: int = 0
    hops: int = 0
    queries: int = 0

    def merge_from(self, other: "BeamCounters") -> None:
        self.distance_computations += other.distance_computations
        self.hops += other.hops
        self.queries += other.queries


def beam_search(
    data: np.ndarray,
    neighbor_lists,
    query: np.ndarray,
    k: int,
    beam_width: int,
    seeds: np.ndarray,
    metric: str = "sqeuclidean",
    counters: BeamCounters | None = None,
    max_hops: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Best-first search returning the top-k (ids, distances).

    Args:
        data: ``(N, dim)`` dataset.
        neighbor_lists: indexable giving each node's neighbor id array —
            a ``(N, d)`` array, a list of arrays, or any ``[]``-able.
        query: one query vector.
        k: results to return (``<= beam_width``).
        beam_width: pool size ``L`` — the recall/throughput knob.
        seeds: entry-point node ids.
        counters: accumulates work across calls when provided.
        max_hops: optional safety cap on expansions (0 = unlimited).
    """
    if k > beam_width:
        raise ValueError(f"k={k} exceeds beam_width={beam_width}")
    counters = counters if counters is not None else BeamCounters()
    counters.queries += 1

    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    seed_dists = distances_to_query(data, query, seeds, metric=metric)
    counters.distance_computations += len(seeds)

    visited = set(int(s) for s in seeds)
    # Min-heap of unexpanded candidates; pool holds the best L found.
    frontier = [(float(d), int(s)) for d, s in zip(seed_dists, seeds)]
    heapq.heapify(frontier)
    pool: list[tuple[float, int]] = sorted(frontier)[:beam_width]
    worst = pool[-1][0] if len(pool) >= beam_width else np.inf

    hops = 0
    while frontier:
        dist, node = heapq.heappop(frontier)
        if dist > worst and len(pool) >= beam_width:
            break  # best unexpanded is outside the pool: converged
        hops += 1
        if max_hops and hops > max_hops:
            break
        neighbors = np.asarray(neighbor_lists[node], dtype=np.int64)
        fresh = np.array([n for n in neighbors if int(n) not in visited], dtype=np.int64)
        if len(fresh) == 0:
            continue
        visited.update(int(n) for n in fresh)
        dists = distances_to_query(data, query, fresh, metric=metric)
        counters.distance_computations += len(fresh)
        for d, n in zip(dists, fresh):
            d = float(d)
            if len(pool) < beam_width or d < worst:
                pool.append((d, int(n)))
                pool.sort()
                del pool[beam_width:]
                worst = pool[-1][0] if len(pool) >= beam_width else np.inf
                heapq.heappush(frontier, (d, int(n)))
    counters.hops += hops

    top = pool[:k]
    ids = np.array([n for _, n in top], dtype=np.uint32)
    dists_out = np.array([d for d, _ in top], dtype=np.float64)
    if len(ids) < k:  # pathological tiny graphs
        pad = k - len(ids)
        ids = np.concatenate([ids, np.zeros(pad, dtype=np.uint32)])
        dists_out = np.concatenate([dists_out, np.full(pad, np.inf)])
    return ids, dists_out
