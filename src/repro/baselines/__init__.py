"""Baseline ANNS implementations the paper compares CAGRA against.

All baselines are implemented from scratch, following their source papers
at the fidelity the CAGRA evaluation exercises (Sec. V):

* :mod:`repro.baselines.bruteforce` — exact search (ground truth).
* :mod:`repro.baselines.hnsw` — Hierarchical Navigable Small World
  (Malkov & Yashunin), the CPU state of the art.
* :mod:`repro.baselines.nssg` — Navigating Satellite System Graph (Fu et
  al.), whose construction/search pipeline CAGRA's most resembles.
* :mod:`repro.baselines.ggnn` — GGNN-like GPU method (Groh et al.):
  hierarchical shard-merge construction + per-warp beam search.
* :mod:`repro.baselines.ganns` — GANNS-like GPU method (Yu et al.):
  batched NSW construction + GPU-friendly beam search.

Every search reports operation counters compatible with the cost models in
:mod:`repro.gpusim` so recall–QPS comparisons share one methodology.
"""

from repro.baselines.bruteforce import exact_search
from repro.baselines.beam import BeamCounters, beam_search
from repro.baselines.hnsw import HnswIndex
from repro.baselines.nssg import NssgIndex, nssg_search
from repro.baselines.ggnn import GgnnIndex
from repro.baselines.ganns import GannsIndex

__all__ = [
    "exact_search",
    "BeamCounters",
    "beam_search",
    "HnswIndex",
    "NssgIndex",
    "nssg_search",
    "GgnnIndex",
    "GannsIndex",
]
