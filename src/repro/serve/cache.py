"""Thread-safe LRU cache for query results.

Keys are built by the server from ``(query bytes, k, index generation)``
— the generation counter makes every ``swap_index`` an implicit
invalidation even before the explicit :meth:`ResultCache.clear` runs.
Values are ``(indices, distances)`` row pairs; the cache stores its own
copies so callers can't mutate cached state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded least-recently-used mapping of query keys to results."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()

    def get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        """Return a copy of the cached result, refreshing recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[0].copy(), entry[1].copy()

    def put(self, key: tuple, indices: np.ndarray, distances: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the oldest past capacity."""
        with self._lock:
            self._entries[key] = (indices.copy(), distances.copy())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
