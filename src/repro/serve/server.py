"""Online serving: dynamic micro-batching over any :class:`repro.api.AnnIndex`.

The paper's serving trade-off is batch geometry: single-CTA search wins at
large batches (Fig. 13) and multi-CTA at batch 1 (Fig. 14, Table II), but
online traffic arrives one query at a time.  :class:`CagraServer` bridges
the two regimes: callers submit single queries through a synchronous API,
a bounded queue feeds a scheduler thread that *coalesces* them into
micro-batches — flushing when the batch reaches ``max_batch`` requests or
``max_wait_ms`` after its first request, whichever comes first — and each
flush runs through the served index's unified ``search(...)`` surface
with ``mode="auto"``, which applies the Table II dispatch for CAGRA:

* coalesced batches (size > 1) run the vectorized single-CTA fast path
  (:func:`repro.core.traversal.search_batch_fast`);
* batch-of-1 flushes run the multi-CTA reference path
  (:meth:`CagraIndex.search` with ``algo="multi_cta"``).

Baseline indexes (HNSW, GGNN, GANNS, NSSG, brute force) have one
execution path, so the same server serves them unchanged — the index is
wrapped via :func:`repro.api.as_ann_index` at construction, and every
batch answer carries the int32/float32 + trailing-``INDEX_MASK`` result
contract of :class:`repro.api.SearchResult`.

Around that core sit the production concerns: admission control (full
queue ⇒ :class:`ServerOverloaded`), per-request deadlines (expired ⇒
:class:`RequestTimeout`, dropped without wasting batch slots), an LRU
result cache, hot index swap (:meth:`CagraServer.swap_index` atomically
publishes a new snapshot; in-flight batches finish on the old one), a
graceful drain on shutdown, and a metrics surface
(:meth:`CagraServer.stats`).

Failure handling (``docs/resilience.md``): one bad request no longer
sinks its whole micro-batch — an execution error bisects the batch and
retries the halves until the failure is isolated to a single request.
When serving a sharded index, ``ServeConfig.on_shard_failure="partial"``
serves degraded results from the surviving shards, an optional per-shard
:class:`~repro.resilience.CircuitBreaker` (closed → open → half-open)
skips repeat offenders up front, and :meth:`CagraServer.health` reports
breaker states plus a rolling failure rate.  The ``serve.execute`` fault
point (:mod:`repro.resilience.faults`, ``ServeConfig.fault_plan`` or
``REPRO_FAULT_PLAN``) makes all of it deterministically testable.

Mutability (``docs/streaming.md``): serve a
:class:`repro.stream.MutableIndex` and the server grows ``insert`` /
``delete`` entry points, freshness gauges in :meth:`CagraServer.stats`,
and (with ``ServeConfig.auto_rebuild``) a background
:class:`~repro.stream.rebuild.Rebuilder` that promotes repaired/rebuilt
bases through :meth:`swap_index` mid-traffic.  Every mutation invalidates
the result cache through the index's mutation listener, so a cached
answer can never resurrect a deleted row or hide a fresh insert.

Typical use::

    with CagraServer(index, ServeConfig(max_batch=64, max_wait_ms=2.0)) as server:
        result = server.search(query, k=10)        # blocking
        handle = server.submit(query, k=10)        # async handle
        ids = handle.result().indices
        print(server.stats().summary())
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.api import AnnIndex, as_ann_index
from repro.core.config import SearchConfig
from repro.core.graph import INDEX_MASK
from repro.core.sharding import ShardQuorumError
from repro.resilience import CircuitBreaker, FaultInjector, resolve_fault_plan
from repro.serve.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.stats import ServeStats, StatsCollector

__all__ = [
    "CagraServer",
    "PendingResult",
    "RequestTimeout",
    "ServeError",
    "ServeResult",
    "ServerClosed",
    "ServerOverloaded",
]

#: Grace period the waiting caller gives the scheduler past the request
#: deadline before declaring the timeout itself (lets a batch that is
#: already executing still win the race and deliver a result).
_CLIENT_GRACE_SECONDS = 0.025


class ServeError(RuntimeError):
    """Base class for serving-layer errors."""


class ServerOverloaded(ServeError):
    """The bounded request queue is full (admission control)."""


class RequestTimeout(ServeError):
    """The request's deadline passed before a result was produced."""


class ServerClosed(ServeError):
    """The server is not accepting requests (stopped or never usable)."""


@dataclass(frozen=True)
class ServeResult:
    """One answered query.

    Attributes:
        indices: ``(k,)`` neighbor ids.
        distances: matching distances.
        from_cache: True when served from the result cache without a
            search.
        latency_ms: enqueue-to-completion latency (0 for cache hits).
    """

    indices: np.ndarray
    distances: np.ndarray
    from_cache: bool
    latency_ms: float


class _Request:
    """Internal request record with a first-transition-wins life cycle."""

    PENDING, DONE, TIMED_OUT, FAILED = range(4)

    __slots__ = (
        "query", "k", "enqueue_time", "deadline", "event", "lock",
        "state", "indices", "distances", "error", "latency_seconds",
        "watchers",
    )

    def __init__(self, query: np.ndarray, k: int, deadline: float | None):
        self.query = query
        self.k = k
        self.enqueue_time = time.monotonic()
        self.deadline = deadline
        self.event = threading.Event()
        self.lock = threading.Lock()
        self.state = self.PENDING
        self.indices: np.ndarray | None = None
        self.distances: np.ndarray | None = None
        self.error: BaseException | None = None
        self.latency_seconds = 0.0
        self.watchers: list[threading.Event] = []

    def add_watcher(self, event: threading.Event) -> None:
        """Register an extra event set on resolution (already-resolved
        requests set it immediately).  Lets a caller wait on *any of*
        several requests — the router's hedged wait — without polling."""
        with self.lock:
            if self.state == self.PENDING:
                self.watchers.append(event)
                return
        event.set()

    def _transition(self, state: int) -> bool:
        with self.lock:
            if self.state != self.PENDING:
                return False
            self.state = state
            watchers, self.watchers = self.watchers, []
        self.event.set()
        for watcher in watchers:
            watcher.set()
        return True

    def resolve_done(self, indices: np.ndarray, distances: np.ndarray) -> bool:
        self.indices = indices
        self.distances = distances
        self.latency_seconds = time.monotonic() - self.enqueue_time
        return self._transition(self.DONE)

    def resolve_timeout(self) -> bool:
        return self._transition(self.TIMED_OUT)

    def resolve_failure(self, error: BaseException) -> bool:
        self.error = error
        return self._transition(self.FAILED)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class PendingResult:
    """Handle for a submitted request; ``result()`` blocks until resolved."""

    def __init__(self, request: _Request, stats: StatsCollector, from_cache: bool = False):
        self._request = request
        self._stats = stats
        self._from_cache = from_cache

    def done(self) -> bool:
        return self._request.event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved (or ``timeout`` seconds); True if resolved.

        Unlike :meth:`result` this never transitions the request — it is
        a pure observation, safe to call from a hedging router that may
        let the *other* leg win.
        """
        return self._request.event.wait(timeout)

    def add_watcher(self, event: threading.Event) -> None:
        """Set ``event`` when this request resolves (immediately if it
        already has).  Enables wait-for-any across several handles."""
        self._request.add_watcher(event)

    def result(self, timeout: float | None = None) -> ServeResult:
        """Wait for the request to resolve and return (or raise) it.

        Args:
            timeout: optional wait bound in *seconds* on top of the
                request's own deadline.  Without a deadline and without
                ``timeout`` this blocks until the server resolves the
                request (shutdown resolves everything).

        Raises:
            RequestTimeout: the request's deadline passed unanswered.
            ServeError: the server failed the request (search error or
                non-draining shutdown); search exceptions propagate
                as-is.
        """
        request = self._request
        budget = timeout
        if request.deadline is not None:
            remaining = max(0.0, request.deadline - time.monotonic())
            grace = remaining + _CLIENT_GRACE_SECONDS
            budget = grace if budget is None else min(budget, grace)
        resolved = request.event.wait(budget)
        if not resolved:
            if request.deadline is not None and request.resolve_timeout():
                self._stats.record_timeout()
            elif request.state == _Request.PENDING:
                # Caller-imposed wait bound only: leave the request live.
                raise RequestTimeout(
                    f"result not ready within the {timeout}s wait bound"
                )
        state = request.state
        if state == _Request.DONE:
            return ServeResult(
                indices=request.indices,
                distances=request.distances,
                from_cache=self._from_cache,
                latency_ms=request.latency_seconds * 1e3,
            )
        if state == _Request.TIMED_OUT:
            raise RequestTimeout("request deadline exceeded")
        raise request.error if request.error is not None else ServeError(
            "request failed without a recorded error"
        )


#: Queue marker that tells the scheduler to exit after the current drain.
_SENTINEL = object()


class CagraServer:
    """A synchronous-API, internally concurrent ANN serving frontend.

    One scheduler thread owns all search execution; callers interact
    through :meth:`submit` / :meth:`search` and never touch the index
    concurrently.  Requests submitted before :meth:`start` simply queue
    up (subject to the same admission control) and are served once the
    scheduler runs.

    The served index may be anything :func:`repro.api.as_ann_index`
    accepts — a :class:`~repro.core.index.CagraIndex`, a
    :class:`~repro.core.sharding.ShardedCagraIndex` (whose per-shard
    :mod:`repro.parallel` fan-out composes with micro-batching), any of
    the baseline indexes (HNSW, GGNN, GANNS, NSSG), a
    :class:`repro.api.BruteForceIndex`, or a pre-built adapter / foreign
    :class:`~repro.api.AnnIndex` implementation.  ``on_stage(name,
    seconds, counters)`` receives one ``serve.batch`` event per executed
    micro-batch plus whatever the underlying search path emits.
    """

    def __init__(
        self,
        index,
        config: ServeConfig | None = None,
        search_config: SearchConfig | None = None,
        on_stage=None,
    ):
        self.config = config or ServeConfig()
        self.search_config = search_config or SearchConfig()
        self._ann = self._wrap(index)
        # Foreign AnnIndex implementations are their own "native" index.
        self._index = getattr(self._ann, "inner", self._ann)
        if self.config.profile:
            # Tuned profiles overlay itopk/search_width/max_iterations
            # (and team_size since profile schema v2);
            # stale/corrupt profiles warn and leave search_config alone.
            from repro.tune import resolve_profile

            tuned = resolve_profile(
                self.config.profile,
                data=self._ann.dataset,
                index_kind=getattr(self._ann, "kind", "cagra"),
                k=self.config.default_k,
            )
            if tuned is not None:
                self.search_config = tuned.search_config(base=self.search_config)
        self._on_stage = on_stage
        self._generation = 0
        self._swap_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_capacity)
        self._cache = (
            ResultCache(self.config.cache_capacity)
            if self.config.cache_capacity
            else None
        )
        self._stats = StatsCollector()
        plan = resolve_fault_plan(self.config.fault_plan)
        # One injector for the server's lifetime: ``serve.execute`` is a
        # stateful site, so after/times hit counting is meaningful here.
        self._fault = FaultInjector(plan) if plan is not None else None
        self._breakers = self._make_breakers(self._ann)
        self._thread: threading.Thread | None = None
        self._rebuilder = None
        self._accepting = True
        self._closed = False
        # A mutable index invalidates the cache on every visible state
        # change (insert/delete/promotion), whichever path mutated it.
        if hasattr(self._ann, "set_mutation_listener"):
            self._ann.set_mutation_listener(self._invalidate_cache)

    def _wrap(self, index) -> AnnIndex:
        """Adapt ``index`` with the server's deployment policy baked in."""
        return as_ann_index(
            index,
            num_sms=self.config.num_sms,
            on_shard_failure=self.config.on_shard_failure,
            min_shard_quorum=self.config.min_shard_quorum,
        )

    def _make_breakers(self, ann) -> dict[int, CircuitBreaker]:
        """One breaker per shard; empty when disabled or not sharded."""
        num_shards = getattr(ann, "num_shards", 1)
        if self.config.breaker_failure_threshold < 1 or num_shards < 2:
            return {}
        return {
            s: CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            )
            for s in range(num_shards)
        }

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    def start(self) -> "CagraServer":
        """Start the scheduler thread (idempotent while running)."""
        if self._closed:
            raise ServerClosed("server was stopped; build a new one")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="cagra-serve-scheduler", daemon=True
            )
            self._thread.start()
        with self._swap_lock:
            ann = self._ann
        if (
            self.config.auto_rebuild
            and self._rebuilder is None
            and hasattr(ann, "repair_incremental")
        ):
            self._rebuilder = self._make_rebuilder(ann)
            self._rebuilder.start()
        return self

    def _make_rebuilder(self, mutable):
        """Background staleness loop promoting through :meth:`swap_index`."""
        from repro.stream import Rebuilder, StalenessPolicy

        policy = StalenessPolicy(
            min_memtable_rows=self.config.rebuild_min_memtable_rows,
            min_tombstone_ratio=self.config.rebuild_min_tombstone_ratio,
            horizon_s=self.config.rebuild_horizon_s,
        )
        rebuilder = Rebuilder(
            mutable,
            policy,
            interval_s=self.config.rebuild_interval_s,
            promote=self.swap_index,
            calibrate=self.config.rebuild_calibrate,
            on_stage=self._on_stage,
        )
        rebuilder.add_listener(
            lambda decision, report, latency: self._stats.record_rebuild(
                report.action, latency
            )
        )
        return rebuilder

    def stop(self, drain: bool = True) -> None:
        """Stop the server.

        With ``drain=True`` (default) every queued request is executed
        before the scheduler exits; with ``drain=False`` queued requests
        fail immediately with :class:`ServerClosed` (in-flight batches
        still finish).  Idempotent.
        """
        if self._closed:
            return
        self._accepting = False
        self._closed = True
        rebuilder, self._rebuilder = self._rebuilder, None
        if rebuilder is not None:
            rebuilder.stop()
        if not drain:
            self._fail_queued()
        if self._thread is not None:
            self._queue.put(_SENTINEL)
            self._thread.join()
            self._thread = None
        # Anything that slipped in after the sentinel (or was queued on a
        # never-started server) must not be left hanging.
        self._fail_queued()

    def __enter__(self) -> "CagraServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=True)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        timeout_ms: float | None = None,
    ) -> PendingResult:
        """Enqueue one query; returns a :class:`PendingResult` handle.

        Raises :class:`ServerOverloaded` when the queue is full and
        :class:`ServerClosed` after :meth:`stop`.
        """
        if not self._accepting:
            raise ServerClosed("server is not accepting requests")
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        dim = self.ann_index.dim
        if query.shape[0] != dim:
            raise ValueError(f"query has dim {query.shape[0]}, index has {dim}")
        k = int(k) if k else self.config.default_k
        if k < 1:
            raise ValueError("k must be >= 1")

        if self._cache is not None:
            with self._swap_lock:
                generation = self._generation
            key = (query.tobytes(), k, generation)
            hit = self._cache.get(key)
            if hit is not None:
                self._stats.record_cache_hit()
                request = _Request(query, k, deadline=None)
                request.resolve_done(*hit)
                request.latency_seconds = 0.0
                return PendingResult(request, self._stats, from_cache=True)
            self._stats.record_cache_miss()

        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        deadline = time.monotonic() + timeout_ms / 1e3 if timeout_ms else None
        request = _Request(query, k, deadline)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._stats.record_rejected()
            raise ServerOverloaded(
                f"request queue full ({self.config.queue_capacity} pending)"
            ) from None
        self._stats.record_submitted(self._queue.qsize())
        return PendingResult(request, self._stats)

    def search(
        self,
        query: np.ndarray,
        k: int | None = None,
        timeout_ms: float | None = None,
    ) -> ServeResult:
        """Blocking single-query search (``submit().result()``)."""
        return self.submit(query, k=k, timeout_ms=timeout_ms).result()

    # ------------------------------------------------------------------
    # writes (mutable index only)
    # ------------------------------------------------------------------
    def _mutable(self):
        ann = self.ann_index
        if not hasattr(ann, "insert"):
            raise ServeError(
                "served index is not mutable; wrap it in "
                "repro.stream.MutableIndex to accept writes"
            )
        return ann

    def insert(self, vectors, ids=None) -> np.ndarray:
        """Write ``vectors`` into the served mutable index; returns ids.

        The rows are searchable as soon as this returns (exact memtable
        merge); the result cache is invalidated through the index's
        mutation listener so no stale answer survives the write.
        """
        if not self._accepting:
            raise ServerClosed("server is not accepting requests")
        assigned = self._mutable().insert(vectors, ids)
        self._stats.record_insert(int(np.atleast_1d(assigned).shape[0]))
        return assigned

    def delete(self, ids, strict: bool = True) -> int:
        """Tombstone ``ids`` in the served mutable index.

        Once this returns, the deleted rows can never appear in a result
        (tombstones AND into every base-leg filter mask; the cache is
        invalidated)."""
        if not self._accepting:
            raise ServerClosed("server is not accepting requests")
        removed = self._mutable().delete(ids, strict=strict)
        self._stats.record_delete(int(removed))
        return removed

    def _invalidate_cache(self) -> None:
        """Generation bump + clear: mutation listener target."""
        with self._swap_lock:
            self._generation += 1
        if self._cache is not None:
            self._cache.clear()

    @property
    def rebuilder(self):
        """The auto-started background rebuilder (None when disabled)."""
        return self._rebuilder

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    @property
    def index(self):
        """The currently published native index snapshot (unwrapped)."""
        with self._swap_lock:
            return self._index

    @property
    def ann_index(self) -> AnnIndex:
        """The currently published :class:`~repro.api.AnnIndex` snapshot."""
        with self._swap_lock:
            return self._ann

    def swap_index(self, new_index) -> None:
        """Atomically publish ``new_index`` without dropping traffic.

        Accepts anything :func:`repro.api.as_ann_index` does — the new
        index need not even be the same kind as the old one (e.g. CAGRA
        swapped out for HNSW mid-traffic), only the same ``dim``.  The
        batch being executed keeps the snapshot it captured; every later
        batch sees the new index.  The result cache is invalidated
        (generation bump + clear) so no stale result is ever served.
        """
        ann = self._wrap(new_index)
        with self._swap_lock:
            if ann.dim != self._ann.dim:
                raise ValueError(
                    f"new index has dim {ann.dim}, server serves "
                    f"dim {self._ann.dim}"
                )
            self._ann = ann
            self._index = getattr(ann, "inner", ann)
            self._generation += 1
            # Fresh index, fresh breaker state: failures of the old
            # index's shards say nothing about the new one's.
            self._breakers = self._make_breakers(ann)
        if self._cache is not None:
            self._cache.clear()
        if hasattr(ann, "set_mutation_listener"):
            ann.set_mutation_listener(self._invalidate_cache)
        self._stats.record_swap()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        """Requests currently queued (cheap; the router's load signal)."""
        return self._queue.qsize()

    def stats(self) -> ServeStats:
        """Snapshot of the metrics surface (see :class:`ServeStats`)."""
        ann = self.ann_index
        freshness = ann.freshness() if hasattr(ann, "freshness") else None
        return self._stats.snapshot(
            queue_depth=self._queue.qsize(), freshness=freshness
        )

    #: ``health()`` reports ``"degraded"`` above this rolling failure rate.
    _UNHEALTHY_FAILURE_RATE = 0.5

    def health(self) -> dict:
        """Operator-facing liveness/degradation snapshot (JSON-friendly).

        ``status`` is ``"ok"``, ``"degraded"`` (any shard breaker not
        closed, or the rolling failure rate above
        :data:`_UNHEALTHY_FAILURE_RATE`), or ``"stopped"``.
        """
        with self._swap_lock:
            index = self._index
            generation = self._generation
            breakers = dict(self._breakers)
        snap = self.stats()
        breaker_states = {
            str(s): breakers[s].snapshot() for s in sorted(breakers)
        }
        open_shards = [
            s
            for s in sorted(breakers)
            if breaker_states[str(s)]["state"] != CircuitBreaker.CLOSED
        ]
        if self._closed:
            status = "stopped"
        elif open_shards or (
            snap.recent_failure_rate > self._UNHEALTHY_FAILURE_RATE
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "accepting": self._accepting,
            "generation": generation,
            "num_shards": getattr(index, "num_shards", 1),
            "queue_depth": snap.queue_depth,
            "recent_failure_rate": snap.recent_failure_rate,
            "degraded_batches": snap.degraded_batches,
            "open_shards": open_shards,
            "breakers": breaker_states,
        }

    # ------------------------------------------------------------------
    # scheduler internals
    # ------------------------------------------------------------------
    def _run(self) -> None:
        poll = self.config.drain_poll_ms / 1e3
        max_wait = self.config.max_wait_ms / 1e3
        while True:
            try:
                first = self._queue.get(timeout=poll)
            except queue.Empty:
                continue
            if first is _SENTINEL:
                return
            batch = [first]
            saw_sentinel = False
            flush_at = time.monotonic() + max_wait
            while len(batch) < self.config.max_batch:
                remaining = flush_at - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SENTINEL:
                    saw_sentinel = True
                    break
                batch.append(item)
            self._execute(batch)
            if saw_sentinel:
                return

    def _execute(self, batch: list[_Request]) -> None:
        now = time.monotonic()
        live = []
        for request in batch:
            if request.expired(now):
                if request.resolve_timeout():
                    self._stats.record_timeout()
            elif not request.event.is_set():
                live.append(request)
        if live:
            self._run_batch(live)

    def _fail_batch(self, live: list[_Request], exc: BaseException) -> None:
        for request in live:
            if request.resolve_failure(exc):
                self._stats.record_failure()

    def _run_batch(self, live: list[_Request]) -> None:
        """Execute one micro-batch, isolating failures by bisection.

        A batch that raises is split in half and each half re-executed,
        so one poisoned request fails alone instead of taking every rider
        down with it (recursion depth is log2 of the batch size).
        :class:`ShardQuorumError` is query-independent — splitting cannot
        help — so it fails the whole batch immediately.
        """
        with self._swap_lock:
            ann = self._ann
            generation = self._generation
            breakers = self._breakers
        k_max = max(request.k for request in live)
        config = self.search_config
        if config.itopk < k_max:
            config = config.with_overrides(itopk=k_max)
        queries = np.stack([request.query for request in live])
        sharded = getattr(ann, "num_shards", 1) > 1
        skip: list[int] = []
        if sharded and breakers:
            skip = [s for s in sorted(breakers) if not breakers[s].allow()]

        corrupt = None
        started = time.monotonic()
        try:
            if self._fault is not None:
                corrupt = self._fault.fire("serve.execute", batch=len(live))
            # ``mode="auto"`` is the Table II dispatch: a batch of 1 runs
            # the multi-CTA reference path, a coalesced batch the
            # vectorized single-CTA fast path (no-op for baselines).
            kwargs = {"skip_shards": skip} if sharded else {}
            result = ann.search(
                queries,
                k_max,
                config=config,
                mode="auto",
                on_stage=self._on_stage,
                **kwargs,
            )
            path = "multi_cta" if len(live) == 1 else "single_cta"
        except ShardQuorumError as exc:
            self._fail_batch(live, exc)
            return
        except Exception as exc:  # deliver, don't kill the scheduler
            if len(live) == 1:
                self._fail_batch(live, exc)
                return
            self._stats.record_batch_split()
            mid = len(live) // 2
            self._run_batch(live[:mid])
            self._run_batch(live[mid:])
            return

        failed_shards = list(getattr(result, "failed_shards", []) or [])
        degraded = bool(getattr(result, "degraded", False))
        if sharded and breakers:
            for s in failed_shards:
                if breakers[s].record_failure():
                    self._stats.record_breaker_trip()
            for s in range(ann.num_shards):
                if s not in failed_shards and s not in skip:
                    breakers[s].record_success()
        if degraded:
            self._stats.record_degraded(len(failed_shards))

        self._stats.record_batch(len(live), path)
        if self._on_stage is not None:
            self._on_stage(
                "serve.batch",
                time.monotonic() - started,
                {"batch": len(live), "path": path, "degraded": degraded},
            )
        # Degraded or fault-corrupted answers are served but never cached:
        # a partial result must not outlive the failure that caused it.
        cacheable = self._cache is not None and not degraded and corrupt is None
        for row, request in enumerate(live):
            if corrupt is not None:
                ids = np.full(request.k, INDEX_MASK, dtype=np.int32)
                dists = np.full(request.k, np.nan, dtype=np.float32)
            else:
                ids = result.indices[row, : request.k].copy()
                dists = result.distances[row, : request.k].copy()
            if cacheable:
                self._cache.put(
                    (request.query.tobytes(), request.k, generation), ids, dists
                )
            if request.resolve_done(ids, dists):
                self._stats.record_completed(request.latency_seconds)

    def _fail_queued(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SENTINEL:
                continue
            if item.resolve_failure(ServerClosed("server stopped before execution")):
                self._stats.record_failure()
