"""Serving-layer configuration.

:class:`ServeConfig` holds the knobs of the online serving loop — the
micro-batching geometry (``max_batch`` / ``max_wait_ms``), admission
control (``queue_capacity``, ``default_timeout_ms``), and the result
cache size.  The *search* parameters stay in
:class:`repro.core.config.SearchConfig`, passed separately to
:class:`repro.serve.server.CagraServer`, so serving policy and algorithm
tuning remain independent dials.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of the online serving loop.

    Attributes:
        max_batch: flush a forming batch as soon as it reaches this many
            requests (the paper's large-batch regime, Fig. 13, needs
            coalescing; 64 is a good default at bench scale).
        max_wait_ms: flush a forming batch at most this long after its
            *first* request arrived, even if it is still small — the
            latency bound of the batching trade-off.  A batch that ends
            up with a single request is dispatched to the multi-CTA
            path (Table II's batch-1 rule).
        queue_capacity: bounded request queue; a full queue rejects new
            submissions with :class:`~repro.serve.server.ServerOverloaded`
            (admission control / backpressure).
        default_timeout_ms: per-request deadline applied when the caller
            does not pass one; ``0`` disables deadlines.  Requests whose
            deadline passes while queued are dropped (counted as timed
            out) instead of wasting batch slots.
        cache_capacity: entries in the LRU query-result cache; ``0``
            disables caching.  The cache is invalidated on
            ``swap_index`` so stale results are never served.
        default_k: neighbors returned when the caller does not pass k.
        num_sms: SM count forwarded to the multi-CTA reference path
            (sizes the simulated dispatch exactly like
            :meth:`CagraIndex.search`).
        drain_poll_ms: scheduler idle-poll interval; only affects how
            quickly an idle scheduler notices shutdown.
        on_shard_failure: failure policy forwarded to a sharded index's
            searches — ``"raise"`` fails the batch when any shard fails,
            ``"partial"`` serves degraded results from the surviving
            shards (see :class:`~repro.core.sharding.ShardedCagraIndex`).
        min_shard_quorum: minimum shards that must answer before a
            degraded result is acceptable; fewer fails the batch with
            :class:`~repro.core.sharding.ShardQuorumError`.
        breaker_failure_threshold: consecutive failures that open a
            shard's circuit breaker (open shards are skipped up front
            instead of re-failing every batch); ``0`` disables breakers.
        breaker_cooldown_s: how long an open breaker waits before letting
            one probe batch through (half-open).
        fault_plan: JSON fault plan (or ``@path``) for deterministic
            fault injection at ``serve.execute``; empty defers to the
            ``REPRO_FAULT_PLAN`` environment variable (see
            :mod:`repro.resilience.faults`).
        auto_rebuild: when serving a
            :class:`~repro.stream.mutable.MutableIndex`, start a
            background :class:`~repro.stream.rebuild.Rebuilder` with the
            server that evaluates the staleness policy every
            ``rebuild_interval_s`` and promotes fresh bases through
            ``swap_index``.  Ignored for static indexes.
        rebuild_interval_s: staleness-policy evaluation period.
        rebuild_min_memtable_rows / rebuild_min_tombstone_ratio: churn
            floor below which the policy never acts (see
            :class:`~repro.stream.policy.StalenessPolicy`; the
            repair-vs-rebuild choice itself is a measured break-even, not
            a threshold).
        rebuild_horizon_s: amortization horizon for the measured
            tombstone-overhead term of the break-even model.
        rebuild_calibrate: run measured micro-probes (one tiny extend +
            one tiny build) at rebuilder startup to seed the cost model.
        profile: tuned search-parameter profile — ``"auto"`` (scan the
            :mod:`repro.tune` profile directory for this dataset/kind/k)
            or a profile JSON path.  Resolved against the served index at
            server construction; a matching profile's ``itopk`` /
            ``search_width`` / ``max_iterations`` overlay the server's
            ``search_config``, while a corrupt or stale profile warns and
            leaves it untouched (:class:`repro.tune.ProfileWarning`).
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_capacity: int = 256
    default_timeout_ms: float = 0.0
    cache_capacity: int = 1024
    default_k: int = 10
    num_sms: int = 108
    drain_poll_ms: float = 20.0
    on_shard_failure: str = "raise"
    min_shard_quorum: int = 1
    breaker_failure_threshold: int = 0
    breaker_cooldown_s: float = 30.0
    fault_plan: str = ""
    auto_rebuild: bool = False
    rebuild_interval_s: float = 0.5
    rebuild_min_memtable_rows: int = 64
    rebuild_min_tombstone_ratio: float = 0.05
    rebuild_horizon_s: float = 30.0
    rebuild_calibrate: bool = False
    profile: str = ""

    def __post_init__(self) -> None:
        _require(self.max_batch >= 1, "max_batch must be >= 1")
        _require(self.max_wait_ms >= 0.0, "max_wait_ms must be >= 0")
        _require(self.queue_capacity >= 1, "queue_capacity must be >= 1")
        _require(self.default_timeout_ms >= 0.0, "default_timeout_ms must be >= 0")
        _require(self.cache_capacity >= 0, "cache_capacity must be >= 0")
        _require(self.default_k >= 1, "default_k must be >= 1")
        _require(self.num_sms >= 1, "num_sms must be >= 1")
        _require(self.drain_poll_ms > 0.0, "drain_poll_ms must be > 0")
        _require(
            self.on_shard_failure in ("raise", "partial"),
            "on_shard_failure must be 'raise' or 'partial'",
        )
        _require(self.min_shard_quorum >= 1, "min_shard_quorum must be >= 1")
        _require(
            self.breaker_failure_threshold >= 0,
            "breaker_failure_threshold must be >= 0 (0 = disabled)",
        )
        _require(self.breaker_cooldown_s >= 0.0, "breaker_cooldown_s must be >= 0")
        _require(self.rebuild_interval_s > 0.0, "rebuild_interval_s must be > 0")
        _require(
            self.rebuild_min_memtable_rows >= 1,
            "rebuild_min_memtable_rows must be >= 1",
        )
        _require(
            0.0 <= self.rebuild_min_tombstone_ratio < 1.0,
            "rebuild_min_tombstone_ratio must be in [0, 1)",
        )
        _require(self.rebuild_horizon_s > 0.0, "rebuild_horizon_s must be > 0")
