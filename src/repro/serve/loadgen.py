"""Seeded load generators driving a :class:`CagraServer`.

Two standard closed-form workload shapes:

* **open loop** (:func:`run_open_loop`) — Poisson arrivals: inter-arrival
  gaps are i.i.d. exponential draws from a seeded
  ``numpy.random.Generator``, so the *schedule* is fully deterministic;
  arrivals do not wait for completions, which is what exposes queueing
  delay, backpressure, and timeout behaviour under overload.
* **closed loop** (:func:`run_closed_loop`) — ``num_clients`` synchronous
  workers, each submitting its next query the moment the previous one
  completes; offered load self-limits to the server's capacity.

Both return a :class:`LoadReport` with client-observed outcome counts,
the per-request latency sample, and the raw results (query row → ids) so
callers can score recall against ground truth.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.server import (
    CagraServer,
    RequestTimeout,
    ServeError,
    ServerOverloaded,
)

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]


@dataclass
class LoadReport:
    """Client-side outcome of one load-generation run.

    ``results`` holds ``(query_row, indices)`` pairs for every completed
    request, where ``query_row`` indexes the query matrix the generator
    was given (requests cycle through it round-robin).
    """

    mode: str
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    timed_out: int = 0
    failed: int = 0
    duration_seconds: float = 0.0
    latencies_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    results: list[tuple[int, np.ndarray]] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        return self.completed / self.duration_seconds if self.duration_seconds else 0.0

    def latency_percentile_ms(self, q: float) -> float:
        return float(np.percentile(self.latencies_ms, q)) if self.latencies_ms.size else 0.0

    def summary(self) -> str:
        return (
            f"{self.mode}-loop load: submitted={self.submitted} "
            f"completed={self.completed} rejected={self.rejected} "
            f"timed_out={self.timed_out} failed={self.failed} "
            f"in {self.duration_seconds:.2f}s ({self.achieved_qps:,.0f} qps); "
            f"latency p50={self.latency_percentile_ms(50):.2f}ms "
            f"p95={self.latency_percentile_ms(95):.2f}ms "
            f"p99={self.latency_percentile_ms(99):.2f}ms"
        )


def _collect(report: LoadReport, pending: list) -> None:
    """Resolve every outstanding handle into the report."""
    latencies = []
    for query_row, handle in pending:
        try:
            result = handle.result()
        except RequestTimeout:
            report.timed_out += 1
        except ServeError:
            report.failed += 1
        else:
            report.completed += 1
            latencies.append(result.latency_ms)
            report.results.append((query_row, result.indices))
    report.latencies_ms = np.asarray(latencies, dtype=np.float64)


def run_open_loop(
    server: CagraServer,
    queries: np.ndarray,
    rate_qps: float,
    num_requests: int,
    k: int | None = None,
    timeout_ms: float | None = None,
    seed: int = 0,
) -> LoadReport:
    """Poisson (open-loop) load: arrivals ignore completions.

    Args:
        server: a started :class:`CagraServer`.
        queries: ``(Q, dim)`` query pool, cycled round-robin.
        rate_qps: mean arrival rate; gaps are ``Exponential(1/rate)``.
        num_requests: total submissions.
        k / timeout_ms: forwarded to :meth:`CagraServer.submit`.
        seed: seeds the arrival-schedule Generator (deterministic).
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be > 0")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    queries = np.atleast_2d(queries)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=num_requests)
    arrivals = np.cumsum(gaps)

    report = LoadReport(mode="open")
    pending: list = []
    start = time.monotonic()
    for i in range(num_requests):
        delay = start + arrivals[i] - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        query_row = i % queries.shape[0]
        try:
            handle = server.submit(queries[query_row], k=k, timeout_ms=timeout_ms)
        except ServerOverloaded:
            report.rejected += 1
        else:
            pending.append((query_row, handle))
        report.submitted += 1
    _collect(report, pending)
    report.duration_seconds = time.monotonic() - start
    return report


def run_closed_loop(
    server: CagraServer,
    queries: np.ndarray,
    num_clients: int,
    requests_per_client: int,
    k: int | None = None,
    timeout_ms: float | None = None,
) -> LoadReport:
    """Closed-loop load: each of ``num_clients`` workers submits its next
    query as soon as the previous one resolves (think-time zero)."""
    if num_clients < 1 or requests_per_client < 1:
        raise ValueError("num_clients and requests_per_client must be >= 1")
    queries = np.atleast_2d(queries)
    num_rows = queries.shape[0]
    report = LoadReport(mode="closed")
    lock = threading.Lock()
    latencies: list[float] = []

    def worker(client: int) -> None:
        for j in range(requests_per_client):
            query_row = (client * requests_per_client + j) % num_rows
            outcome = None
            try:
                result = server.search(queries[query_row], k=k, timeout_ms=timeout_ms)
            except ServerOverloaded:
                outcome = "rejected"
            except RequestTimeout:
                outcome = "timed_out"
            except ServeError:
                outcome = "failed"
            with lock:
                report.submitted += 1
                if outcome is None:
                    report.completed += 1
                    latencies.append(result.latency_ms)
                    report.results.append((query_row, result.indices))
                else:
                    setattr(report, outcome, getattr(report, outcome) + 1)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"loadgen-{c}")
        for c in range(num_clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_seconds = time.monotonic() - start
    report.latencies_ms = np.asarray(latencies, dtype=np.float64)
    return report
