"""Seeded load generators driving a :class:`CagraServer`.

Two standard closed-form workload shapes:

* **open loop** (:func:`run_open_loop`) — Poisson arrivals: inter-arrival
  gaps are i.i.d. exponential draws from a seeded
  ``numpy.random.Generator``, so the *schedule* is fully deterministic;
  arrivals do not wait for completions, which is what exposes queueing
  delay, backpressure, and timeout behaviour under overload.
* **closed loop** (:func:`run_closed_loop`) — ``num_clients`` synchronous
  workers, each submitting its next query the moment the previous one
  completes; offered load self-limits to the server's capacity.

Both return a :class:`LoadReport` with client-observed outcome counts,
the per-request latency sample, and the raw results (query row → ids) so
callers can score recall against ground truth.

Multi-tenant traffic is modeled by :func:`make_zipf_schedule`: a fully
seeded arrival schedule whose tenant ids are drawn ``Zipf(s)`` (a few
tenants dominate, the realistic skew) with Poisson inter-arrival gaps
and round-robin-free query rows.  The schedule is a plain value object —
:class:`repro.router`'s closed-loop fleet loadgen and the ``route`` CLI
both replay it, and because every decision (who arrives, when, asking
what) is fixed by the seed, admission-quota outcomes can be checked
*exactly* against a reference token-bucket simulation of the same
schedule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.server import (
    CagraServer,
    RequestTimeout,
    ServeError,
    ServerOverloaded,
)

__all__ = [
    "LoadReport",
    "ZipfTenantSchedule",
    "make_zipf_schedule",
    "run_closed_loop",
    "run_open_loop",
]


@dataclass(frozen=True)
class ZipfTenantSchedule:
    """A seeded multi-tenant arrival schedule (who, when, asking what).

    Attributes:
        arrival_s: ``(N,)`` cumulative arrival offsets in seconds from
            the start of the run (Poisson process at ``rate_qps``).
        tenants: ``(N,)`` tenant index per request, drawn ``Zipf(s)``
            over ``num_tenants`` ranks (tenant 0 is the heaviest).
        query_rows: ``(N,)`` row into the caller's query pool.
        num_tenants / zipf_s / rate_qps / seed: generation parameters,
            kept so reports and reference simulations are self-describing.
    """

    arrival_s: np.ndarray
    tenants: np.ndarray
    query_rows: np.ndarray
    num_tenants: int
    zipf_s: float
    rate_qps: float
    seed: int

    def __len__(self) -> int:
        return int(self.arrival_s.shape[0])

    def tenant_name(self, tenant: int) -> str:
        return f"tenant-{int(tenant)}"

    def per_tenant_positions(self) -> dict[int, np.ndarray]:
        """Schedule positions grouped by tenant, in arrival order.

        This is the partition the closed-loop fleet loadgen dispatches
        by: all of one tenant's requests stay on one client thread, so
        each tenant's arrival order (and therefore its token-bucket
        refill sequence) is preserved exactly.
        """
        return {
            int(tenant): np.flatnonzero(self.tenants == tenant)
            for tenant in np.unique(self.tenants)
        }


def make_zipf_schedule(
    num_requests: int,
    num_tenants: int,
    num_query_rows: int,
    rate_qps: float = 1000.0,
    zipf_s: float = 1.1,
    seed: int = 0,
) -> ZipfTenantSchedule:
    """Draw a seeded Zipfian multi-tenant arrival schedule.

    Tenant ranks ``1..num_tenants`` get probability ``rank**-zipf_s``
    (normalized); arrivals are a Poisson process at ``rate_qps``; query
    rows are uniform over the pool.  Same arguments ⇒ bitwise-identical
    schedule, on any platform numpy's Philox streams are stable on.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    if num_query_rows < 1:
        raise ValueError("num_query_rows must be >= 1")
    if rate_qps <= 0:
        raise ValueError("rate_qps must be > 0")
    if zipf_s < 0:
        raise ValueError("zipf_s must be >= 0 (0 = uniform tenants)")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_tenants + 1, dtype=np.float64)
    probs = ranks ** -zipf_s
    probs /= probs.sum()
    tenants = rng.choice(num_tenants, size=num_requests, p=probs)
    arrival_s = np.cumsum(rng.exponential(1.0 / rate_qps, size=num_requests))
    query_rows = rng.integers(0, num_query_rows, size=num_requests)
    return ZipfTenantSchedule(
        arrival_s=arrival_s,
        tenants=tenants.astype(np.int64),
        query_rows=query_rows.astype(np.int64),
        num_tenants=num_tenants,
        zipf_s=zipf_s,
        rate_qps=rate_qps,
        seed=seed,
    )


@dataclass
class LoadReport:
    """Client-side outcome of one load-generation run.

    ``results`` holds ``(query_row, indices)`` pairs for every completed
    request, where ``query_row`` indexes the query matrix the generator
    was given (requests cycle through it round-robin).
    """

    mode: str
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    timed_out: int = 0
    failed: int = 0
    duration_seconds: float = 0.0
    latencies_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    results: list[tuple[int, np.ndarray]] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        return self.completed / self.duration_seconds if self.duration_seconds else 0.0

    def latency_percentile_ms(self, q: float) -> float:
        return float(np.percentile(self.latencies_ms, q)) if self.latencies_ms.size else 0.0

    def summary(self) -> str:
        return (
            f"{self.mode}-loop load: submitted={self.submitted} "
            f"completed={self.completed} rejected={self.rejected} "
            f"timed_out={self.timed_out} failed={self.failed} "
            f"in {self.duration_seconds:.2f}s ({self.achieved_qps:,.0f} qps); "
            f"latency p50={self.latency_percentile_ms(50):.2f}ms "
            f"p95={self.latency_percentile_ms(95):.2f}ms "
            f"p99={self.latency_percentile_ms(99):.2f}ms"
        )


def _collect(report: LoadReport, pending: list) -> None:
    """Resolve every outstanding handle into the report."""
    latencies = []
    for query_row, handle in pending:
        try:
            result = handle.result()
        except RequestTimeout:
            report.timed_out += 1
        except ServeError:
            report.failed += 1
        else:
            report.completed += 1
            latencies.append(result.latency_ms)
            report.results.append((query_row, result.indices))
    report.latencies_ms = np.asarray(latencies, dtype=np.float64)


def run_open_loop(
    server: CagraServer,
    queries: np.ndarray,
    rate_qps: float,
    num_requests: int,
    k: int | None = None,
    timeout_ms: float | None = None,
    seed: int = 0,
) -> LoadReport:
    """Poisson (open-loop) load: arrivals ignore completions.

    Args:
        server: a started :class:`CagraServer`.
        queries: ``(Q, dim)`` query pool, cycled round-robin.
        rate_qps: mean arrival rate; gaps are ``Exponential(1/rate)``.
        num_requests: total submissions.
        k / timeout_ms: forwarded to :meth:`CagraServer.submit`.
        seed: seeds the arrival-schedule Generator (deterministic).
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be > 0")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    queries = np.atleast_2d(queries)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=num_requests)
    arrivals = np.cumsum(gaps)

    report = LoadReport(mode="open")
    pending: list = []
    start = time.monotonic()
    for i in range(num_requests):
        delay = start + arrivals[i] - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        query_row = i % queries.shape[0]
        try:
            handle = server.submit(queries[query_row], k=k, timeout_ms=timeout_ms)
        except ServerOverloaded:
            report.rejected += 1
        else:
            pending.append((query_row, handle))
        report.submitted += 1
    _collect(report, pending)
    report.duration_seconds = time.monotonic() - start
    return report


def run_closed_loop(
    server: CagraServer,
    queries: np.ndarray,
    num_clients: int,
    requests_per_client: int,
    k: int | None = None,
    timeout_ms: float | None = None,
) -> LoadReport:
    """Closed-loop load: each of ``num_clients`` workers submits its next
    query as soon as the previous one resolves (think-time zero)."""
    if num_clients < 1 or requests_per_client < 1:
        raise ValueError("num_clients and requests_per_client must be >= 1")
    queries = np.atleast_2d(queries)
    num_rows = queries.shape[0]
    report = LoadReport(mode="closed")
    lock = threading.Lock()
    latencies: list[float] = []

    def worker(client: int) -> None:
        for j in range(requests_per_client):
            query_row = (client * requests_per_client + j) % num_rows
            outcome = None
            try:
                result = server.search(queries[query_row], k=k, timeout_ms=timeout_ms)
            except ServerOverloaded:
                outcome = "rejected"
            except RequestTimeout:
                outcome = "timed_out"
            except ServeError:
                outcome = "failed"
            with lock:
                report.submitted += 1
                if outcome is None:
                    report.completed += 1
                    latencies.append(result.latency_ms)
                    report.results.append((query_row, result.indices))
                else:
                    setattr(report, outcome, getattr(report, outcome) + 1)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"loadgen-{c}")
        for c in range(num_clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_seconds = time.monotonic() - start
    report.latencies_ms = np.asarray(latencies, dtype=np.float64)
    return report
