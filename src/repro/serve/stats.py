"""Serving metrics: counters, batch-size histogram, latency percentiles.

The server threads record into a lock-protected :class:`StatsCollector`;
:meth:`StatsCollector.snapshot` freezes everything into an immutable
:class:`ServeStats` dataclass whose :meth:`ServeStats.summary` renders the
operator-facing text block.  Latencies are kept in a bounded reservoir
(the most recent ``LATENCY_WINDOW`` completions) so a long-running server
reports *current* tail latency with bounded memory.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LATENCY_WINDOW", "OUTCOME_WINDOW", "ServeStats", "StatsCollector"]

#: Completions kept for percentile estimation (a sliding window).
LATENCY_WINDOW = 65536

#: Recent request outcomes (success/failure) kept for the rolling
#: failure rate reported by :meth:`CagraServer.health`.
OUTCOME_WINDOW = 256


@dataclass(frozen=True)
class ServeStats:
    """An immutable snapshot of the server's metrics surface.

    Attributes:
        submitted: requests admitted to the queue (excludes cache hits
            and rejections).
        completed: requests answered by an executed search batch.
        cache_hits / cache_misses: result-cache outcomes at submit time.
        rejected: submissions refused because the queue was full.
        timed_out: requests whose deadline passed before completion
            (dropped while queued or abandoned by the waiting caller).
        failed: requests completed with an error (search raised, or the
            server was stopped without draining).
        batches: executed search batches.
        coalesced_batches: batches of more than one request (single-CTA
            fast path).
        single_query_batches: batch-of-1 flushes dispatched to the
            multi-CTA reference path (Table II's batch-1 rule).
        batch_size_histogram: executed batch size -> count.
        queue_depth / max_queue_depth: depth at snapshot time and the
            high-water mark.
        index_swaps: successful ``swap_index`` calls.
        degraded_batches: batches answered from a partial shard set
            (``on_shard_failure="partial"`` with failures or open
            breakers).
        shard_failures: total per-shard search failures observed across
            degraded batches.
        batch_splits: batches bisected after an execution error to
            isolate the failure (each split adds two sub-batches).
        retried_batches: sub-batches re-executed after a split.
        breaker_trips: shard circuit breakers transitioning to open.
        recent_failure_rate: failed fraction of the most recent
            :data:`OUTCOME_WINDOW` request completions (the
            :meth:`CagraServer.health` signal).
        latency_*_ms: enqueue-to-completion latency percentiles over the
            sliding window (cache hits excluded; they are ~0).
        inserts / insert_rows: accepted write calls / rows (mutable
            index only).
        deletes / delete_rows: accepted delete calls / rows.
        rebuilds_incremental / rebuilds_full: background maintenance runs
            promoted through the server.
        last_promotion_ms: promotion latency (index swap + state install)
            of the most recent maintenance run.
        memtable_rows / tombstone_ratio: freshness gauges sampled from
            the mutable index at snapshot time (0 for static indexes).
    """

    submitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rejected: int = 0
    timed_out: int = 0
    failed: int = 0
    batches: int = 0
    coalesced_batches: int = 0
    single_query_batches: int = 0
    batch_size_histogram: dict[int, int] = field(default_factory=dict)
    queue_depth: int = 0
    max_queue_depth: int = 0
    index_swaps: int = 0
    degraded_batches: int = 0
    shard_failures: int = 0
    batch_splits: int = 0
    retried_batches: int = 0
    breaker_trips: int = 0
    recent_failure_rate: float = 0.0
    inserts: int = 0
    insert_rows: int = 0
    deletes: int = 0
    delete_rows: int = 0
    rebuilds_incremental: int = 0
    rebuilds_full: int = 0
    last_promotion_ms: float = 0.0
    memtable_rows: int = 0
    tombstone_ratio: float = 0.0
    latency_mean_ms: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * count for size, count in self.batch_size_histogram.items())
        return total / self.batches if self.batches else 0.0

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly representation (histogram keys become strings)."""
        out = {
            name: getattr(self, name)
            for name in (
                "submitted", "completed", "cache_hits", "cache_misses",
                "rejected", "timed_out", "failed", "batches",
                "coalesced_batches", "single_query_batches", "queue_depth",
                "max_queue_depth", "index_swaps", "degraded_batches",
                "shard_failures", "batch_splits", "retried_batches",
                "breaker_trips", "recent_failure_rate", "inserts",
                "insert_rows", "deletes", "delete_rows",
                "rebuilds_incremental", "rebuilds_full", "last_promotion_ms",
                "memtable_rows", "tombstone_ratio", "latency_mean_ms",
                "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
                "latency_max_ms",
            )
        }
        out["batch_size_histogram"] = {
            str(size): count for size, count in sorted(self.batch_size_histogram.items())
        }
        out["mean_batch_size"] = self.mean_batch_size
        out["cache_hit_rate"] = self.cache_hit_rate
        return out

    def summary(self) -> str:
        """Operator-facing pretty print of the whole metrics surface."""
        lines = [
            "serving stats",
            f"  requests    submitted={self.submitted}  completed={self.completed}  "
            f"cache_hits={self.cache_hits}  rejected={self.rejected}  "
            f"timed_out={self.timed_out}  failed={self.failed}",
            f"  batches     executed={self.batches}  "
            f"coalesced={self.coalesced_batches}  "
            f"single(multi-CTA)={self.single_query_batches}  "
            f"mean_size={self.mean_batch_size:.2f}",
        ]
        if self.batch_size_histogram:
            hist = "  ".join(
                f"{size}:{count}"
                for size, count in sorted(self.batch_size_histogram.items())
            )
            lines.append(f"  batch sizes {hist}")
        lines.append(
            f"  queue       depth={self.queue_depth}  "
            f"high_water={self.max_queue_depth}"
        )
        lines.append(
            f"  cache       hit_rate={self.cache_hit_rate:.3f}  "
            f"(hits={self.cache_hits} misses={self.cache_misses})"
        )
        lines.append(
            f"  latency     mean={self.latency_mean_ms:.2f}ms  "
            f"p50={self.latency_p50_ms:.2f}ms  p95={self.latency_p95_ms:.2f}ms  "
            f"p99={self.latency_p99_ms:.2f}ms  max={self.latency_max_ms:.2f}ms"
        )
        lines.append(f"  index swaps {self.index_swaps}")
        if (
            self.degraded_batches or self.shard_failures
            or self.batch_splits or self.breaker_trips
        ):
            lines.append(
                f"  resilience  degraded_batches={self.degraded_batches}  "
                f"shard_failures={self.shard_failures}  "
                f"batch_splits={self.batch_splits}  "
                f"retried={self.retried_batches}  "
                f"breaker_trips={self.breaker_trips}  "
                f"recent_failure_rate={self.recent_failure_rate:.3f}"
            )
        if self.inserts or self.deletes or self.rebuilds_incremental or self.rebuilds_full:
            lines.append(
                f"  freshness   inserts={self.inserts}({self.insert_rows} rows)  "
                f"deletes={self.deletes}({self.delete_rows} rows)  "
                f"memtable={self.memtable_rows}  "
                f"tombstones={self.tombstone_ratio:.3f}"
            )
            lines.append(
                f"  rebuilds    incremental={self.rebuilds_incremental}  "
                f"full={self.rebuilds_full}  "
                f"last_promotion={self.last_promotion_ms:.2f}ms"
            )
        return "\n".join(lines)


class StatsCollector:
    """Mutable, lock-protected counters behind :class:`ServeStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = Counter()
        self._batch_sizes = Counter()
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._outcomes: deque[int] = deque(maxlen=OUTCOME_WINDOW)  # 1 = failed
        self._max_queue_depth = 0
        self._last_promotion_ms = 0.0

    # ------------------------------------------------------------------
    # recording (one method per event so call sites read like a log line)
    # ------------------------------------------------------------------
    def record_submitted(self, queue_depth: int) -> None:
        with self._lock:
            self._counts["submitted"] += 1
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)

    def record_rejected(self) -> None:
        with self._lock:
            self._counts["rejected"] += 1

    def record_cache_hit(self) -> None:
        with self._lock:
            self._counts["cache_hits"] += 1

    def record_cache_miss(self) -> None:
        with self._lock:
            self._counts["cache_misses"] += 1

    def record_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self._counts["completed"] += 1
            self._latencies.append(latency_seconds * 1e3)
            self._outcomes.append(0)

    def record_timeout(self) -> None:
        with self._lock:
            self._counts["timed_out"] += 1

    def record_failure(self) -> None:
        with self._lock:
            self._counts["failed"] += 1
            self._outcomes.append(1)

    def record_degraded(self, shard_failures: int) -> None:
        with self._lock:
            self._counts["degraded_batches"] += 1
            self._counts["shard_failures"] += shard_failures

    def record_batch_split(self) -> None:
        with self._lock:
            self._counts["batch_splits"] += 1
            self._counts["retried_batches"] += 2

    def record_breaker_trip(self) -> None:
        with self._lock:
            self._counts["breaker_trips"] += 1

    def record_batch(self, size: int, path: str) -> None:
        with self._lock:
            self._counts["batches"] += 1
            self._batch_sizes[size] += 1
            if path == "multi_cta":
                self._counts["single_query_batches"] += 1
            else:
                self._counts["coalesced_batches"] += 1

    def record_swap(self) -> None:
        with self._lock:
            self._counts["index_swaps"] += 1

    def record_insert(self, rows: int) -> None:
        with self._lock:
            self._counts["inserts"] += 1
            self._counts["insert_rows"] += rows

    def record_delete(self, rows: int) -> None:
        with self._lock:
            self._counts["deletes"] += 1
            self._counts["delete_rows"] += rows

    def record_rebuild(self, action: str, promote_latency_s: float) -> None:
        """One completed maintenance run promoted through the server."""
        with self._lock:
            if action == "incremental":
                self._counts["rebuilds_incremental"] += 1
            else:
                self._counts["rebuilds_full"] += 1
            self._last_promotion_ms = promote_latency_s * 1e3

    # ------------------------------------------------------------------
    def snapshot(self, queue_depth: int = 0, freshness=None) -> ServeStats:
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            if latencies.size:
                p50, p95, p99 = np.percentile(latencies, [50.0, 95.0, 99.0])
                mean, peak = float(latencies.mean()), float(latencies.max())
            else:
                p50 = p95 = p99 = mean = peak = 0.0
            return ServeStats(
                submitted=self._counts["submitted"],
                completed=self._counts["completed"],
                cache_hits=self._counts["cache_hits"],
                cache_misses=self._counts["cache_misses"],
                rejected=self._counts["rejected"],
                timed_out=self._counts["timed_out"],
                failed=self._counts["failed"],
                batches=self._counts["batches"],
                coalesced_batches=self._counts["coalesced_batches"],
                single_query_batches=self._counts["single_query_batches"],
                batch_size_histogram=dict(self._batch_sizes),
                queue_depth=queue_depth,
                max_queue_depth=self._max_queue_depth,
                index_swaps=self._counts["index_swaps"],
                degraded_batches=self._counts["degraded_batches"],
                shard_failures=self._counts["shard_failures"],
                batch_splits=self._counts["batch_splits"],
                retried_batches=self._counts["retried_batches"],
                breaker_trips=self._counts["breaker_trips"],
                recent_failure_rate=(
                    sum(self._outcomes) / len(self._outcomes)
                    if self._outcomes
                    else 0.0
                ),
                inserts=self._counts["inserts"],
                insert_rows=self._counts["insert_rows"],
                deletes=self._counts["deletes"],
                delete_rows=self._counts["delete_rows"],
                rebuilds_incremental=self._counts["rebuilds_incremental"],
                rebuilds_full=self._counts["rebuilds_full"],
                last_promotion_ms=self._last_promotion_ms,
                memtable_rows=(
                    int(freshness.memtable_rows) if freshness is not None else 0
                ),
                tombstone_ratio=(
                    float(freshness.tombstone_ratio) if freshness is not None else 0.0
                ),
                latency_mean_ms=mean,
                latency_p50_ms=float(p50),
                latency_p95_ms=float(p95),
                latency_p99_ms=float(p99),
                latency_max_ms=peak,
            )
