"""repro.serve — online serving on top of :class:`repro.CagraIndex`.

Turns the offline index into a traffic-serving frontend: a dynamic
micro-batching scheduler (coalesce to the single-CTA fast path, route
batch-of-1 flushes to multi-CTA, per Table II), bounded-queue
backpressure with per-request deadlines, an LRU result cache, hot index
swap, a metrics surface, and seeded open/closed-loop load generators.
Failure handling — batch bisection, degraded sharded serving, per-shard
circuit breakers, and the :meth:`CagraServer.health` snapshot — rides on
:mod:`repro.resilience`.  See ``docs/serving.md`` for the full contracts
and ``docs/resilience.md`` for failure semantics.
"""

from repro.serve.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.loadgen import (
    LoadReport,
    ZipfTenantSchedule,
    make_zipf_schedule,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.server import (
    CagraServer,
    PendingResult,
    RequestTimeout,
    ServeError,
    ServeResult,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.stats import ServeStats, StatsCollector

__all__ = [
    "CagraServer",
    "LoadReport",
    "PendingResult",
    "RequestTimeout",
    "ResultCache",
    "ServeConfig",
    "ServeError",
    "ServeResult",
    "ServeStats",
    "ServerClosed",
    "ServerOverloaded",
    "StatsCollector",
    "ZipfTenantSchedule",
    "make_zipf_schedule",
    "run_closed_loop",
    "run_open_loop",
]
