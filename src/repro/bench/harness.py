"""Sweep runners producing recall–QPS curves for every method.

Each runner executes the real algorithm on a real query set (recall is
genuine), prices the operation counters with the appropriate cost model,
and scales the counters to the paper's target batch size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.beam import BeamCounters
from repro.core.config import SearchConfig
from repro.core.index import CagraIndex
from repro.core.metrics import recall as recall_of
from repro.core.search import CostReport
from repro.gpusim import CpuCostModel, GpuCostModel

__all__ = [
    "SweepPoint",
    "MethodCurve",
    "scale_report",
    "beam_to_report",
    "run_cagra_sweep",
    "run_hnsw_sweep",
    "run_beam_sweep_gpu",
    "run_beam_sweep_cpu",
]


@dataclass
class SweepPoint:
    """One point of a recall–QPS curve."""

    param: int
    recall: float
    qps: float
    seconds: float
    distance_computations_per_query: float


@dataclass
class MethodCurve:
    """A method's recall–QPS curve over its sweep parameter."""

    method: str
    points: list[SweepPoint]

    def qps_at_recall(self, target: float) -> float | None:
        """Best QPS among points whose recall meets ``target`` (the
        paper's "N× faster at R% recall" metric); None if unreachable."""
        eligible = [p.qps for p in self.points if p.recall >= target]
        return max(eligible) if eligible else None

    def max_recall(self) -> float:
        return max((p.recall for p in self.points), default=0.0)


def scale_report(report: CostReport, factor: float) -> CostReport:
    """Scale a batch's counters to a larger simulated batch.

    Counters grow linearly with query count; per-query behaviour (and so
    recall) is unchanged.  ``cta_count`` and ``batch_size`` scale with the
    same factor so wave scheduling sees the full batch.
    """
    scaled = CostReport(
        algo=report.algo,
        batch_size=max(1, int(round(report.batch_size * factor))),
        cta_count=max(1, int(round(report.cta_count * factor))),
        iterations=int(report.iterations * factor),
        serial_queue_ops=int(report.serial_queue_ops * factor),
        distance_computations=int(report.distance_computations * factor),
        skipped_distance_computations=int(report.skipped_distance_computations * factor),
        recomputed_distances=int(report.recomputed_distances * factor),
        candidate_gathers=int(report.candidate_gathers * factor),
        sort_comparator_ops=int(report.sort_comparator_ops * factor),
        radix_sorted_elements=int(report.radix_sorted_elements * factor),
        hash_lookups=int(report.hash_lookups * factor),
        hash_probes=int(report.hash_probes * factor),
        hash_insertions=int(report.hash_insertions * factor),
        hash_resets=int(report.hash_resets * factor),
        hash_in_shared=report.hash_in_shared,
        hash_log2_size=report.hash_log2_size,
        random_inits=int(report.random_inits * factor),
        kernel_launches=report.kernel_launches,
    )
    return scaled


def beam_to_report(
    counters: BeamCounters,
    degree: int,
    beam_width: int,
    hash_in_shared: bool = False,
) -> CostReport:
    """Translate beam-search counters into a priceable :class:`CostReport`.

    Models the GPU baselines' kernels (GGNN/GANNS): one CTA per query,
    device-memory visited set (~2 probes per candidate: lookup + insert),
    and priority-queue maintenance priced as *serialized* heap updates of
    depth ``log2(beam)`` per candidate — unlike CAGRA's warp-wide bitonic
    merge, a bounded priority queue updates one element at a time.
    """
    queries = max(1, counters.queries)
    return CostReport(
        algo="single_cta",
        batch_size=queries,
        cta_count=queries,
        iterations=counters.hops,
        distance_computations=counters.distance_computations,
        candidate_gathers=counters.hops * degree,
        serial_queue_ops=counters.distance_computations
        * max(1, int(math.log2(max(2, beam_width)))),
        hash_lookups=counters.distance_computations,
        hash_probes=counters.distance_computations * 2,
        hash_insertions=counters.distance_computations,
        hash_in_shared=hash_in_shared,
        hash_log2_size=13,
    )


def run_cagra_sweep(
    index: CagraIndex,
    queries: np.ndarray,
    truth: np.ndarray,
    k: int,
    itopk_values: list[int],
    batch_size: int,
    base_config: SearchConfig | None = None,
    dtype_bytes: int = 0,
    gpu: GpuCostModel | None = None,
    method: str = "CAGRA",
) -> MethodCurve:
    """Recall–QPS curve for a CAGRA index over ``itopk`` values.

    ``batch_size`` is the *simulated* batch (e.g. 10 000); the real query
    set can be smaller — counters are scaled by the ratio.
    """
    gpu = gpu or GpuCostModel()
    base_config = base_config or SearchConfig()
    dtype_bytes = dtype_bytes or index.dataset.dtype.itemsize
    real_batch = np.atleast_2d(queries).shape[0]
    points = []
    for itopk in itopk_values:
        config = base_config.with_overrides(itopk=max(itopk, k))
        result = index.search(queries, k, config=config, num_sms=gpu.spec.num_sms)
        factor = batch_size / real_batch
        report = scale_report(result.report, factor)
        # Re-resolve the algo for the simulated batch (Fig. 7 rule applies
        # to the batch actually launched, not the probe batch).
        from repro.core.config import choose_algo

        report.algo = choose_algo(config, batch_size, num_sms=gpu.spec.num_sms)
        timing = gpu.search_time(
            report,
            index.dim,
            dtype_bytes=dtype_bytes,
            team_size=base_config.team_size,
            itopk=config.itopk,
            search_width=config.search_width,
        )
        points.append(
            SweepPoint(
                param=itopk,
                recall=recall_of(result.indices, truth),
                qps=timing.qps(batch_size),
                seconds=timing.seconds,
                distance_computations_per_query=result.report.distance_computations
                / real_batch,
            )
        )
    return MethodCurve(method=method, points=points)


def run_hnsw_sweep(
    hnsw,
    queries: np.ndarray,
    truth: np.ndarray,
    k: int,
    ef_values: list[int],
    batch_size: int,
    threads: int = 0,
    cpu: CpuCostModel | None = None,
    method: str = "HNSW",
) -> MethodCurve:
    """Recall–QPS curve for an HNSW index over ``ef`` values."""
    cpu = cpu or CpuCostModel()
    real_batch = np.atleast_2d(queries).shape[0]
    dim = hnsw.data.shape[1]
    points = []
    for ef in ef_values:
        ids, _, counters = hnsw.search(queries, k, ef=ef)
        factor = batch_size / real_batch
        timing = cpu.search_time(
            int(counters.distance_computations * factor),
            int(counters.hops * factor),
            dim,
            batch_size,
            threads=threads,
        )
        points.append(
            SweepPoint(
                param=ef,
                recall=recall_of(ids, truth),
                qps=timing.qps(batch_size),
                seconds=timing.seconds,
                distance_computations_per_query=counters.distance_computations
                / real_batch,
            )
        )
    return MethodCurve(method=method, points=points)


def run_beam_sweep_gpu(
    method: str,
    search_fn,
    queries: np.ndarray,
    truth: np.ndarray,
    k: int,
    beam_values: list[int],
    batch_size: int,
    dim: int,
    degree: int,
    dtype_bytes: int = 4,
    gpu: GpuCostModel | None = None,
) -> MethodCurve:
    """Curve for a GPU beam-search baseline (GGNN/GANNS).

    ``search_fn(queries, k, beam_width)`` must return
    ``(ids, dists, BeamCounters)``.  Kernels are priced with the fixed
    ``team_size=32``, device-memory hash, serialized priority queues and
    un-teamed (poorly coalesced) vector loads these baselines use.
    """
    gpu = gpu or GpuCostModel()
    real_batch = np.atleast_2d(queries).shape[0]
    points = []
    for beam in beam_values:
        ids, _, counters = search_fn(queries, k, beam)
        report = beam_to_report(counters, degree, beam)
        report = scale_report(report, batch_size / real_batch)
        timing = gpu.search_time(
            report,
            dim,
            dtype_bytes=dtype_bytes,
            team_size=32,
            itopk=beam,
            mem_efficiency=0.3,
        )
        points.append(
            SweepPoint(
                param=beam,
                recall=recall_of(ids, truth),
                qps=timing.qps(batch_size),
                seconds=timing.seconds,
                distance_computations_per_query=counters.distance_computations
                / real_batch,
            )
        )
    return MethodCurve(method=method, points=points)


def run_beam_sweep_cpu(
    method: str,
    search_fn,
    queries: np.ndarray,
    truth: np.ndarray,
    k: int,
    beam_values: list[int],
    batch_size: int,
    dim: int,
    threads: int = 0,
    cpu: CpuCostModel | None = None,
) -> MethodCurve:
    """Curve for a CPU beam-search baseline (NSSG under the HNSW-style
    multi-threaded bottom-layer searcher, as the Fig. 13 setup does)."""
    cpu = cpu or CpuCostModel()
    real_batch = np.atleast_2d(queries).shape[0]
    points = []
    for beam in beam_values:
        ids, _, counters = search_fn(queries, k, beam)
        factor = batch_size / real_batch
        timing = cpu.search_time(
            int(counters.distance_computations * factor),
            int(counters.hops * factor),
            dim,
            batch_size,
            threads=threads,
        )
        points.append(
            SweepPoint(
                param=beam,
                recall=recall_of(ids, truth),
                qps=timing.qps(batch_size),
                seconds=timing.seconds,
                distance_computations_per_query=counters.distance_computations
                / real_batch,
            )
        )
    return MethodCurve(method=method, points=points)
