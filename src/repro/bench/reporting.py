"""Plain-text rendering of the paper-shaped tables and curve series."""

from __future__ import annotations

from repro.bench.harness import MethodCurve

__all__ = ["format_table", "format_curve_table", "speedup_at_recall"]


def format_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Aligned-column text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_curve_table(curves: list[MethodCurve], title: str = "") -> str:
    """Render recall–QPS curves as the series a paper figure plots."""
    rows = []
    for curve in curves:
        for point in sorted(curve.points, key=lambda p: p.recall):
            rows.append(
                [curve.method, point.param, point.recall, point.qps,
                 point.distance_computations_per_query]
            )
    return format_table(
        ["method", "param", "recall", "QPS(sim)", "dist/query"], rows, title=title
    )


def speedup_at_recall(
    curves: list[MethodCurve], reference: str, targets: list[float]
) -> str:
    """The paper's headline metric: how much faster each method is than
    ``reference`` at each recall target."""
    by_name = {c.method: c for c in curves}
    if reference not in by_name:
        raise KeyError(f"reference {reference!r} not among curves")
    ref = by_name[reference]
    rows = []
    for target in targets:
        ref_qps = ref.qps_at_recall(target)
        for curve in curves:
            if curve.method == reference:
                continue
            qps = curve.qps_at_recall(target)
            if qps is None or ref_qps is None:
                rows.append([f"{target:.0%}", curve.method, "n/a", "n/a"])
            else:
                rows.append(
                    [f"{target:.0%}", curve.method, qps, f"{qps / ref_qps:.1f}x"]
                )
    return format_table(
        ["recall", "method", "QPS(sim)", f"speedup vs {reference}"], rows
    )
