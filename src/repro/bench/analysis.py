"""Convergence analysis utilities.

:func:`iteration_trace` measures recall as a function of the iteration
budget — the convergence curve behind the paper's observation that
"more graph traversal is required to gain higher recall".  Useful for
choosing ``max_iterations``/``itopk`` operating points and for comparing
graph variants' convergence speed (a better-optimized graph reaches a
recall target in fewer iterations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SearchConfig
from repro.core.index import CagraIndex
from repro.core.metrics import recall as recall_of

__all__ = ["TracePoint", "iteration_trace"]


@dataclass
class TracePoint:
    """Recall and work at one iteration budget."""

    max_iterations: int
    recall: float
    distance_computations_per_query: float
    converged_fraction: float


def iteration_trace(
    index: CagraIndex,
    queries: np.ndarray,
    truth: np.ndarray,
    k: int,
    budgets: list[int],
    config: SearchConfig | None = None,
) -> list[TracePoint]:
    """Recall vs iteration budget for a fixed search configuration.

    Args:
        index: the index to trace.
        queries: query batch.
        truth: exact ground-truth ids, ``(len(queries), >= k)``.
        k: results per query.
        budgets: iteration caps to evaluate (ascending recommended).
        config: base search configuration (``max_iterations`` is swept).

    Returns:
        One :class:`TracePoint` per budget.  ``converged_fraction`` is the
        share of queries whose search stopped before hitting the cap
        (every top-M entry became a parent).
    """
    config = config or SearchConfig(algo="single_cta")
    queries = np.atleast_2d(queries)
    points = []
    for budget in budgets:
        if budget < 1:
            raise ValueError("iteration budgets must be >= 1")
        capped = config.with_overrides(max_iterations=budget)
        result = index.search_fast(queries, k, capped)
        # A query converged if its per-query share of iterations is below
        # the cap (lockstep counters record per-query iterations exactly).
        converged = 1.0 - (
            result.report.iterations / (budget * queries.shape[0])
        )
        points.append(
            TracePoint(
                max_iterations=budget,
                recall=recall_of(result.indices, truth),
                distance_computations_per_query=(
                    result.report.distance_computations / queries.shape[0]
                ),
                converged_fraction=float(np.clip(converged, 0.0, 1.0)),
            )
        )
    return points
