"""Benchmark harness: recall–QPS sweeps and paper-shaped reporting.

:mod:`repro.bench.harness` runs each method across its recall knob
(CAGRA: ``itopk``; HNSW: ``ef``; beam searchers: beam width), measures
*real* recall against brute-force ground truth, and prices the emitted
operation counters with the GPU/CPU cost models to get simulated QPS.

The large batch sizes of the paper (10K queries) are simulated by running
a smaller real query set and scaling the counters linearly — recall is a
per-query property, so the measured value is unbiased, while the cost
models handle batch effects (CTA waves, thread counts) exactly.

:mod:`repro.bench.reporting` renders the tables/series the paper's
figures show.
"""

from repro.bench.analysis import TracePoint, iteration_trace
from repro.bench.harness import (
    MethodCurve,
    SweepPoint,
    beam_to_report,
    run_beam_sweep_gpu,
    run_beam_sweep_cpu,
    run_cagra_sweep,
    run_hnsw_sweep,
    scale_report,
)
from repro.bench.reporting import format_curve_table, format_table, speedup_at_recall

__all__ = [
    "TracePoint",
    "iteration_trace",
    "MethodCurve",
    "SweepPoint",
    "beam_to_report",
    "run_beam_sweep_gpu",
    "run_beam_sweep_cpu",
    "run_cagra_sweep",
    "run_hnsw_sweep",
    "scale_report",
    "format_curve_table",
    "format_table",
    "speedup_at_recall",
]
