"""Adapters conforming every index type to :class:`repro.api.AnnIndex`.

The native classes keep their paper-figure signatures —
``HnswIndex.search(queries, k, ef=...)`` returning a
``(ids, dists, BeamCounters)`` tuple, ``CagraIndex.search`` returning a
:class:`repro.core.search.SearchResult`, and so on — because the bench
harness and figure scripts depend on them.  These thin adapters wrap
each native index behind the one unified surface:

* ``search(queries, k, *, filter_mask=None, config=None, mode="auto",
  on_stage=None, ...)`` returning :class:`repro.api.SearchResult` with
  int32 ids / float32 distances and trailing ``INDEX_MASK`` padding;
* a shared ``dim`` / ``metric`` / ``size`` / ``dataset`` /
  ``num_shards`` introspection surface;
* a per-stage ``on_stage(name, seconds, counters)`` hook threaded down
  to the wrapped implementation.

``config`` is a :class:`repro.core.config.SearchConfig` for every kind:
CAGRA consumes it natively, the beam baselines map ``itopk`` onto their
beam width (``ef`` for HNSW) so one recall/latency knob sweeps all
backends.  ``mode`` selects the CAGRA execution path — ``"reference"``
(:meth:`CagraIndex.search`), ``"fast"`` (:meth:`CagraIndex.search_fast`),
or ``"auto"`` (Table II dispatch: batch 1 → multi-CTA reference path,
coalesced batches → the vectorized fast path, exactly what
:class:`repro.serve.CagraServer` does) — and is ignored by backends with
a single execution path.

Determinism note: :class:`GannsAnnIndex` and :class:`NssgAnnIndex` run
their native searches one query at a time because those implementations
draw random seeds *sequentially across the batch* — a per-query loop
makes results independent of batch composition, so a server micro-batch
answers bitwise identically to a direct single-query call.
"""

from __future__ import annotations

import numpy as np

from repro.api.instrumentation import stage_timer
from repro.api.results import SearchRequest, SearchResult, normalize_results
from repro.baselines.bruteforce import exact_search
from repro.core.config import SearchConfig
from repro.core.graph import INDEX_MASK

__all__ = [
    "AnnIndexAdapter",
    "BruteForceIndex",
    "CagraAnnIndex",
    "GannsAnnIndex",
    "GgnnAnnIndex",
    "HnswAnnIndex",
    "NssgAnnIndex",
    "ShardedCagraAnnIndex",
    "as_ann_index",
]

_MODES = ("auto", "reference", "fast")


def _check_mode(mode: str) -> None:
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")


class AnnIndexAdapter:
    """Base adapter: wraps one native index behind the unified surface.

    Attributes:
        kind: registry name of the wrapped index family (the
            ``--index-kind`` vocabulary).
    """

    kind = "base"

    def __init__(self, inner):
        self._inner = inner

    @property
    def inner(self):
        """The wrapped native index (for paper-figure code paths)."""
        return self._inner

    @property
    def dataset(self) -> np.ndarray:
        data = getattr(self._inner, "dataset", None)
        return data if data is not None else self._inner.data

    @property
    def dim(self) -> int:
        return int(self.dataset.shape[1])

    @property
    def size(self) -> int:
        return int(self.dataset.shape[0])

    @property
    def metric(self) -> str:
        return self._inner.metric

    @property
    def num_shards(self) -> int:
        return 1

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        filter_mask: np.ndarray | None = None,
        config: SearchConfig | None = None,
        mode: str = "auto",
        on_stage=None,
    ) -> SearchResult:
        raise NotImplementedError

    def search_request(self, request: SearchRequest, **kwargs) -> SearchResult:
        """Execute a :class:`SearchRequest` value object."""
        return self.search(
            request.queries, request.k, filter_mask=request.filter_mask, **kwargs
        )

    def save(self, path: str) -> None:
        """Persist through the format registry (:mod:`repro.api.persistence`)."""
        from repro.api.persistence import save_index

        save_index(self, path)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kind={self.kind!r}, inner={self._inner!r})"


class CagraAnnIndex(AnnIndexAdapter):
    """:class:`repro.core.index.CagraIndex` behind the unified surface."""

    kind = "cagra"

    def __init__(self, inner, *, num_sms: int = 108):
        super().__init__(inner)
        self._num_sms = num_sms

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        filter_mask: np.ndarray | None = None,
        config: SearchConfig | None = None,
        mode: str = "auto",
        on_stage=None,
    ) -> SearchResult:
        _check_mode(mode)
        queries = np.atleast_2d(np.asarray(queries))
        config = config or SearchConfig()
        use_fast = mode == "fast" or (mode == "auto" and queries.shape[0] > 1)
        if use_fast:
            raw = self._inner.search_fast(
                queries, k, config=config, filter_mask=filter_mask, on_stage=on_stage
            )
        else:
            if mode == "auto":
                # Table II batch-1 rule: one query spread over many CTAs.
                config = config.with_overrides(algo="multi_cta")
            raw = self._inner.search(
                queries,
                k,
                config=config,
                num_sms=self._num_sms,
                filter_mask=filter_mask,
                on_stage=on_stage,
            )
        ids, dists = normalize_results(raw.indices, raw.distances)
        return SearchResult(indices=ids, distances=dists, counters=raw.report.as_dict())


class ShardedCagraAnnIndex(AnnIndexAdapter):
    """:class:`~repro.core.sharding.ShardedCagraIndex` behind the surface.

    The failure policy (``on_shard_failure`` / ``min_shard_quorum``) is
    fixed at wrap time — it is deployment configuration, not a per-query
    decision — while ``skip_shards`` stays per call because it tracks
    live breaker state.
    """

    kind = "sharded-cagra"

    def __init__(
        self,
        inner,
        *,
        num_sms: int = 108,
        on_shard_failure: str = "raise",
        min_shard_quorum: int = 1,
    ):
        super().__init__(inner)
        self._num_sms = num_sms
        self._on_shard_failure = on_shard_failure
        self._min_shard_quorum = min_shard_quorum

    @property
    def num_shards(self) -> int:
        return int(self._inner.num_shards)

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        filter_mask: np.ndarray | None = None,
        config: SearchConfig | None = None,
        mode: str = "auto",
        on_stage=None,
        skip_shards=(),
    ) -> SearchResult:
        _check_mode(mode)
        queries = np.atleast_2d(np.asarray(queries))
        config = config or SearchConfig()
        policy = dict(
            on_shard_failure=self._on_shard_failure,
            min_shard_quorum=self._min_shard_quorum,
            skip_shards=skip_shards,
            on_stage=on_stage,
        )
        use_fast = mode == "fast" or (mode == "auto" and queries.shape[0] > 1)
        if use_fast:
            raw = self._inner.search_fast(
                queries, k, config=config, filter_mask=filter_mask, **policy
            )
        else:
            if mode == "auto":
                config = config.with_overrides(algo="multi_cta")
            raw = self._inner.search(
                queries,
                k,
                config=config,
                num_sms=self._num_sms,
                filter_mask=filter_mask,
                **policy,
            )
        ids, dists = normalize_results(raw.indices, raw.distances)
        return SearchResult(
            indices=ids,
            distances=dists,
            counters=dict(raw.counters),
            degraded=raw.degraded,
            failed_shards=list(raw.failed_shards),
            skipped_shards=list(raw.skipped_shards),
            shard_reports=list(raw.shard_reports),
            shard_seconds=list(raw.shard_seconds),
        )


class _BeamAnnIndex(AnnIndexAdapter):
    """Shared machinery for the beam-search baselines.

    ``config.itopk`` maps onto the beam width (never below ``k``).
    ``filter_mask`` is best-effort for graph baselines: the search
    overfetches (``max(4k, beam)`` capped at N), drops excluded rows,
    and pads — graph traversal itself is unaware of the mask, unlike
    CAGRA's native pre-filtered search.
    """

    #: True when the native batched search is batch-composition
    #: independent; False forces the per-query loop (see module docs).
    _batch_safe = True

    def __init__(self, inner, *, seed: int = 0):
        super().__init__(inner)
        self._seed = seed

    def _raw_search(
        self, queries: np.ndarray, k: int, beam: int
    ) -> tuple[np.ndarray, np.ndarray, object]:
        """Subclass hook: run the native search on one coherent batch."""
        raise NotImplementedError

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        filter_mask: np.ndarray | None = None,
        config: SearchConfig | None = None,
        mode: str = "auto",
        on_stage=None,
    ) -> SearchResult:
        _check_mode(mode)  # beam baselines have one execution path
        queries = np.atleast_2d(np.asarray(queries))
        k_search = min(int(k), self.size)
        mask = None
        if filter_mask is not None:
            mask = np.asarray(filter_mask, dtype=bool)
            if mask.shape != (self.size,):
                raise ValueError("filter_mask must have one entry per dataset row")
            if not mask.any():
                raise ValueError("filter_mask excludes every node")
            k_search = min(self.size, max(4 * int(k), k_search))
        beam = max(config.itopk if config is not None else 64, k_search)
        with stage_timer(on_stage, f"baseline.{self.kind}.search") as stage:
            if self._batch_safe:
                ids, dists, counters = self._raw_search(queries, k_search, beam)
            else:
                ids, dists, counters = self._per_query_search(queries, k_search, beam)
            stage.counters = self._counters(counters)
        if mask is not None:
            clipped = np.clip(ids.astype(np.int64), 0, self.size - 1)
            dists = np.where(mask[clipped], dists, np.inf)
        out_ids, out_dists = normalize_results(ids, dists)
        return SearchResult(
            indices=out_ids[:, :k],
            distances=out_dists[:, :k],
            counters=self._counters(counters),
        )

    def _per_query_search(self, queries, k, beam):
        from repro.baselines.beam import BeamCounters

        ids = np.empty((queries.shape[0], k), dtype=np.int64)
        dists = np.empty((queries.shape[0], k), dtype=np.float64)
        counters = BeamCounters()
        for i in range(queries.shape[0]):
            row_ids, row_dists, row_counters = self._raw_search(
                queries[i : i + 1], k, beam
            )
            ids[i] = row_ids[0].astype(np.int64)
            dists[i] = row_dists[0]
            counters.merge_from(row_counters)
        return ids, dists, counters

    def _counters(self, counters) -> dict:
        return {
            "algo": self.kind,
            "distance_computations": int(counters.distance_computations),
            "hops": int(counters.hops),
            "queries": int(counters.queries),
        }


class HnswAnnIndex(_BeamAnnIndex):
    """:class:`repro.baselines.HnswIndex`; ``config.itopk`` maps to ``ef``."""

    kind = "hnsw"

    def _raw_search(self, queries, k, beam):
        return self._inner.search(queries, k, ef=beam)


class GgnnAnnIndex(_BeamAnnIndex):
    """:class:`repro.baselines.GgnnIndex` (deterministic per query)."""

    kind = "ggnn"

    def _raw_search(self, queries, k, beam):
        return self._inner.search(queries, k, beam_width=beam, seed=self._seed)


class GannsAnnIndex(_BeamAnnIndex):
    """:class:`repro.baselines.GannsIndex` (per-query loop for determinism)."""

    kind = "ganns"
    _batch_safe = False

    def _raw_search(self, queries, k, beam):
        return self._inner.search(queries, k, beam_width=beam, seed=self._seed)


class NssgAnnIndex(_BeamAnnIndex):
    """:class:`repro.baselines.NssgIndex` (per-query loop for determinism)."""

    kind = "nssg"
    _batch_safe = False

    def _raw_search(self, queries, k, beam):
        return self._inner.search(queries, k, beam_width=beam, seed=self._seed)


class BruteForceIndex(AnnIndexAdapter):
    """Exact search as a first-class :class:`AnnIndex` (the recall oracle).

    Unlike the graph baselines it supports ``filter_mask`` exactly: the
    scan simply restricts to the allowed rows.
    """

    kind = "bruteforce"

    def __init__(self, dataset: np.ndarray, metric: str = "sqeuclidean"):
        dataset = np.asarray(dataset)
        if dataset.ndim != 2 or dataset.shape[0] < 1:
            raise ValueError("dataset must be (N >= 1, dim)")
        super().__init__(None)
        self._dataset = dataset
        self._metric = metric

    @property
    def inner(self):
        return self

    @property
    def dataset(self) -> np.ndarray:
        return self._dataset

    @property
    def metric(self) -> str:
        return self._metric

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        filter_mask: np.ndarray | None = None,
        config: SearchConfig | None = None,
        mode: str = "auto",
        on_stage=None,
    ) -> SearchResult:
        _check_mode(mode)
        queries = np.atleast_2d(np.asarray(queries))
        with stage_timer(on_stage, "bruteforce.search") as stage:
            if filter_mask is not None:
                mask = np.asarray(filter_mask, dtype=bool)
                if mask.shape != (self.size,):
                    raise ValueError("filter_mask must have one entry per dataset row")
                if not mask.any():
                    raise ValueError("filter_mask excludes every node")
                allowed = np.nonzero(mask)[0]
                k_eff = min(int(k), allowed.size)
                local_ids, dists = exact_search(
                    self._dataset[allowed], queries, k_eff, metric=self._metric
                )
                ids = allowed[local_ids.astype(np.int64)]
                scanned = allowed.size
            else:
                k_eff = min(int(k), self.size)
                ids, dists = exact_search(
                    self._dataset, queries, k_eff, metric=self._metric
                )
                scanned = self.size
            counters = {
                "algo": "bruteforce",
                "distance_computations": int(queries.shape[0] * scanned),
            }
            stage.counters = counters
        if k_eff < k:  # fewer candidates than requested: trailing padding
            pad = ((0, 0), (0, int(k) - k_eff))
            ids = np.pad(
                ids.astype(np.int64), pad, constant_values=int(INDEX_MASK)
            )
            dists = np.pad(dists, pad, constant_values=np.inf)
        out_ids, out_dists = normalize_results(ids, dists)
        return SearchResult(indices=out_ids, distances=out_dists, counters=counters)

    def __repr__(self) -> str:
        return (
            f"BruteForceIndex(size={self.size}, dim={self.dim}, "
            f"metric={self._metric!r})"
        )


def as_ann_index(
    index,
    *,
    num_sms: int = 108,
    on_shard_failure: str = "raise",
    min_shard_quorum: int = 1,
    seed: int = 0,
):
    """Wrap any supported index behind the :class:`AnnIndex` protocol.

    Idempotent: an adapter is re-wrapped from its ``inner`` so the given
    policies apply; an already-conforming foreign object passes through.

    Args:
        index: a native index (``CagraIndex``, ``ShardedCagraIndex``,
            ``HnswIndex``, ``GgnnIndex``, ``GannsIndex``, ``NssgIndex``),
            an existing adapter, or any object satisfying the protocol.
        num_sms: SM count forwarded to CAGRA's multi-CTA reference path.
        on_shard_failure: sharded-index failure policy (``"raise"`` /
            ``"partial"``).
        min_shard_quorum: minimum shards that must answer for a degraded
            result.
        seed: RNG seed for the randomized baseline searches (GANNS/NSSG
            seed sampling).
    """
    # Lazy imports: repro.core.sharding itself imports repro.api, so the
    # adapter module must not require it (or the baselines) at top level
    # of the cycle-sensitive path.
    from repro.baselines.ganns import GannsIndex
    from repro.baselines.ggnn import GgnnIndex
    from repro.baselines.hnsw import HnswIndex
    from repro.baselines.nssg import NssgIndex
    from repro.core.index import CagraIndex
    from repro.core.sharding import ShardedCagraIndex

    if isinstance(index, AnnIndexAdapter):
        if index.inner is index:  # self-contained (e.g. BruteForceIndex)
            return index
        index = index.inner
    if isinstance(index, CagraIndex):
        return CagraAnnIndex(index, num_sms=num_sms)
    if isinstance(index, ShardedCagraIndex):
        return ShardedCagraAnnIndex(
            index,
            num_sms=num_sms,
            on_shard_failure=on_shard_failure,
            min_shard_quorum=min_shard_quorum,
        )
    if isinstance(index, HnswIndex):
        return HnswAnnIndex(index, seed=seed)
    if isinstance(index, GgnnIndex):
        return GgnnAnnIndex(index, seed=seed)
    if isinstance(index, GannsIndex):
        return GannsAnnIndex(index, seed=seed)
    if isinstance(index, NssgIndex):
        return NssgAnnIndex(index, seed=seed)
    from repro.api.protocol import AnnIndex

    if isinstance(index, AnnIndex):
        return index
    raise TypeError(
        f"cannot adapt {type(index).__name__} to AnnIndex; supported kinds: "
        "cagra, sharded cagra, hnsw, ggnn, ganns, nssg, bruteforce"
    )
