"""Unified index API: one contract for every ANN backend.

The paper's evaluation (Fig. 12, Table II) is a head-to-head of CAGRA
against HNSW, GGNN, GANNS, and NSSG; this package is the repo-side
analogue — a single typed surface that lets the serving layer, the CLI,
and the bench harness drive any of them interchangeably:

* :class:`AnnIndex` — the runtime-checkable protocol
  (``dim`` / ``metric`` / ``size`` /
  ``search(queries, k, *, filter_mask=None) -> SearchResult``);
* :class:`SearchRequest` / :class:`SearchResult` — frozen value objects
  with the int32/float32 + trailing-``INDEX_MASK`` padding contract;
* :func:`build_index` / :class:`BuildSpec` — the ``--index-kind``
  factory over :data:`INDEX_KINDS`;
* :func:`load_index` / :func:`save_index` / :func:`sniff_format` — the
  ``.npz`` format registry (replaces the CLI's ad-hoc sharded-file
  detection);
* :func:`as_ann_index` + the adapter classes — wrap native indexes
  without disturbing their paper-figure signatures;
* :class:`StageRecorder` / :class:`StageEvent` — the
  ``on_stage(name, seconds, counters)`` instrumentation hook threaded
  through core, sharded, and serving search paths.

See ``docs/API.md`` ("repro.api") for the full contract tables.
"""

from repro.api.adapters import (
    AnnIndexAdapter,
    BruteForceIndex,
    CagraAnnIndex,
    GannsAnnIndex,
    GgnnAnnIndex,
    HnswAnnIndex,
    NssgAnnIndex,
    ShardedCagraAnnIndex,
    as_ann_index,
)
from repro.api.factory import INDEX_KINDS, BuildSpec, build_from_spec, build_index
from repro.api.instrumentation import StageEvent, StageRecorder, stage_timer
from repro.api.persistence import (
    INDEX_FORMATS,
    IndexFormat,
    UnknownIndexFormatError,
    load_ann_index,
    load_index,
    register_format,
    save_index,
    sniff_format,
)
from repro.api.protocol import AnnIndex
from repro.api.results import SearchRequest, SearchResult, normalize_results

__all__ = [
    "AnnIndex",
    "AnnIndexAdapter",
    "BruteForceIndex",
    "BuildSpec",
    "CagraAnnIndex",
    "GannsAnnIndex",
    "GgnnAnnIndex",
    "HnswAnnIndex",
    "INDEX_FORMATS",
    "INDEX_KINDS",
    "IndexFormat",
    "NssgAnnIndex",
    "SearchRequest",
    "SearchResult",
    "ShardedCagraAnnIndex",
    "StageEvent",
    "StageRecorder",
    "UnknownIndexFormatError",
    "as_ann_index",
    "build_from_spec",
    "build_index",
    "load_ann_index",
    "load_index",
    "normalize_results",
    "register_format",
    "save_index",
    "sniff_format",
    "stage_timer",
]
