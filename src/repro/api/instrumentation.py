"""Per-stage instrumentation for the unified search path.

Core, sharded/parallel, and serving code used to report timings through
three ad-hoc mechanisms (``CostReport`` counters, ``shard_seconds``
lists, and ``ServeStats``).  The unified surface threads **one** hook
through all of them: any callable with the signature
``on_stage(name, seconds, counters)``.

:class:`StageRecorder` is the standard sink — pass its bound
``on_stage`` method into :meth:`repro.api.AnnIndex.search` (or
``build_index`` / ``CagraServer``) and read the collected
:class:`StageEvent` list afterwards::

    recorder = StageRecorder()
    index.search(queries, k=10, on_stage=recorder.on_stage)
    for event in recorder.events:
        print(event.name, event.seconds, event.counters)

Stage names are dotted paths identifying the layer that emitted them:
``build.<kind>``, ``core.search``, ``baseline.<kind>.search``,
``shard.<s>.search``, ``shard.merge``, ``serve.batch``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["StageEvent", "StageRecorder", "stage_timer"]


@dataclass(frozen=True)
class StageEvent:
    """One timed stage of a build or search.

    Attributes:
        name: dotted stage name (e.g. ``"shard.2.search"``).
        seconds: measured Python wall time of the stage.
        counters: operation counters the stage chose to attach (for
            searches, typically a :meth:`CostReport.as_dict` mapping).
    """

    name: str
    seconds: float
    counters: dict = field(default_factory=dict)


class StageRecorder:
    """Collects :class:`StageEvent` records; the default ``on_stage`` sink."""

    def __init__(self):
        self.events: list[StageEvent] = []

    def on_stage(self, name: str, seconds: float, counters: dict | None = None) -> None:
        """The hook itself — pass this bound method as ``on_stage=``."""
        self.events.append(StageEvent(str(name), float(seconds), dict(counters or {})))

    def clear(self) -> None:
        self.events.clear()

    def stage_seconds(self) -> dict[str, float]:
        """Total seconds per stage name (names repeat across calls)."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.name] = totals.get(event.name, 0.0) + event.seconds
        return totals

    def total_seconds(self, prefix: str = "") -> float:
        """Sum of recorded stage times, optionally filtered by name prefix."""
        return sum(e.seconds for e in self.events if e.name.startswith(prefix))

    def as_records(self) -> list[dict]:
        """JSON-friendly dump (what ``repro-cagra bench --format json`` emits)."""
        return [
            {"name": e.name, "seconds": e.seconds, "counters": e.counters}
            for e in self.events
        ]


class stage_timer:
    """Context manager that times a block and reports it to ``on_stage``.

    A no-op when ``on_stage`` is None, so instrumented code pays nothing
    on the common uninstrumented path::

        with stage_timer(on_stage, "shard.merge") as stage:
            merged = merge(...)
            stage.counters["num_shards"] = n
    """

    def __init__(self, on_stage, name: str):
        self._on_stage = on_stage
        self._name = name
        self._started = 0.0
        self.counters: dict = {}

    def __enter__(self) -> "stage_timer":
        if self._on_stage is not None:
            self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._on_stage is not None and exc_type is None:
            self._on_stage(
                self._name, time.perf_counter() - self._started, self.counters
            )
