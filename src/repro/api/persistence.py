"""Save/load registry with format sniffing for every index kind.

One ``.npz`` loader replaces the sharded-vs-monolithic detection that
``repro-cagra build/search/serve`` each used to reimplement: formats
register a *sniff* predicate over the archive's key set, and
:func:`load_index` dispatches to the first match.

Legacy files keep loading unchanged — a monolithic CAGRA ``.npz``
(``dataset``/``neighbors``/``metric`` keys) and a sharded one (extra
``num_shards`` key) predate the registry and carry no format tag.  Files
written for the other kinds embed an explicit ``format`` key.

The ``index.load`` fault point (see :mod:`repro.resilience.faults`)
fires exactly once per :func:`load_index` call, preserving the CLI's
load-failure chaos-testing contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "INDEX_FORMATS",
    "IndexFormat",
    "UnknownIndexFormatError",
    "load_ann_index",
    "load_index",
    "register_format",
    "save_index",
    "sniff_format",
]


class UnknownIndexFormatError(ValueError):
    """The archive matches no registered index format."""


@dataclass(frozen=True)
class IndexFormat:
    """One persistable index format.

    Attributes:
        name: format (and usually index-kind) name.
        sniff: ``sniff(keys: frozenset[str]) -> bool`` over archive keys.
        load: ``load(path, parallel) -> native index``.
        save: ``save(native_index, path) -> None``.
        matches: ``matches(native_index) -> bool`` for save dispatch.
    """

    name: str
    sniff: object
    load: object
    save: object
    matches: object


def _pack_ragged(rows) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate variable-length id rows into (values, offsets)."""
    lengths = [len(row) for row in rows]
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    if rows:
        values = np.concatenate(
            [np.asarray(row, dtype=np.int64) for row in rows]
        )
    else:
        values = np.zeros(0, dtype=np.int64)
    return values, offsets


def _unpack_ragged(values: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    return [
        values[offsets[i] : offsets[i + 1]].astype(np.int64)
        for i in range(offsets.size - 1)
    ]


# ----------------------------------------------------------------------
# cagra (legacy, untagged)
# ----------------------------------------------------------------------
def _sniff_cagra(keys: frozenset) -> bool:
    return {"dataset", "neighbors", "metric"} <= keys and "num_shards" not in keys


def _load_cagra(path: str, parallel):
    from repro.core.index import CagraIndex

    return CagraIndex.load(path)


def _save_cagra(index, path: str) -> None:
    index.save(path)


def _matches_cagra(index) -> bool:
    from repro.core.index import CagraIndex

    return isinstance(index, CagraIndex)


# ----------------------------------------------------------------------
# sharded cagra (legacy, untagged)
# ----------------------------------------------------------------------
def _sniff_sharded(keys: frozenset) -> bool:
    return "num_shards" in keys


def _load_sharded(path: str, parallel):
    from repro.core.sharding import ShardedCagraIndex

    return ShardedCagraIndex.load(path, parallel=parallel)


def _matches_sharded(index) -> bool:
    from repro.core.sharding import ShardedCagraIndex

    return isinstance(index, ShardedCagraIndex)


# ----------------------------------------------------------------------
# hnsw
# ----------------------------------------------------------------------
def _save_hnsw(index, path: str) -> None:
    payload = {
        "format": np.array("hnsw"),
        "data": index.data,
        "m": np.array(index.m),
        "ef_construction": np.array(index.ef_construction),
        "metric": np.array(index.metric),
        "entry_point": np.array(index.entry_point),
        "max_level": np.array(index.max_level),
        "num_layers": np.array(len(index.layers)),
    }
    for level, layer in enumerate(index.layers):
        nodes = np.fromiter(layer.keys(), dtype=np.int64, count=len(layer))
        values, offsets = _pack_ragged([layer[int(n)] for n in nodes])
        payload[f"layer{level}_nodes"] = nodes
        payload[f"layer{level}_values"] = values
        payload[f"layer{level}_offsets"] = offsets
    np.savez_compressed(path, **payload)


def _load_hnsw(path: str, parallel):
    from repro.baselines.hnsw import HnswIndex

    with np.load(path, allow_pickle=False) as archive:
        index = HnswIndex(
            archive["data"],
            m=int(archive["m"]),
            ef_construction=int(archive["ef_construction"]),
            metric=str(archive["metric"]),
        )
        index.entry_point = int(archive["entry_point"])
        index.max_level = int(archive["max_level"])
        index.layers = []
        for level in range(int(archive["num_layers"])):
            nodes = archive[f"layer{level}_nodes"]
            rows = _unpack_ragged(
                archive[f"layer{level}_values"], archive[f"layer{level}_offsets"]
            )
            index.layers.append(
                {int(node): row for node, row in zip(nodes, rows)}
            )
    index._built = True
    return index


def _matches_hnsw(index) -> bool:
    from repro.baselines.hnsw import HnswIndex

    return isinstance(index, HnswIndex)


# ----------------------------------------------------------------------
# ggnn
# ----------------------------------------------------------------------
def _save_ggnn(index, path: str) -> None:
    np.savez_compressed(
        path,
        format=np.array("ggnn"),
        data=index.data,
        neighbors=index.graph.neighbors,
        coarse_ids=index.coarse_ids,
        degree=np.array(index.degree),
        metric=np.array(index.metric),
    )


def _load_ggnn(path: str, parallel):
    from repro.baselines.ggnn import GgnnIndex
    from repro.core.graph import FixedDegreeGraph

    with np.load(path, allow_pickle=False) as archive:
        index = GgnnIndex(
            archive["data"],
            degree=int(archive["degree"]),
            metric=str(archive["metric"]),
        )
        index.graph = FixedDegreeGraph(archive["neighbors"])
        index.coarse_ids = archive["coarse_ids"].astype(np.int64)
    return index


def _matches_ggnn(index) -> bool:
    from repro.baselines.ggnn import GgnnIndex

    return isinstance(index, GgnnIndex)


# ----------------------------------------------------------------------
# ganns
# ----------------------------------------------------------------------
def _save_ganns(index, path: str) -> None:
    values, offsets = _pack_ragged(index.adjacency)
    np.savez_compressed(
        path,
        format=np.array("ganns"),
        data=index.data,
        adjacency_values=values,
        adjacency_offsets=offsets,
        entry_point=np.array(index.entry_point),
        degree=np.array(index.degree),
        metric=np.array(index.metric),
    )


def _load_ganns(path: str, parallel):
    from repro.baselines.ganns import GannsIndex

    with np.load(path, allow_pickle=False) as archive:
        index = GannsIndex(
            archive["data"],
            degree=int(archive["degree"]),
            metric=str(archive["metric"]),
        )
        index.adjacency = _unpack_ragged(
            archive["adjacency_values"], archive["adjacency_offsets"]
        )
        index.entry_point = int(archive["entry_point"])
    index._built = True
    return index


def _matches_ganns(index) -> bool:
    from repro.baselines.ganns import GannsIndex

    return isinstance(index, GannsIndex)


# ----------------------------------------------------------------------
# nssg
# ----------------------------------------------------------------------
def _save_nssg(index, path: str) -> None:
    values, offsets = _pack_ragged(index.adjacency)
    np.savez_compressed(
        path,
        format=np.array("nssg"),
        data=index.data,
        adjacency_values=values,
        adjacency_offsets=offsets,
        degree_bound=np.array(index.degree_bound),
        metric=np.array(index.metric),
    )


def _load_nssg(path: str, parallel):
    from repro.baselines.nssg import NssgIndex

    with np.load(path, allow_pickle=False) as archive:
        # knn=None: the initial k-NN graph is build-time-only state.
        index = NssgIndex(
            archive["data"],
            None,
            degree_bound=int(archive["degree_bound"]),
            metric=str(archive["metric"]),
        )
        index.adjacency = _unpack_ragged(
            archive["adjacency_values"], archive["adjacency_offsets"]
        )
    index._built = True
    return index


def _matches_nssg(index) -> bool:
    from repro.baselines.nssg import NssgIndex

    return isinstance(index, NssgIndex)


# ----------------------------------------------------------------------
# bruteforce
# ----------------------------------------------------------------------
def _save_bruteforce(index, path: str) -> None:
    np.savez_compressed(
        path,
        format=np.array("bruteforce"),
        data=index.dataset,
        metric=np.array(index.metric),
    )


def _load_bruteforce(path: str, parallel):
    from repro.api.adapters import BruteForceIndex

    with np.load(path, allow_pickle=False) as archive:
        return BruteForceIndex(archive["data"], metric=str(archive["metric"]))


def _matches_bruteforce(index) -> bool:
    from repro.api.adapters import BruteForceIndex

    return isinstance(index, BruteForceIndex)


def _make_tag_sniffer(name: str):
    # Tagged formats cannot be distinguished from key sets alone (they
    # share the layout keys), so sniffing reads the tag value; the
    # registry passes it in via the keys argument convention below.
    def sniff(keys: frozenset) -> bool:
        return f"format={name}" in keys

    return sniff


#: Registered formats, probed in order (tagged formats first).
INDEX_FORMATS: list[IndexFormat] = [
    IndexFormat("hnsw", _make_tag_sniffer("hnsw"), _load_hnsw, _save_hnsw, _matches_hnsw),
    IndexFormat("ggnn", _make_tag_sniffer("ggnn"), _load_ggnn, _save_ggnn, _matches_ggnn),
    IndexFormat("ganns", _make_tag_sniffer("ganns"), _load_ganns, _save_ganns, _matches_ganns),
    IndexFormat("nssg", _make_tag_sniffer("nssg"), _load_nssg, _save_nssg, _matches_nssg),
    IndexFormat(
        "bruteforce",
        _make_tag_sniffer("bruteforce"),
        _load_bruteforce,
        _save_bruteforce,
        _matches_bruteforce,
    ),
    IndexFormat(
        "sharded-cagra", _sniff_sharded, _load_sharded, _save_cagra, _matches_sharded
    ),
    IndexFormat("cagra", _sniff_cagra, _load_cagra, _save_cagra, _matches_cagra),
]


def register_format(fmt: IndexFormat, *, prepend: bool = True) -> None:
    """Register a custom format (probed before built-ins by default)."""
    if prepend:
        INDEX_FORMATS.insert(0, fmt)
    else:
        INDEX_FORMATS.append(fmt)


def _sniff_keys(path: str) -> frozenset:
    """Archive key set, augmented with a ``format=<tag>`` pseudo-key."""
    with np.load(path, allow_pickle=False) as archive:
        keys = set(archive.files)
        if "format" in keys:
            keys.add(f"format={archive['format']}")
    return frozenset(keys)


def sniff_format(path: str) -> str:
    """Name of the registered format that claims ``path``.

    Raises :class:`UnknownIndexFormatError` when nothing matches.
    """
    keys = _sniff_keys(path)
    for fmt in INDEX_FORMATS:
        if fmt.sniff(keys):
            return fmt.name
    raise UnknownIndexFormatError(
        f"{path!r} matches no registered index format "
        f"(known: {[f.name for f in INDEX_FORMATS]})"
    )


def load_index(path: str, *, parallel=None, fault_plan: str = ""):
    """Load a saved index of any kind, returning the *native* object.

    ``parallel`` is forwarded to sharded loads; ``fault_plan`` (JSON or
    ``@path``; empty defers to ``REPRO_FAULT_PLAN``) drives the
    ``index.load`` fault point, which fires once per call.
    """
    from repro.resilience import FaultInjector, resolve_fault_plan

    plan = resolve_fault_plan(fault_plan)
    if plan is not None:
        FaultInjector(plan).fire("index.load", path=path)
    name = sniff_format(path)
    fmt = next(f for f in INDEX_FORMATS if f.name == name)
    return fmt.load(path, parallel)


def load_ann_index(path: str, *, parallel=None, fault_plan: str = "", **policies):
    """:func:`load_index` + :func:`~repro.api.adapters.as_ann_index`.

    ``policies`` (``num_sms``, ``on_shard_failure``, ``min_shard_quorum``,
    ``seed``) configure the returned adapter.
    """
    from repro.api.adapters import as_ann_index

    raw = load_index(path, parallel=parallel, fault_plan=fault_plan)
    return as_ann_index(raw, **policies)


def save_index(index, path: str) -> None:
    """Save a native index or adapter through the format registry."""
    from repro.api.adapters import AnnIndexAdapter

    raw = index
    if isinstance(index, AnnIndexAdapter) and index.inner is not index:
        raw = index.inner
    for fmt in INDEX_FORMATS:
        if fmt.matches(raw):
            fmt.save(raw, path)
            return
    raise UnknownIndexFormatError(
        f"no registered format can save {type(raw).__name__}"
    )
