"""Unified search request/result value objects for every index kind.

Every :class:`repro.api.AnnIndex` search returns the same
:class:`SearchResult` shape regardless of backend, which is what lets
:class:`repro.serve.CagraServer`, the CLI, and the bench harness treat
CAGRA, its sharded variant, and all four paper baselines uniformly.

The result contract on the unified surface:

* ``indices`` is ``(batch, k)`` **int32** (``INDEX_MASK = 2**31 - 1``
  fits exactly, so uint32-producing backends convert losslessly);
* ``distances`` is ``(batch, k)`` **float32**, sorted ascending;
* unfilled slots are ``(INDEX_MASK, +inf)`` and appear only as
  *trailing* padding — a finite entry never follows a sentinel;
* ``counters`` always includes ``"algo"`` and
  ``"distance_computations"``.

Legacy producers (:meth:`ShardedCagraIndex.search` called directly, not
through an adapter) reuse this class but keep their historical native
dtypes (uint32 ids, float64 distances) for bitwise compatibility; the
int32/float32 guarantee holds for everything obtained through
:func:`repro.api.as_ann_index`, :func:`repro.api.build_index`, or
:func:`repro.api.load_ann_index`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import INDEX_MASK

__all__ = ["SearchRequest", "SearchResult", "normalize_results"]


@dataclass(frozen=True)
class SearchRequest:
    """One batched search call as a value object.

    Attributes:
        queries: ``(batch, dim)`` query vectors (a single ``(dim,)``
            vector is promoted to a batch of one).
        k: neighbors requested per query.
        filter_mask: optional length-N bool mask restricting results to
            dataset rows whose entry is True.
    """

    queries: np.ndarray
    k: int = 10
    filter_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "queries", np.atleast_2d(np.asarray(self.queries)))
        if self.queries.ndim != 2:
            raise ValueError("queries must be at most 2-D")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.filter_mask is not None:
            object.__setattr__(
                self, "filter_mask", np.asarray(self.filter_mask, dtype=bool)
            )

    @property
    def batch(self) -> int:
        return int(self.queries.shape[0])


@dataclass(frozen=True)
class SearchResult:
    """Merged/normalized output of one batched ANN search.

    Subsumes the old ``ShardedSearchResult``: the shard metadata fields
    are empty/default for monolithic indexes and populated by sharded
    searches, so callers never branch on result type.

    Attributes:
        indices: ``(batch, k)`` neighbor ids; ``INDEX_MASK`` marks
            unfilled slots, only in trailing positions (int32 on the
            unified adapter surface — see the module docstring).
        distances: matching distances, ascending; ``inf`` on unfilled
            slots (float32 on the unified surface).
        counters: flat operation-counter mapping for the whole batch;
            always carries ``"algo"`` and ``"distance_computations"``.
        degraded: True when the answer covers only part of the index
            (some shards failed or were skipped).
        failed_shards: shard numbers whose search failed after retries.
        skipped_shards: shards excluded up front by the caller (e.g.
            open circuit breakers).
        shard_reports: one ``CostReport`` per shard (sharded searches
            only; the cost model prices each on its own GPU).
        shard_seconds: measured per-shard wall seconds (sharded only).
    """

    indices: np.ndarray
    distances: np.ndarray
    counters: dict = field(default_factory=dict)
    degraded: bool = False
    failed_shards: list[int] = field(default_factory=list)
    skipped_shards: list[int] = field(default_factory=list)
    shard_reports: list = field(default_factory=list)
    shard_seconds: list[float] = field(default_factory=list)

    @property
    def batch(self) -> int:
        return int(self.indices.shape[0])

    @property
    def k(self) -> int:
        return int(self.indices.shape[1])


def normalize_results(
    indices: np.ndarray, distances: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize raw backend output to the unified result contract.

    Casts ids to int32 and distances to float32, rewrites every unfilled
    slot (sentinel id or non-finite distance, e.g. a baseline's zero-id
    ``inf`` padding) to ``(INDEX_MASK, +inf)``, and compacts each row so
    the padding is strictly trailing.  The relative order of filled
    entries is preserved (stable), so already-sorted backends stay
    sorted and filled CAGRA/sharded outputs pass through bit-identical
    in value.
    """
    ids = np.atleast_2d(np.asarray(indices)).astype(np.int64)
    dists = np.atleast_2d(np.asarray(distances)).astype(np.float64)
    if ids.shape != dists.shape:
        raise ValueError("indices and distances must have the same shape")
    unfilled = (ids == int(INDEX_MASK)) | ~np.isfinite(dists)
    # Stable sort on the unfilled flag alone: filled entries keep their
    # order, sentinels sink to the tail.
    order = np.argsort(unfilled, axis=1, kind="stable")
    ids = np.take_along_axis(ids, order, axis=1)
    dists = np.take_along_axis(dists, order, axis=1)
    unfilled = np.take_along_axis(unfilled, order, axis=1)
    out_ids = np.where(unfilled, np.int64(int(INDEX_MASK)), ids).astype(np.int32)
    out_dists = np.where(unfilled, np.inf, dists).astype(np.float32)
    return out_ids, out_dists
