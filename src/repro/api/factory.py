"""Build any index kind through one factory: ``build_index``.

The CLI's ``--index-kind {cagra,hnsw,ggnn,ganns,nssg,bruteforce}`` routes
here; programmatic callers can use a :class:`BuildSpec` value object or
the keyword form directly::

    from repro.api import build_index

    index = build_index("hnsw", data, metric="sqeuclidean", degree=32)
    result = index.search(queries, k=10)

Every builder returns an :class:`~repro.api.adapters.AnnIndexAdapter`
(already conforming to :class:`repro.api.AnnIndex`); the native index
stays reachable as ``.inner`` for paper-figure code.  Kind-specific
parameters pass through ``params`` (e.g. ``ef_construction`` for HNSW,
``shard_size`` for GGNN); ``degree`` maps onto each kind's degree-like
knob (HNSW's ``m`` is ``degree // 2`` since its base layer keeps ``2M``
links).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.api.adapters import (
    BruteForceIndex,
    CagraAnnIndex,
    GannsAnnIndex,
    GgnnAnnIndex,
    HnswAnnIndex,
    NssgAnnIndex,
    ShardedCagraAnnIndex,
)

__all__ = ["INDEX_KINDS", "BuildSpec", "build_from_spec", "build_index"]

#: The ``--index-kind`` vocabulary, in paper-figure order.
INDEX_KINDS = ("cagra", "hnsw", "ggnn", "ganns", "nssg", "bruteforce")


@dataclass(frozen=True)
class BuildSpec:
    """Declarative description of one index build.

    Attributes:
        kind: one of :data:`INDEX_KINDS`.
        metric: distance metric name.
        degree: degree-like knob (0 = the kind's default).
        seed: build RNG seed.
        shards: sub-index count (> 1 is CAGRA-only sharding).
        dataset_dtype: ``float32`` or ``float16`` storage (CAGRA only).
        params: kind-specific extra build parameters.
    """

    kind: str
    metric: str = "sqeuclidean"
    degree: int = 0
    seed: int = 0
    shards: int = 1
    dataset_dtype: str = "float32"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise ValueError(f"kind must be one of {INDEX_KINDS}, got {self.kind!r}")
        if self.degree < 0:
            raise ValueError("degree must be >= 0 (0 = default)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > 1 and self.kind != "cagra":
            raise ValueError("sharding is only supported for kind='cagra'")


def _even(degree: int) -> int:
    """CAGRA/NN-descent graph degrees must be even; round odd ones up."""
    return degree + (degree % 2)


def _build_cagra(spec: BuildSpec, dataset, parallel, policies):
    from repro.core.config import GraphBuildConfig
    from repro.core.index import CagraIndex

    config = GraphBuildConfig(
        graph_degree=_even(spec.degree) or 32,
        metric=spec.metric,
        seed=spec.seed,
        **spec.params,
    )
    if spec.shards > 1:
        from repro.core.sharding import ShardedCagraIndex

        inner = ShardedCagraIndex.build(
            dataset,
            spec.shards,
            config,
            dataset_dtype=spec.dataset_dtype,
            parallel=parallel,
        )
        return ShardedCagraAnnIndex(inner, **policies)
    inner = CagraIndex.build(dataset, config, dataset_dtype=spec.dataset_dtype)
    return CagraAnnIndex(inner, num_sms=policies.get("num_sms", 108))


def _build_hnsw(spec: BuildSpec, dataset, parallel, policies):
    from repro.baselines.hnsw import HnswIndex

    params = dict(spec.params)
    m = params.pop("m", max(2, spec.degree // 2) if spec.degree else 16)
    inner = HnswIndex(
        dataset, m=m, metric=spec.metric, seed=spec.seed, **params
    ).build()
    return HnswAnnIndex(inner, seed=spec.seed)


def _build_ggnn(spec: BuildSpec, dataset, parallel, policies):
    from repro.baselines.ggnn import GgnnIndex

    inner = GgnnIndex(
        dataset,
        degree=spec.degree or 24,
        metric=spec.metric,
        seed=spec.seed,
        **spec.params,
    ).build()
    return GgnnAnnIndex(inner, seed=spec.seed)


def _build_ganns(spec: BuildSpec, dataset, parallel, policies):
    from repro.baselines.ganns import GannsIndex

    inner = GannsIndex(
        dataset,
        degree=spec.degree or 24,
        metric=spec.metric,
        seed=spec.seed,
        **spec.params,
    ).build()
    return GannsAnnIndex(inner, seed=spec.seed)


def _build_nssg(spec: BuildSpec, dataset, parallel, policies):
    from repro.baselines.nssg import NssgIndex
    from repro.core.config import GraphBuildConfig
    from repro.core.nn_descent import build_knn_graph

    degree = spec.degree or 32
    knn_config = GraphBuildConfig(
        graph_degree=_even(degree), metric=spec.metric, seed=spec.seed
    )
    knn = build_knn_graph(
        dataset, knn_config.resolved_intermediate_degree, knn_config
    )
    inner = NssgIndex(
        dataset,
        knn,
        degree_bound=degree,
        metric=spec.metric,
        seed=spec.seed,
        **spec.params,
    ).build()
    return NssgAnnIndex(inner, seed=spec.seed)


def _build_bruteforce(spec: BuildSpec, dataset, parallel, policies):
    return BruteForceIndex(dataset, metric=spec.metric)


_BUILDERS = {
    "cagra": _build_cagra,
    "hnsw": _build_hnsw,
    "ggnn": _build_ggnn,
    "ganns": _build_ganns,
    "nssg": _build_nssg,
    "bruteforce": _build_bruteforce,
}


def build_from_spec(
    spec: BuildSpec,
    dataset: np.ndarray,
    *,
    parallel=None,
    num_sms: int = 108,
    on_shard_failure: str = "raise",
    min_shard_quorum: int = 1,
    on_stage=None,
):
    """Build the index described by ``spec`` over ``dataset``.

    Returns an adapter conforming to :class:`repro.api.AnnIndex`.  When
    ``on_stage`` is given, one ``build.<kind>`` stage event is emitted
    with the wall time and basic size counters.
    """
    dataset = np.asarray(dataset)
    policies = dict(
        num_sms=num_sms,
        on_shard_failure=on_shard_failure,
        min_shard_quorum=min_shard_quorum,
    )
    started = time.perf_counter()
    adapter = _BUILDERS[spec.kind](spec, dataset, parallel, policies)
    if on_stage is not None:
        on_stage(
            f"build.{spec.kind}",
            time.perf_counter() - started,
            {
                "size": int(dataset.shape[0]),
                "dim": int(dataset.shape[1]),
                "shards": spec.shards,
            },
        )
    return adapter


def build_index(
    kind: str,
    dataset: np.ndarray,
    *,
    metric: str = "sqeuclidean",
    degree: int = 0,
    seed: int = 0,
    shards: int = 1,
    dataset_dtype: str = "float32",
    parallel=None,
    num_sms: int = 108,
    on_shard_failure: str = "raise",
    min_shard_quorum: int = 1,
    on_stage=None,
    **params,
):
    """Keyword-form factory: ``build_index("hnsw", data, degree=32)``.

    See :class:`BuildSpec` for the shared knobs and
    :func:`build_from_spec` for execution semantics; any extra keyword
    argument lands in ``BuildSpec.params`` and is forwarded to the
    kind's native constructor.
    """
    spec = BuildSpec(
        kind=kind,
        metric=metric,
        degree=degree,
        seed=seed,
        shards=shards,
        dataset_dtype=dataset_dtype,
        params=params,
    )
    return build_from_spec(
        spec,
        dataset,
        parallel=parallel,
        num_sms=num_sms,
        on_shard_failure=on_shard_failure,
        min_shard_quorum=min_shard_quorum,
        on_stage=on_stage,
    )
