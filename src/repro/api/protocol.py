"""The :class:`AnnIndex` protocol — the one contract every index obeys.

Anything that exposes ``dim`` / ``metric`` / ``size`` and a
``search(queries, k, *, filter_mask=None) -> SearchResult`` method is an
``AnnIndex`` and can be served by :class:`repro.serve.CagraServer`,
driven from the CLI, persisted through :mod:`repro.api.persistence`, and
benchmarked side by side.

The protocol is ``runtime_checkable``, so conformance tests (and user
code) can assert ``isinstance(index, AnnIndex)``.  Note the usual
:mod:`typing` caveat: the runtime check verifies member *presence*, not
signatures — the dtype/shape contract is specified by
:class:`repro.api.results.SearchResult` and enforced by the adapters in
:mod:`repro.api.adapters`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.api.results import SearchResult

__all__ = ["AnnIndex"]


@runtime_checkable
class AnnIndex(Protocol):
    """Unified ANN index surface (see the module docstring).

    Implementations may accept extra keyword-only arguments on
    ``search`` (``config``, ``mode``, ``on_stage`` ... — see
    :class:`repro.api.adapters.AnnIndexAdapter`), but the positional
    core and the :class:`SearchResult` contract are fixed.
    """

    @property
    def dim(self) -> int:
        """Vector dimensionality the index was built over."""
        ...

    @property
    def metric(self) -> str:
        """Distance metric name (see :data:`repro.core.distances.METRICS`)."""
        ...

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        ...

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        filter_mask: np.ndarray | None = None,
    ) -> SearchResult:
        """Batched k-ANN search returning the unified result shape."""
        ...
