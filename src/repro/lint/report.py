"""Violation record and output formatting for the repro linter.

Two output formats: ``text`` (one ``path:line:col: RULE message`` line per
violation, sorted) for humans and CI logs, and ``json`` for tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["Violation", "format_text", "format_json"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at a specific source location.

    Attributes:
        path: file the violation was found in (as given to the engine).
        line: 1-based source line.
        col: 0-based column of the offending node.
        rule: rule id (``RL001`` ... ``RL302``).
        message: human-readable description of the broken invariant.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def format_text(violations: list[Violation], files_checked: int) -> str:
    """Sorted one-line-per-violation report plus a summary line."""
    lines = [v.render() for v in sorted(violations)]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(
        f"{len(violations)} {noun} in {files_checked} file(s) checked"
        if violations
        else f"clean: 0 violations in {files_checked} file(s) checked"
    )
    return "\n".join(lines)


def format_json(
    violations: list[Violation],
    files_checked: int,
    parse_errors: list[str] | None = None,
) -> str:
    """Machine-readable report: violation dicts plus counts.

    Schema (documented in ``docs/static_analysis.md``)::

        {"violations": [{"path", "line", "col", "rule", "message"}, ...],
         "count": <int>, "files_checked": <int>, "parse_errors": [<str>, ...]}
    """
    payload = {
        "violations": [asdict(v) for v in sorted(violations)],
        "count": len(violations),
        "files_checked": files_checked,
        "parse_errors": list(parse_errors or ()),
    }
    return json.dumps(payload, indent=2)
