"""Thread-sanitizer-lite: opt-in runtime lock-order and write-race tagging.

Static rules (RL101–RL104) see lock *shapes*; this module watches the
program actually run.  While a :class:`ThreadSanitizer` is enabled it

* wraps ``threading.Lock`` so every acquisition records a per-thread
  held-lock set and a global lock-*order* graph.  A cycle in that graph
  (thread A takes ``a`` then ``b``, thread B takes ``b`` then ``a``)
  is a **potential deadlock** even when the interleaving that hangs
  never happened in this run — reported as **RL301** with both
  acquisition sites;
* patches ``__setattr__`` on registered shared classes (by default
  ``ExecutorStats``, the serve ``StatsCollector`` behind ``ServeStats``
  snapshots, ``ResultCache`` and ``CircuitBreaker``) and applies an
  Eraser-style lockset intersection per ``(object, attribute)``: once a
  second thread writes an attribute, the set of locks common to every
  subsequent write must stay non-empty, or the writes are tagged as an
  **unsynchronized concurrent write** — **RL302**.

Reports use the same :class:`~repro.lint.report.Violation` record and
text/JSON formatting as the static rules, honour in-line waiver
comments at the reported site, and surface through two entry points:

* ``REPRO_SANITIZE=1 python -m pytest ...`` — a conftest session
  fixture enables the sanitizer for the whole run and fails the session
  on any report;
* ``repro-cagra lint --sanitize <test paths>`` — runs pytest in-process
  under the sanitizer and exits 1 on any report.

Known limits (by design, to stay dependency-free and fast): only
attribute *rebinding* is tagged (dict/list/Counter content mutation is
not traced), only ``threading.Lock`` (not ``RLock``) is wrapped, and
code that imported ``Lock`` by value before :meth:`enable` keeps the
unwrapped factory.
"""

from __future__ import annotations

import os
import sys
import threading
from _thread import allocate_lock, get_ident

from repro.lint.report import Violation

__all__ = [
    "RULE_DEADLOCK",
    "RULE_RACE",
    "ThreadSanitizer",
    "active_sanitizer",
    "sanitize_enabled",
]

RULE_DEADLOCK = "RL301"
RULE_RACE = "RL302"

#: (module, class) pairs instrumented for write-race tagging by default.
DEFAULT_SHARED_CLASSES = (
    ("repro.parallel.executor", "ExecutorStats"),
    ("repro.serve.stats", "StatsCollector"),
    ("repro.serve.cache", "ResultCache"),
    ("repro.resilience.breaker", "CircuitBreaker"),
    ("repro.stream.memtable", "ExactMemtable"),
    ("repro.stream.mutable", "MutableIndex"),
    ("repro.stream.policy", "CostModel"),
)

_ACTIVE: "ThreadSanitizer | None" = None


def sanitize_enabled() -> bool:
    """True when the ``REPRO_SANITIZE=1`` opt-in is set."""
    return os.environ.get("REPRO_SANITIZE", "") == "1"


def active_sanitizer() -> "ThreadSanitizer | None":
    return _ACTIVE


def _caller_site() -> tuple[str, int]:
    """First stack frame outside this module and ``threading``."""
    frame = sys._getframe(1)
    skip = (__file__, threading.__file__)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename not in skip:
            return filename, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


class _TrackedLock:
    """Drop-in for a ``threading.Lock`` instance that reports to the
    sanitizer on blocking acquisitions and every release."""

    __slots__ = ("_inner", "_san", "name")

    def __init__(self, san: "ThreadSanitizer"):
        self._inner = allocate_lock()
        self._san = san
        self.name = "Lock@%s:%d" % _caller_site()

    def acquire(self, blocking: bool = True, timeout: float = -1):
        if blocking:
            self._san._on_acquire_attempt(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._san._on_acquired(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._san._on_released(self)

    def locked(self) -> bool:
        return self._inner.locked()

    __enter__ = acquire

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<_TrackedLock {self.name} {state}>"


class ThreadSanitizer:
    """Context manager that instruments locks and shared-class writes."""

    def __init__(self):
        self._enabled = False
        self._orig_lock = None
        self._patched_setattrs: list[tuple[type, object]] = []
        self._tls = threading.local()
        self._state_lock = allocate_lock()
        # lock-order graph: edge (a, b) -> (thread name, site a, site b)
        self._edges: dict[tuple[int, int], tuple[str, str, str]] = {}
        self._adjacency: dict[int, set[int]] = {}
        self._lock_names: dict[int, str] = {}
        # write races: (id(obj), attr) -> [owner_tid, lockset|None, last site]
        self._writes: dict[tuple[int, str], list] = {}
        self._reports: list[Violation] = []
        self._reported_keys: set = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> "ThreadSanitizer":
        global _ACTIVE
        if self._enabled:
            return self
        self._enabled = True
        _ACTIVE = self
        self._orig_lock = threading.Lock
        san = self
        threading.Lock = lambda: _TrackedLock(san)  # type: ignore[assignment]
        for module_name, class_name in DEFAULT_SHARED_CLASSES:
            try:
                module = __import__(module_name, fromlist=[class_name])
                self.register_shared_class(getattr(module, class_name))
            except Exception:  # pragma: no cover - optional subsystems
                continue
        return self

    def disable(self) -> None:
        global _ACTIVE
        if not self._enabled:
            return
        self._enabled = False
        if _ACTIVE is self:
            _ACTIVE = None
        threading.Lock = self._orig_lock  # type: ignore[assignment]
        for cls, orig in self._patched_setattrs:
            if orig is None:
                del cls.__setattr__
            else:
                cls.__setattr__ = orig
        self._patched_setattrs.clear()

    def __enter__(self) -> "ThreadSanitizer":
        return self.enable()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disable()

    # ------------------------------------------------------------------
    # shared-class registration (write-race tagging)
    # ------------------------------------------------------------------
    def register_shared_class(self, cls: type) -> None:
        """Instrument ``cls.__setattr__`` so concurrent unsynchronized
        attribute writes on its instances are tagged (RL302)."""
        if any(patched is cls for patched, _ in self._patched_setattrs):
            return
        orig = cls.__dict__.get("__setattr__")
        orig_call = cls.__setattr__
        san = self

        def watched_setattr(obj, name, value):
            orig_call(obj, name, value)
            if not name.startswith("_lock"):
                san._record_write(obj, name)

        cls.__setattr__ = watched_setattr
        self._patched_setattrs.append((cls, orig))

    # ------------------------------------------------------------------
    # lock bookkeeping
    # ------------------------------------------------------------------
    def _held(self) -> list:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _on_acquire_attempt(self, lock: _TrackedLock) -> None:
        held = self._held()
        if not held:
            return
        site = "%s:%d" % _caller_site()
        thread = threading.current_thread().name
        with self._state_lock:
            self._lock_names[id(lock)] = lock.name
            for prior in held:
                edge = (id(prior), id(lock))
                if edge[0] == edge[1] or edge in self._edges:
                    continue
                self._lock_names[id(prior)] = prior.name
                self._edges[edge] = (thread, prior.name, site)
                self._adjacency.setdefault(edge[0], set()).add(edge[1])
                self._check_cycle(edge, site, thread)

    def _check_cycle(self, new_edge: tuple[int, int], site: str, thread: str) -> None:
        # DFS from the newly-acquired lock back to the held one: a path
        # means some other thread already established the reverse order.
        start, target = new_edge[1], new_edge[0]
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            if node == target:
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._adjacency.get(node, ()))
        else:
            return
        reverse = self._edges.get((new_edge[1], new_edge[0]))
        held_name = self._lock_names.get(target, "?")
        taken_name = self._lock_names.get(start, "?")
        if reverse is not None:
            other = (
                f"; thread '{reverse[0]}' previously acquired "
                f"'{reverse[1]}' then the held lock at {reverse[2]}"
            )
        else:
            other = " via a longer lock chain recorded earlier"
        filename, lineno = _caller_site()
        self._report(
            ("deadlock", new_edge),
            Violation(
                path=filename,
                line=lineno,
                col=0,
                rule=RULE_DEADLOCK,
                message=(
                    f"potential deadlock: lock-order cycle — thread "
                    f"'{thread}' holds '{held_name}' while acquiring "
                    f"'{taken_name}' at {site}{other}"
                ),
            ),
        )

    def _on_acquired(self, lock: _TrackedLock) -> None:
        self._held().append(lock)

    def _on_released(self, lock: _TrackedLock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                break

    # ------------------------------------------------------------------
    # write-race tagging
    # ------------------------------------------------------------------
    def _record_write(self, obj, attr: str) -> None:
        tid = get_ident()
        lockset = frozenset(id(lock) for lock in self._held())
        filename, lineno = _caller_site()
        key = (id(obj), attr)
        with self._state_lock:
            state = self._writes.get(key)
            if state is None:
                # exclusive phase: first writer thread, candidate = all locks
                self._writes[key] = [tid, None, (filename, lineno)]
                return
            last_tid, candidate, last_site = state
            if candidate is None:
                if tid == last_tid:
                    state[2] = (filename, lineno)
                    return
                # First write from a second thread: publication (e.g. the
                # creator's __init__ before Thread.start) is happens-before,
                # so seed the candidate lockset without reporting yet.
                state[:] = [tid, lockset, (filename, lineno)]
                return
            candidate = candidate & lockset
            state[1] = candidate
            if candidate or tid == last_tid:
                state[0] = tid
                state[2] = (filename, lineno)
                return
            state[0] = tid
            report_key = ("race", type(obj).__name__, attr)
            self._report(
                report_key,
                Violation(
                    path=filename,
                    line=lineno,
                    col=0,
                    rule=RULE_RACE,
                    message=(
                        f"unsynchronized concurrent write to "
                        f"{type(obj).__name__}.{attr}: thread "
                        f"'{threading.current_thread().name}' wrote at "
                        f"{filename}:{lineno} with no lock in common with "
                        f"the previous writer at {last_site[0]}:{last_site[1]}"
                    ),
                ),
            )

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def _report(self, key, violation: Violation) -> None:
        if key in self._reported_keys:
            return
        self._reported_keys.add(key)
        self._reports.append(violation)

    def violations(self) -> list[Violation]:
        """All reports so far, minus any waived at the reported site with
        the standard ``# repro-lint: disable=RL30x`` comment syntax."""
        from repro.lint.engine import parse_waivers

        out: list[Violation] = []
        waiver_cache: dict[str, tuple[dict, set]] = {}
        with self._state_lock:
            reports = list(self._reports)
        for violation in reports:
            waivers = waiver_cache.get(violation.path)
            if waivers is None:
                try:
                    with open(violation.path, encoding="utf-8") as handle:
                        waivers = parse_waivers(handle.read())
                except OSError:
                    waivers = ({}, set())
                waiver_cache[violation.path] = waivers
            line_waivers, file_waivers = waivers
            if violation.rule in file_waivers:
                continue
            if any(
                violation.rule in line_waivers.get(line, set())
                for line in (violation.line, violation.line - 1)
            ):
                continue
            out.append(violation)
        return out
