"""Rule registry for the repro invariant linter.

Each rule module exposes ``RULE_ID``, ``TITLE`` and
``check(ctx: FileContext) -> list[Violation]``; this package collects them
into the ``RULES`` mapping the engine iterates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lint.report import Violation
from repro.lint.rules import accounting, api, determinism, dtypes, flags

__all__ = ["RULES", "RuleChecker"]


@dataclass(frozen=True)
class RuleChecker:
    """One registered rule: id, short title, and its check function."""

    rule_id: str
    title: str
    check: Callable[..., list[Violation]]


def _register(module) -> RuleChecker:
    return RuleChecker(
        rule_id=module.RULE_ID, title=module.TITLE, check=module.check
    )


#: Rule id → checker, in rule-id order.
RULES: dict[str, RuleChecker] = {
    module.RULE_ID: _register(module)
    for module in (flags, dtypes, determinism, accounting, api)
}
