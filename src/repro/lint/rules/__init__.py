"""Rule registry for the repro invariant linter.

A rule module exposes either the single-rule interface (``RULE_ID``,
``TITLE``, ``check(ctx: FileContext) -> list[Violation]``) or the
multi-rule interface (``CHECKERS``, a sequence of ``(rule_id, title,
check)`` tuples).  Cross-file rules — whose check functions receive the
full list of parsed :class:`~repro.lint.engine.FileContext` objects —
are declared via ``PROJECT_CHECKERS`` and collected into
``PROJECT_RULES``, which the engine runs once per lint invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lint.report import Violation
from repro.lint.rules import (
    accounting,
    api,
    concurrency,
    contracts,
    determinism,
    dtypes,
    flags,
    streaming,
    traversal,
)

__all__ = ["PROJECT_RULES", "RULES", "RuleChecker"]

_MODULES = (
    flags, dtypes, determinism, accounting, api, streaming, traversal,
    concurrency, contracts,
)


@dataclass(frozen=True)
class RuleChecker:
    """One registered rule: id, short title, and its check function."""

    rule_id: str
    title: str
    check: Callable[..., list[Violation]]


def _file_checkers(module) -> list[RuleChecker]:
    if hasattr(module, "CHECKERS"):
        return [RuleChecker(*entry) for entry in module.CHECKERS]
    return [RuleChecker(module.RULE_ID, module.TITLE, module.check)]


def _project_checkers(module) -> list[RuleChecker]:
    return [RuleChecker(*entry) for entry in getattr(module, "PROJECT_CHECKERS", ())]


#: Rule id → per-file checker, in rule-id order.
RULES: dict[str, RuleChecker] = {
    checker.rule_id: checker
    for module in _MODULES
    for checker in _file_checkers(module)
}
RULES = dict(sorted(RULES.items()))

#: Rule id → cross-file checker (check receives ``list[FileContext]``).
PROJECT_RULES: dict[str, RuleChecker] = {
    checker.rule_id: checker
    for module in _MODULES
    for checker in _project_checkers(module)
}
PROJECT_RULES = dict(sorted(PROJECT_RULES.items()))
