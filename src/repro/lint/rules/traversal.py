"""RL007 — hot-path traversal functions must stay array-parallel.

The traversal engine's contract (``docs/traversal.md``) is that every
function on the search hot path — marked with the ``@hot_path``
decorator in :mod:`repro.core.traversal` — advances *all* live queries
with whole-array numpy operations.  A Python ``for``/``while`` loop
whose iteration space scales with the number of queries re-introduces
the per-query interpreter overhead the engine exists to eliminate, and
does so silently: results stay correct, throughput quietly collapses at
batch size.

The rule fires on any ``for`` loop inside an ``@hot_path``-decorated
function whose iterable mentions a query-count-ish symbol —
``queries``, ``batch``, ``rows``, ``live``, ``row_ids`` and friends.
Loops over *fixed-size* structures (hash probe steps, neighbor lanes,
top-M slots) do not scale with the batch and are allowed, as are
``while`` convergence loops (they step *iterations*, whose trip count
is bounded by ``max_iterations``, not by the batch).  A genuine
exception takes the standard waiver::

    for i in range(batch):  # repro-lint: disable=RL007 — reason
"""

from __future__ import annotations

import ast
import re

from repro.lint.engine import FileContext, dotted_name
from repro.lint.report import Violation

__all__ = ["RULE_ID", "TITLE", "check"]

RULE_ID = "RL007"
TITLE = "per-query Python loop inside an @hot_path traversal function"

#: Names whose appearance in a loop's iteration source marks the loop as
#: scaling with the query batch.  Lane/slot/probe counters (``width``,
#: ``itopk``, ``size``) are deliberately absent: those are O(1) in batch.
_PER_QUERY_RE = re.compile(
    r"(^|_)(quer(y|ies)|batch(es)?|rows?|n_rows|num_rows|row_ids|live|lanes_per_row)($|_)",
    re.IGNORECASE,
)

_HOT_DECORATOR = "hot_path"


def _is_hot(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted and dotted.split(".")[-1] == _HOT_DECORATOR:
            return True
    return False


def _per_query_symbol(expr: ast.expr) -> str | None:
    """First query-scaling name mentioned anywhere in ``expr``, if any."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and _PER_QUERY_RE.search(sub.id):
            return sub.id
        if isinstance(sub, ast.Attribute) and _PER_QUERY_RE.search(sub.attr):
            return sub.attr
    return None


def _loops(body: list[ast.stmt]):
    """Yield every ``for`` loop in ``body``, excluding nested function
    scopes (a nested function is its own hot/cold decision)."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt
        for name in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, name, None)
            if isinstance(inner, list):
                stack.extend(s for s in inner if isinstance(s, ast.stmt))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)


def check(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_hot(node):
            continue
        for loop in _loops(node.body):
            symbol = _per_query_symbol(loop.iter)
            if symbol is None:
                continue
            violations.append(
                Violation(
                    path=ctx.path,
                    line=loop.lineno,
                    col=loop.col_offset,
                    rule=RULE_ID,
                    message=(
                        f"@hot_path function '{node.name}' contains a for "
                        f"loop over query-scaling symbol '{symbol}'; the hot "
                        f"path must advance all live queries with array "
                        f"operations (vectorize, or waive with a reason)"
                    ),
                )
            )
    return violations
