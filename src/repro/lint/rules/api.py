"""RL005 — float distance equality and public-API (``__all__``) drift.

Two hygiene contracts share this rule id:

* **Float equality on distances.**  Distance arrays are floats; ``==`` /
  ``!=`` against float literals (or other distance arrays) is
  representation-dependent and breaks silently under FP16 storage or a
  different reduction order.  Compare with tolerances (``np.isclose``) or
  use ``np.isinf`` / ``np.isfinite`` for sentinel checks.
* **``__all__`` drift.**  Every module in the library declares ``__all__``;
  a listed name that is not defined breaks ``import *`` and documentation
  tooling, and a public top-level function/class missing from ``__all__``
  silently forks the de-facto API from the declared one.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext
from repro.lint.report import Violation

__all__ = ["RULE_ID", "TITLE", "check"]

RULE_ID = "RL005"
TITLE = "float distance equality or __all__ / public API drift"

_DIST_FRAGMENT = "dist"


def _violation(ctx: FileContext, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        rule=RULE_ID,
        message=message,
    )


def _dist_name(node: ast.expr) -> str | None:
    """The identifier if ``node`` names something distance-like."""
    if isinstance(node, ast.Name) and _DIST_FRAGMENT in node.id.lower():
        return node.id
    if isinstance(node, ast.Attribute) and _DIST_FRAGMENT in node.attr.lower():
        return node.attr
    return None


def _is_float_like(node: ast.expr) -> bool:
    """Float literal or an ``inf`` constant reference."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_float_like(node.operand)
    if isinstance(node, ast.Attribute) and node.attr in ("inf", "nan"):
        return True
    return False


def _check_float_equality(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        sides = [node.left, *node.comparators]
        named = [s for s in sides if _dist_name(s) is not None]
        if not named:
            continue
        # Hazardous when the counterpart is a float literal / inf, or when
        # two distance arrays are compared exactly.
        hazard = len(named) >= 2 or any(_is_float_like(s) for s in sides)
        if hazard:
            violations.append(
                _violation(
                    ctx,
                    node,
                    f"exact float comparison on distance value "
                    f"'{_dist_name(named[0])}'; use np.isclose / np.isinf "
                    f"instead of == or !=",
                )
            )
    return violations


def _check_all_drift(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    tree = ctx.tree
    declared: list[str] | None = None
    declared_node: ast.AST | None = None
    defined: set[str] = set()
    public_defs: list[tuple[str, ast.AST]] = []

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
            if not node.name.startswith("_"):
                public_defs.append((node.name, node))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__":
                    declared_node = node
                    try:
                        value = ast.literal_eval(node.value)
                        declared = [str(v) for v in value]
                    except (ValueError, TypeError):
                        declared = None
                else:
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                defined.add((alias.asname or alias.name).split(".")[0])

    if declared is None:
        return violations
    for name in declared:
        if name not in defined and name != "*":
            violations.append(
                _violation(
                    ctx,
                    declared_node,
                    f"__all__ lists '{name}' but the module never defines it",
                )
            )
    for name, node in public_defs:
        if name not in declared:
            violations.append(
                _violation(
                    ctx,
                    node,
                    f"public {type(node).__name__.replace('Def', '').lower()} "
                    f"'{name}' is missing from __all__ (add it or prefix "
                    f"with '_')",
                )
            )
    return violations


def check(ctx: FileContext) -> list[Violation]:
    return [*_check_float_equality(ctx), *_check_all_drift(ctx)]
