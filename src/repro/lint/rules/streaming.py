"""RL006 — tombstone/mask state must only change under the class lock.

The streaming layer's correctness contract (``docs/streaming.md``) hangs
on one invariant: *visibility arrays* — tombstone bitmaps, filter/live
masks, liveness flags — are read by concurrent searches, so every write
must happen inside the owning class's lock.  A single unlocked
``self._tombstones[ids] = True`` can resurrect a deleted row for a
racing reader, which is exactly the "no deleted id is ever served"
guarantee the integration tests pin down.

The rule reuses RL101's lock-discipline machinery but is *stricter* for
this one attribute family: RL101 only guards attributes it has seen
written under a lock somewhere (the convention is learned), while RL006
treats any ``self`` attribute whose name says "tombstone" / "mask" /
"live" as guarded **by declaration** in every class that owns a
``threading.Lock``.  A class that forgot to lock such writes entirely —
invisible to RL101 — is still flagged.

Flags, outside a ``with self.<lock>`` block:

* rebinding writes: ``self._tombstones = ...``, ``self._live_mask = ...``
* element stores:   ``self._tombstones[ids] = True``
* augmented stores: ``self._live_mask &= other``
* container/array mutators: ``self._tombstones.fill(...)``,
  ``.append`` / ``.update`` / ... (the RL101 mutator set plus the
  in-place numpy verbs ``fill``, ``put``, ``sort``, ``partition``)

``__init__``-family methods are exempt (construction happens before the
object is shared), as are methods named ``*_locked`` (RL101's
caller-holds-the-lock convention) — only ``self`` attributes touched on
a path that may run lock-free carry the invariant.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext
from repro.lint.report import Violation
from repro.lint.rules.concurrency import (
    _CONTAINER_MUTATORS,
    _INIT_METHODS,
    _caller_holds_lock,
    _class_lock_attrs,
    _is_self_attr,
    _iter_block,
    _own_exprs,
    _self_attr_writes,
    _violation,
)

__all__ = ["RULE_ID", "TITLE", "check"]

RULE_ID = "RL006"
TITLE = "tombstone/mask array written outside the owning class's lock"

#: Substrings that mark a self attribute as concurrent-visibility state.
_GUARDED_NAME_PARTS = ("tombstone", "mask", "live")

#: In-place numpy verbs that mutate the receiver array.
_ARRAY_MUTATORS = _CONTAINER_MUTATORS | {"fill", "put", "sort", "partition"}


def _is_guarded_name(attr: str) -> bool:
    lowered = attr.lower()
    return any(part in lowered for part in _GUARDED_NAME_PARTS)


def check(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = _class_lock_attrs(cls)
        if not lock_attrs:
            continue

        def enter(with_stmt, held):
            return {
                item.context_expr.attr
                for item in with_stmt.items
                if isinstance(item.context_expr, ast.Attribute)
                and _is_self_attr(item.context_expr)
                and item.context_expr.attr in lock_attrs
            }

        def visit_stmt(stmt, held):
            if held:
                return
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                for node, attr in _self_attr_writes(target):
                    if _is_guarded_name(attr):
                        violations.append(_violation(
                            ctx, node, RULE_ID,
                            f"visibility state '{attr}' of class "
                            f"'{cls.name}' written without holding its "
                            "lock (concurrent searches read it)",
                        ))
            for root in _own_exprs(stmt):
                for node in ast.walk(root):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _ARRAY_MUTATORS
                        and _is_self_attr(node.func.value)
                        and _is_guarded_name(node.func.value.attr)
                    ):
                        violations.append(_violation(
                            ctx, node, RULE_ID,
                            f"visibility state '{node.func.value.attr}' of "
                            f"class '{cls.name}' mutated in place without "
                            "holding its lock (concurrent searches read it)",
                        ))

        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _INIT_METHODS:
                continue
            if _caller_holds_lock(method):
                continue
            _iter_block(method.body, frozenset(), enter, None, visit_stmt)
    return violations
