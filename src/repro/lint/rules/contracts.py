"""RL201–RL203 — AnnIndex contract rules.

PR 5 unified every index family behind the ``AnnIndex`` protocol; these
rules keep implementations from drifting off that contract:

* **RL201 — search results must flow through the contract.**  Every
  ``search`` implementation on an adapter class (a class with a class
  -level ``kind`` attribute, or named/based on ``AnnIndex``/``Adapter``)
  under ``api/`` or ``baselines/`` must return ``SearchResult`` objects
  and route ids/distances through :func:`repro.api.normalize_results`
  (which enforces int32 ids, float32 distances, and trailing-only
  sentinel padding).  Native baseline classes keep their paper-figure
  tuple signatures and are exempt.
* **RL202 — no non-int32 ids or float ``==`` on the result path.**
  Inside a qualifying ``search``: feeding ``SearchResult(indices=...)``
  an array built with a non-int32 integer dtype that never passed
  through ``normalize_results``, or comparing against float literals
  with ``==`` / ``!=``, silently corrupts ids on 2^31+ datasets or
  breaks sentinel handling.
* **RL203 — registry drift (cross-file).**  ``INDEX_KINDS`` (factory),
  ``_BUILDERS`` (factory), ``INDEX_FORMATS`` (persistence), and the
  adapter ``kind`` attributes (dispatch) must stay in sync: a kind
  listed in one registry but missing from another ships an index that
  cannot be built, saved, loaded, or served.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, dotted_name
from repro.lint.report import Violation

__all__ = ["CHECKERS", "PROJECT_CHECKERS"]

_NON_INT32_DTYPES = {
    "int64", "uint64", "int16", "uint16", "int8", "uint8", "uint32",
}


def _violation(ctx: FileContext, node: ast.AST, rule: str, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
    )


# ----------------------------------------------------------------------
# qualifying search implementations
# ----------------------------------------------------------------------
def _is_adapter_class(cls: ast.ClassDef) -> bool:
    if "AnnIndex" in cls.name:
        return True
    for base in cls.bases:
        base_name = dotted_name(base).split(".")[-1]
        if "AnnIndex" in base_name or "Adapter" in base_name:
            return True
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "kind":
                    return True
    return False


def _iter_search_methods(ctx: FileContext):
    if not ctx.is_under("api", "baselines"):
        return
    for cls in ast.walk(ctx.tree):
        if not (isinstance(cls, ast.ClassDef) and _is_adapter_class(cls)):
            continue
        for method in cls.body:
            if (
                isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                and method.name == "search"
            ):
                yield cls, method


def _walk_own(fn: ast.AST):
    """Pre-order, source-ordered walk that skips nested functions —
    RL202's taint tracking relies on seeing assignments in order."""

    def rec(node: ast.AST):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield child
            yield from rec(child)

    yield from rec(fn)


def _calls_symbol(fn: ast.AST, symbol: str) -> bool:
    for node in _walk_own(fn):
        if (
            isinstance(node, ast.Call)
            and dotted_name(node.func).split(".")[-1] == symbol
        ):
            return True
    return False


# ----------------------------------------------------------------------
# RL201
# ----------------------------------------------------------------------
def _check_rl201(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    for cls, method in _iter_search_methods(ctx):
        returns = [
            node
            for node in _walk_own(method)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        if not returns:
            continue  # abstract / raise-only base implementations
        constructs_result = False
        for node in returns:
            callee = (
                dotted_name(node.value.func).split(".")[-1]
                if isinstance(node.value, ast.Call)
                else ""
            )
            if callee == "SearchResult":
                constructs_result = True
            elif not (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr.startswith("search")
            ):  # delegation to another search implementation is fine
                violations.append(_violation(
                    ctx, node, "RL201",
                    f"'{cls.name}.search' must return SearchResult objects "
                    "(AnnIndex contract), not raw tuples/arrays",
                ))
        if constructs_result and not _calls_symbol(method, "normalize_results"):
            violations.append(_violation(
                ctx, method, "RL201",
                f"'{cls.name}.search' constructs SearchResult without "
                "routing ids/distances through normalize_results()",
            ))
    return violations


# ----------------------------------------------------------------------
# RL202
# ----------------------------------------------------------------------
def _mentions_bad_dtype(expr: ast.expr) -> str | None:
    """A non-int32 integer dtype explicitly applied inside ``expr``."""
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            dtype = dotted_name(node.args[0]).split(".")[-1]
            if dtype in _NON_INT32_DTYPES:
                return dtype
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype = dotted_name(kw.value).split(".")[-1]
                if dtype in _NON_INT32_DTYPES:
                    return dtype
    return None


def _names_in(expr: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _check_rl202(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    for cls, method in _iter_search_methods(ctx):
        sanctioned: set[str] = set()
        tainted: dict[str, str] = {}  # name -> offending dtype
        for node in _walk_own(method):
            if isinstance(node, ast.Assign):
                from_normalize = (
                    isinstance(node.value, ast.Call)
                    and dotted_name(node.value.func).split(".")[-1]
                    == "normalize_results"
                )
                bad = _mentions_bad_dtype(node.value)
                for target in node.targets:
                    for name in _names_in(target):
                        if from_normalize:
                            sanctioned.add(name)
                            tainted.pop(name, None)
                        elif bad is not None:
                            tainted[name] = bad
                        else:
                            tainted.pop(name, None)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(
                    isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                ) and any(
                    isinstance(o, ast.Constant) and isinstance(o.value, float)
                    for o in operands
                ):
                    violations.append(_violation(
                        ctx, node, "RL202",
                        f"float equality comparison on the result path of "
                        f"'{cls.name}.search'; use np.isclose/np.isinf",
                    ))
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func).split(".")[-1]
                if callee != "SearchResult":
                    continue
                indices_arg = None
                for kw in node.keywords:
                    if kw.arg == "indices":
                        indices_arg = kw.value
                if indices_arg is None and node.args:
                    indices_arg = node.args[0]
                if indices_arg is None:
                    continue
                names = _names_in(indices_arg)
                bad_names = sorted(names & set(tainted))
                inline_bad = _mentions_bad_dtype(indices_arg)
                if bad_names and not (names & sanctioned):
                    violations.append(_violation(
                        ctx, indices_arg, "RL202",
                        f"'{cls.name}.search' feeds SearchResult ids built "
                        f"as {tainted[bad_names[0]]} ('{bad_names[0]}') "
                        "without normalize_results (ids must be int32)",
                    ))
                elif inline_bad is not None:
                    violations.append(_violation(
                        ctx, indices_arg, "RL202",
                        f"'{cls.name}.search' feeds SearchResult ids built "
                        f"as {inline_bad} (ids must be int32)",
                    ))
    return violations


# ----------------------------------------------------------------------
# RL203 — registry drift (cross-file)
# ----------------------------------------------------------------------
def _string_elts(node: ast.expr) -> list[str] | None:
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            out.append(elt.value)
        return out
    return None


def _format_names(node: ast.expr) -> list[str] | None:
    """Names from an ``INDEX_FORMATS``-style list of IndexFormat(...) calls."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names: list[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Call) and elt.args):
            continue
        first = elt.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            names.append(first.value)
    return names


def _check_rl203(contexts) -> list[Violation]:
    kinds: list[str] | None = None
    kinds_site: tuple[FileContext, ast.AST] | None = None
    builders: list[str] | None = None
    builders_site: tuple[FileContext, ast.AST] | None = None
    formats: list[str] | None = None
    formats_site: tuple[FileContext, ast.AST] | None = None
    adapter_kinds: set[str] = set()

    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "INDEX_KINDS":
                    elts = _string_elts(node.value)
                    if elts is not None:
                        kinds, kinds_site = elts, (ctx, node)
                elif target.id == "_BUILDERS" and isinstance(node.value, ast.Dict):
                    keys = [
                        k.value
                        for k in node.value.keys
                        if isinstance(k, ast.Constant) and isinstance(k.value, str)
                    ]
                    builders, builders_site = keys, (ctx, node)
                elif target.id == "INDEX_FORMATS":
                    names = _format_names(node.value)
                    if names is not None:
                        formats, formats_site = names, (ctx, node)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if node.target.id == "INDEX_FORMATS" and node.value is not None:
                    names = _format_names(node.value)
                    if names is not None:
                        formats, formats_site = names, (ctx, node)
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Name)
                                and target.id == "kind"
                                and isinstance(stmt.value, ast.Constant)
                                and isinstance(stmt.value.value, str)
                            ):
                                adapter_kinds.add(stmt.value.value)

    if kinds is None or kinds_site is None:
        return []

    violations: list[Violation] = []

    def drift(site, message):
        ctx, node = site
        violations.append(_violation(ctx, node, "RL203", message))

    if builders is not None:
        for kind in kinds:
            if kind not in builders:
                drift(builders_site,
                      f"registry drift: kind '{kind}' is in INDEX_KINDS but "
                      "has no _BUILDERS entry (build_index will KeyError)")
        for kind in builders:
            if kind not in kinds:
                drift(kinds_site,
                      f"registry drift: _BUILDERS has '{kind}' but it is "
                      "missing from INDEX_KINDS (unreachable via the CLI)")
    if formats is not None:
        for kind in kinds:
            if kind not in formats:
                drift(formats_site,
                      f"registry drift: kind '{kind}' has no INDEX_FORMATS "
                      "entry (save/load round-trip is impossible)")
    if adapter_kinds:
        for kind in kinds:
            if kind not in adapter_kinds:
                drift(kinds_site,
                      f"registry drift: kind '{kind}' has no adapter class "
                      "declaring kind = '%s' (as_ann_index cannot "
                      "dispatch it)" % kind)
    return violations


CHECKERS = (
    ("RL201", "search results bypass SearchResult/normalize_results", _check_rl201),
    ("RL202", "non-int32 ids or float == on the result path", _check_rl202),
)

PROJECT_CHECKERS = (
    ("RL203", "INDEX_KINDS / persistence / adapter registry drift", _check_rl203),
)
