"""RL101–RL104 — lock-discipline rules for the concurrent layers.

The serve scheduler, the parallel worker pools, and the resilience
breakers all share mutable state across threads; these rules learn each
class's locking convention from the code itself and flag departures:

* **RL101 — unguarded access to a lock-guarded attribute.**  A class
  that assigns a ``threading.Lock`` / ``RLock`` to an attribute in
  ``__init__`` declares a locking discipline.  Any attribute that is
  *written* under ``with self._lock`` somewhere is treated as
  lock-guarded; writes **or reads** of that attribute from other methods
  without the lock held are flagged (torn reads of swap-guarded state
  are as real a race as torn writes).  Methods whose name ends in
  ``_locked`` declare "caller holds the lock" and are analyzed as if
  every class lock were held (the streaming layer's helper convention).
* **RL102 — unlocked mutation of shared state in a thread target.**
  Functions handed to ``threading.Thread(target=...)``, submitted to a
  pool/executor, or registered via ``add_done_callback`` run on another
  thread; mutating a closure/global/argument container (``.append``,
  ``x[k] = v``, ``obj.attr = v``, ``setattr``) there without holding a
  lock is a data race.  ``self`` is exempt — method receivers are
  RL101's job.
* **RL103 — fork-unsafety in process-pool task bodies.**  A function
  submitted to a process pool runs in a forked child: ``os._exit``,
  acquiring locks, and touching module-level ``numpy.random.Generator``
  state there either kills the worker or silently shares RNG streams.
  The ``resilience`` package is exempt — its fault points *deliberately*
  crash workers to exercise recovery paths.
* **RL104 — blocking call while holding a lock (deadlock shape).**
  Inside any ``with <lock>`` body: acquiring another (or the same) lock,
  ``Future.result()`` without a timeout, ``queue.get()`` without a
  timeout, or joining a thread can deadlock against a peer that needs
  the held lock.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, dotted_name
from repro.lint.report import Violation

__all__ = ["CHECKERS"]

_LOCK_FACTORIES = {"Lock", "RLock", "threading.Lock", "threading.RLock"}
_CONTAINER_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "move_to_end",
}
_INIT_METHODS = {"__init__", "__new__", "__post_init__", "__del__"}
_POOLISH = ("pool", "executor")


def _violation(
    ctx: FileContext, node: ast.AST, rule: str, message: str
) -> Violation:
    return Violation(
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
    )


def _is_self_attr(node: ast.expr, attr: str | None = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _lockish(node: ast.expr) -> bool:
    """Heuristic: does this with-item / receiver look like a lock?"""
    dotted = dotted_name(node)
    if not dotted:
        return False
    last = dotted.split(".")[-1].lower()
    return "lock" in last or "mutex" in last


def _own_exprs(stmt: ast.stmt):
    """The statement's own expression children (nested blocks excluded)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, (ast.stmt, ast.excepthandler)):
            continue
        yield child


def _iter_block(stmts, held, enter, leave, visit_stmt):
    """Drive a statement walk tracking the set of locks held.

    ``enter(with_stmt, held)`` returns the locks acquired by a ``with``;
    the body is walked with them added.  Nested function/class scopes are
    not descended into.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = enter(stmt, held)
            _iter_block(stmt.body, held | acquired, enter, leave, visit_stmt)
            if leave is not None:
                leave(stmt, held)
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        visit_stmt(stmt, held)
        for name in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, name, None)
            if isinstance(inner, list):
                _iter_block(
                    [s for s in inner if isinstance(s, ast.stmt)],
                    held, enter, leave, visit_stmt,
                )
        for handler in getattr(stmt, "handlers", []):
            _iter_block(handler.body, held, enter, leave, visit_stmt)


# ----------------------------------------------------------------------
# RL101 — lock-guarded attribute accessed without the lock
# ----------------------------------------------------------------------
def _caller_holds_lock(method: ast.AST) -> bool:
    """``*_locked`` methods declare that the caller holds the class lock."""
    return getattr(method, "name", "").endswith("_locked")


def _class_lock_attrs(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for method in cls.body:
        if (
            isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
            and method.name == "__init__"
        ):
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and dotted_name(node.value.func) in _LOCK_FACTORIES
                ):
                    for target in node.targets:
                        if _is_self_attr(target):
                            locks.add(target.attr)
    return locks


def _self_attr_writes(target: ast.expr):
    """Yield ``(node, attr)`` for self-attribute stores inside a target."""
    if _is_self_attr(target):
        yield target, target.attr
    elif isinstance(target, ast.Subscript) and _is_self_attr(target.value):
        yield target.value, target.value.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _self_attr_writes(elt)
    elif isinstance(target, ast.Starred):
        yield from _self_attr_writes(target.value)


def _check_rl101(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = _class_lock_attrs(cls)
        if not lock_attrs:
            continue
        # (attr, kind, held?, node) events across every non-init method
        events: list[tuple[str, str, bool, ast.AST]] = []

        def enter(with_stmt, held):
            return {
                item.context_expr.attr
                for item in with_stmt.items
                if isinstance(item.context_expr, ast.Attribute)
                and _is_self_attr(item.context_expr)
                and item.context_expr.attr in lock_attrs
            }

        def visit_stmt(stmt, held):
            is_held = bool(held)
            written: set[int] = set()
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                for node, attr in _self_attr_writes(target):
                    if attr not in lock_attrs:
                        events.append((attr, "write", is_held, node))
                    written.add(id(node))
            for root in _own_exprs(stmt):
                for node in ast.walk(root):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _CONTAINER_MUTATORS
                        and _is_self_attr(node.func.value)
                    ):
                        attr = node.func.value.attr
                        if attr not in lock_attrs:
                            events.append((attr, "mutate", is_held, node))
                        written.add(id(node.func.value))
                for node in ast.walk(root):
                    if (
                        _is_self_attr(node)
                        and isinstance(node.ctx, ast.Load)
                        and id(node) not in written
                        and node.attr not in lock_attrs
                    ):
                        events.append((node.attr, "read", is_held, node))

        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _INIT_METHODS:
                continue
            held0 = frozenset(lock_attrs) if _caller_holds_lock(method) else frozenset()
            _iter_block(method.body, held0, enter, None, visit_stmt)

        # Only *binding* writes (self.X = ...) establish the guarded set;
        # locked container mutation (self.X.clear()) does not, so read-mostly
        # attributes whose contents are cleaned up under a lock stay free.
        guarded = {attr for attr, kind, held, _ in events if kind == "write" and held}
        for attr, kind, held, node in events:
            if attr in guarded and not held:
                action = "read" if kind == "read" else "written"
                violations.append(_violation(
                    ctx, node, "RL101",
                    f"attribute '{attr}' of class '{cls.name}' is guarded by a "
                    f"lock elsewhere but {action} here without holding it",
                ))
    return violations


# ----------------------------------------------------------------------
# RL102 — unlocked shared-container mutation in thread targets
# ----------------------------------------------------------------------
def _callable_defs(tree: ast.Module) -> dict[str, ast.AST]:
    defs: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)
    return defs


def _thread_entry_names(tree: ast.Module) -> set[str]:
    """Names of functions handed to threads / executors / callbacks."""
    entries: set[str] = set()

    def callee_name(arg: ast.expr) -> str | None:
        if isinstance(arg, ast.Name):
            return arg.id
        if isinstance(arg, ast.Attribute):
            return arg.attr
        return None

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func_dotted = dotted_name(node.func)
        if func_dotted.split(".")[-1] == "Thread":
            for kw in node.keywords:
                if kw.arg == "target" and (name := callee_name(kw.value)):
                    entries.add(name)
        elif isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value).lower()
            if node.func.attr == "submit" and any(p in receiver for p in _POOLISH):
                if node.args and (name := callee_name(node.args[0])):
                    entries.add(name)
            elif node.func.attr == "add_done_callback" and node.args:
                if name := callee_name(node.args[0]):
                    entries.add(name)
    return entries


def _bound_names(fn: ast.AST) -> set[str]:
    """Names assigned (hence local) anywhere inside ``fn``."""
    bound: set[str] = set()

    def bind_target(target: ast.expr) -> None:
        # Only plain names bind; ``x[k] = v`` / ``x.a = v`` *use* ``x``.
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
            bind_target(node.target)
        elif isinstance(node, ast.For):
            bind_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind_target(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            bind_target(node.target)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound


def _check_rl102(ctx: FileContext) -> list[Violation]:
    defs = _callable_defs(ctx.tree)
    violations: list[Violation] = []
    for entry in sorted(_thread_entry_names(ctx.tree)):
        fn = defs.get(entry)
        if fn is None:
            continue
        local = _bound_names(fn) | {"self", "cls"}

        def shared_base(node: ast.expr) -> str | None:
            if isinstance(node, ast.Name) and node.id not in local:
                return node.id
            return None

        def enter(with_stmt, held):
            return {
                dotted_name(item.context_expr)
                for item in with_stmt.items
                if _lockish(item.context_expr)
            }

        def visit_stmt(stmt, held):
            if held:
                return
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                base = None
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = shared_base(target.value)
                if base:
                    violations.append(_violation(
                        ctx, target, "RL102",
                        f"thread target '{entry}' mutates shared object "
                        f"'{base}' without holding a lock",
                    ))
            for root in _own_exprs(stmt):
                for node in ast.walk(root):
                    if not isinstance(node, ast.Call):
                        continue
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in _CONTAINER_MUTATORS
                        and (base := shared_base(node.func.value))
                    ):
                        violations.append(_violation(
                            ctx, node, "RL102",
                            f"thread target '{entry}' mutates shared "
                            f"container '{base}' without holding a lock",
                        ))
                    elif (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "setattr"
                        and node.args
                        and (base := shared_base(node.args[0]))
                    ):
                        violations.append(_violation(
                            ctx, node, "RL102",
                            f"thread target '{entry}' setattr()s shared "
                            f"object '{base}' without holding a lock",
                        ))

        _iter_block(fn.body, frozenset(), enter, None, visit_stmt)
    return violations


# ----------------------------------------------------------------------
# RL103 — fork-unsafety in process-pool task bodies
# ----------------------------------------------------------------------
def _pool_task_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "map", "map_outcomes")
            and any(p in dotted_name(node.func.value).lower() for p in _POOLISH)
            and node.args
        ):
            first = node.args[0]
            if isinstance(first, ast.Name):
                names.add(first.id)
            elif isinstance(first, ast.Attribute):
                names.add(first.attr)
    return names


def _module_rng_names(tree: ast.Module) -> set[str]:
    rngs: set[str] = set()
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)
            and dotted_name(stmt.value.func).split(".")[-1] == "default_rng"
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    rngs.add(target.id)
    return rngs


def _check_rl103(ctx: FileContext) -> list[Violation]:
    # The resilience package's fault points crash and lock on purpose —
    # that is the sanctioned chaos machinery RL103 protects everyone from.
    if ctx.is_under("resilience"):
        return []
    defs = _callable_defs(ctx.tree)
    rngs = _module_rng_names(ctx.tree)
    violations: list[Violation] = []
    for task in sorted(_pool_task_names(ctx.tree)):
        fn = defs.get(task)
        if fn is None:
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted == "os._exit":
                    violations.append(_violation(
                        ctx, node, "RL103",
                        f"os._exit() inside pool task '{task}' kills the "
                        "worker without cleanup (fork-unsafe)",
                    ))
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and _lockish(node.func.value)
                ):
                    violations.append(_violation(
                        ctx, node, "RL103",
                        f"lock acquired inside pool task '{task}': locks "
                        "are not inherited coherently across fork",
                    ))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _lockish(item.context_expr):
                        violations.append(_violation(
                            ctx, item.context_expr, "RL103",
                            f"lock acquired inside pool task '{task}': locks "
                            "are not inherited coherently across fork",
                        ))
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in rngs
            ):
                violations.append(_violation(
                    ctx, node, "RL103",
                    f"module-level Generator '{node.id}' used inside pool "
                    f"task '{task}': forked workers share the RNG stream",
                ))
    return violations


# ----------------------------------------------------------------------
# RL104 — blocking calls while holding a lock
# ----------------------------------------------------------------------
def _has_timeout(call: ast.Call) -> bool:
    if any(kw.arg == "timeout" for kw in call.keywords):
        return True
    return len(call.args) >= 2  # queue.get(block, timeout) positional form


def _check_rl104(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []

    def enter(with_stmt, held):
        acquired: set[str] = set()
        for item in with_stmt.items:
            if not _lockish(item.context_expr):
                continue
            name = dotted_name(item.context_expr)
            if held:
                holding = ", ".join(sorted(held))
                violations.append(_violation(
                    ctx, item.context_expr, "RL104",
                    f"acquires '{name}' while already holding "
                    f"'{holding}' (nested locks: deadlock shape)",
                ))
            acquired.add(name)
        return acquired

    def visit_stmt(stmt, held):
        if not held:
            return
        for root in _own_exprs(stmt):
            for node in ast.walk(root):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                receiver = dotted_name(node.func.value).lower()
                attr = node.func.attr
                holding = ", ".join(sorted(held))
                if attr == "result" and not _has_timeout(node):
                    violations.append(_violation(
                        ctx, node, "RL104",
                        f"Future.result() with no timeout while holding "
                        f"'{holding}' can block forever under the lock",
                    ))
                elif attr == "get" and "queue" in receiver and not _has_timeout(node):
                    violations.append(_violation(
                        ctx, node, "RL104",
                        f"queue.get() with no timeout while holding "
                        f"'{holding}' can block forever under the lock",
                    ))
                elif attr == "join" and "thread" in receiver:
                    violations.append(_violation(
                        ctx, node, "RL104",
                        f"thread join while holding '{holding}' deadlocks "
                        "if the joined thread needs the lock",
                    ))
                elif attr == "acquire" and _lockish(node.func.value):
                    violations.append(_violation(
                        ctx, node, "RL104",
                        f"acquires '{dotted_name(node.func.value)}' while "
                        f"holding '{holding}' (nested locks: deadlock shape)",
                    ))

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _iter_block(node.body, frozenset(), enter, None, visit_stmt)
    return violations


CHECKERS = (
    ("RL101", "lock-guarded attribute accessed without its lock", _check_rl101),
    ("RL102", "shared state mutated in a thread target without a lock", _check_rl102),
    ("RL103", "fork-unsafe operation in a process-pool task body", _check_rl103),
    ("RL104", "blocking call while holding a lock (deadlock shape)", _check_rl104),
)
