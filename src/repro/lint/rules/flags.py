"""RL001 — flagged node ids must be masked before indexing.

The search stores the 1-bit "has been a parent" flag in the MSB of a
``uint32`` node id (``PARENT_FLAG``, Sec. IV-B4 of the paper).  An id that
carries the flag is *not* a valid row index: ``data[flagged_id]`` silently
reads the wrong row (or raises) because the MSB turns the id into a number
``>= 2**31``.  Every use of a flag-carrying array as an index or gather
argument must therefore be dominated by ``& INDEX_MASK``.

This rule performs a per-scope taint analysis in statement order:

* a name becomes *tainted* when it is assigned an expression that ORs in
  ``PARENT_FLAG`` (``x = y | PARENT_FLAG``, ``x |= PARENT_FLAG``,
  including a subscript target ``x[i] |= PARENT_FLAG``), or when it is
  assigned from an already-tainted name (aliases, ``.copy()``,
  ``.astype(...)`` chains);
* a name is *cleansed* when reassigned from an expression containing
  ``& INDEX_MASK``;
* a violation is reported when a tainted name appears inside the index of
  a subscript (``a[tainted]``) or as the index argument of ``np.take`` /
  ``np.take_along_axis`` / ``np.put_along_axis`` without ``& INDEX_MASK``
  inside that index expression.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, iter_scopes, mentions_symbol, scope_statements
from repro.lint.report import Violation

__all__ = ["RULE_ID", "TITLE", "check"]

RULE_ID = "RL001"
TITLE = "PARENT_FLAG-carrying array used as an index without & INDEX_MASK"

_FLAG = "PARENT_FLAG"
_MASK = "INDEX_MASK"
#: numpy gather/scatter helpers whose second positional argument is an
#: index array.
_INDEX_ARG_FUNCS = {"take", "take_along_axis", "put_along_axis"}


def _contains_mask(node: ast.AST) -> bool:
    """True if the expression applies ``& INDEX_MASK`` anywhere inside."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.BitAnd):
            if mentions_symbol(sub.left, _MASK) or mentions_symbol(sub.right, _MASK):
                return True
    return False


def _ors_in_flag(node: ast.AST) -> bool:
    """True if the expression ORs ``PARENT_FLAG`` into something."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.BitOr):
            if mentions_symbol(sub.left, _FLAG) or mentions_symbol(sub.right, _FLAG):
                return True
    return False


def _references_tainted(node: ast.AST, tainted: set[str]) -> str | None:
    """Name of the first tainted identifier referenced in ``node``, if any."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return sub.id
    return None


def _check_usages(stmt: ast.stmt, tainted: set[str], ctx: FileContext) -> list[Violation]:
    """Flag tainted names used in index position anywhere in ``stmt``."""
    violations: list[Violation] = []
    for node in ast.walk(stmt):
        index_exprs: list[ast.expr] = []
        if isinstance(node, ast.Subscript):
            index_exprs.append(node.slice)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _INDEX_ARG_FUNCS
                and len(node.args) >= 2
            ):
                index_exprs.append(node.args[1])
        for expr in index_exprs:
            name = _references_tainted(expr, tainted)
            if name is not None and not _contains_mask(expr):
                violations.append(
                    Violation(
                        path=ctx.path,
                        line=expr.lineno,
                        col=expr.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"'{name}' may carry PARENT_FLAG but is used as an "
                            f"index/gather argument without '& INDEX_MASK'"
                        ),
                    )
                )
    return violations


def check(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    if not mentions_symbol(ctx.tree, _FLAG):
        return violations
    for _scope, body in iter_scopes(ctx.tree):
        tainted: set[str] = set()
        for stmt in scope_statements(body):
            # Usages are checked against the taint state *before* this
            # statement's own assignment takes effect.
            violations.extend(_check_usages(stmt, tainted, ctx))
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                if not targets:
                    continue
                if _contains_mask(stmt.value):
                    for target in targets:
                        tainted.discard(target.id)
                elif _ors_in_flag(stmt.value) or _references_tainted(
                    stmt.value, tainted
                ):
                    for target in targets:
                        tainted.add(target.id)
                else:
                    for target in targets:
                        tainted.discard(target.id)
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.BitOr):
                if mentions_symbol(stmt.value, _FLAG):
                    target = stmt.target
                    if isinstance(target, ast.Subscript):
                        target = target.value
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
    return violations
