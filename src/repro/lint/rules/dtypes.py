"""RL002 — node-id arrays need explicit integer dtypes.

Node ids are ``uint32`` on the wire (graph rows, search buffers) and
``int64`` when used as numpy fancy indexes.  An id array constructed
without an explicit ``dtype=`` inherits platform-dependent defaults
(``np.arange`` is ``int32`` on Windows) and float promotion hazards.  The
rule fires when:

* a name matching an id-ish pattern (``ids``, ``indices``, ``nodes``,
  ``neighbors``, ...) is assigned from ``np.arange`` / ``np.zeros`` /
  ``np.empty`` / ``np.full`` / ``np.array`` / ``np.ones`` without a
  ``dtype=`` keyword;
* an id-named array is compared against a negative or float Python
  literal (``ids == -1`` is always-false/undefined under ``uint32``;
  float comparison promotes the whole array).
"""

from __future__ import annotations

import ast
import re

from repro.lint.engine import FileContext, dotted_name
from repro.lint.report import Violation

__all__ = ["RULE_ID", "TITLE", "check"]

RULE_ID = "RL002"
TITLE = "node-id array construction without an explicit dtype"

_ID_NAME_RE = re.compile(
    r"(^|_)(id|ids|idx|index|indices|node|nodes|neighbor|neighbors|parents?)(_|$)",
    re.IGNORECASE,
)
_CONSTRUCTORS = {"arange", "zeros", "empty", "full", "array", "ones"}


def _is_id_name(name: str) -> bool:
    return bool(_ID_NAME_RE.search(name))


def _is_np_constructor_without_dtype(node: ast.expr) -> str | None:
    """Constructor name if ``node`` is ``np.<ctor>(...)`` with no dtype."""
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if not dotted:
        return None
    parts = dotted.split(".")
    if parts[0] not in ("np", "numpy") or parts[-1] not in _CONSTRUCTORS:
        return None
    if any(kw.arg == "dtype" for kw in node.keywords):
        return None
    return parts[-1]


def _bad_literal(node: ast.expr) -> str | None:
    """'negative int' / 'float' if ``node`` is a hazardous literal."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        if isinstance(node.operand, ast.Constant) and isinstance(
            node.operand.value, (int, float)
        ):
            return "negative literal"
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return "float literal"
    return None


def check(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if not any(_is_id_name(t) for t in targets):
                continue
            ctor = _is_np_constructor_without_dtype(node.value)
            if ctor is not None:
                name = next(t for t in targets if _is_id_name(t))
                violations.append(
                    Violation(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"id array '{name}' built with np.{ctor}() without an "
                            f"explicit dtype (use np.uint32 for stored ids, "
                            f"np.int64 for fancy indexes)"
                        ),
                    )
                )
        elif isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            id_side = next(
                (
                    s
                    for s in sides
                    if isinstance(s, ast.Name) and _is_id_name(s.id)
                ),
                None,
            )
            if id_side is None:
                continue
            for other in sides:
                kind = _bad_literal(other)
                if kind is not None:
                    violations.append(
                        Violation(
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=RULE_ID,
                            message=(
                                f"id array '{id_side.id}' compared against a "
                                f"{kind}; uint32 ids make this comparison "
                                f"wrong or promote it to float/object"
                            ),
                        )
                    )
                    break
    return violations
