"""RL004 — distance math in core/baselines must flow through counted wrappers.

Every simulated-time figure the reproduction emits is derived from the
``distance_computations`` counters in :class:`~repro.core.search.CostReport`
and the baselines' build/search stats.  A distance evaluated *inline*
(``np.linalg.norm``, ``((a - b) ** 2).sum()``, ``a @ b.T``, squared-diff
``einsum`` contractions) instead of through :mod:`repro.core.distances`
escapes that accounting and silently corrupts the gpusim timing model.

The rule applies to files under ``core/`` and ``baselines/`` — except
``distances.py`` itself, which is where the math is supposed to live — and
flags:

* ``np.linalg.norm(...)`` calls;
* the ``@`` (matmul) operator;
* ``(...).sum()`` / ``np.sum(...)`` over a squared difference
  (``(a - b) ** 2``);
* ``np.einsum`` contractions whose two operands share the same subscript
  string (the squared-distance / self-dot signature, e.g.
  ``"ij,ij->i"``).

Counted or geometric uses (e.g. an angle test that increments its own
stats counter) should carry an in-line waiver with a reason.
"""

from __future__ import annotations

import ast
import re

from repro.lint.engine import FileContext, dotted_name
from repro.lint.report import Violation

__all__ = ["RULE_ID", "TITLE", "check"]

RULE_ID = "RL004"
TITLE = "inline distance math bypassing repro.core.distances counted wrappers"

_SELF_DOT_RE = re.compile(r"^\s*([a-zA-Z]+)\s*,\s*\1\s*->")


def _violation(ctx: FileContext, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        rule=RULE_ID,
        message=message,
    )


def _contains_squared_diff(node: ast.AST) -> bool:
    """True if the expression contains ``(a - b) ** 2``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.BinOp)
            and isinstance(sub.op, ast.Pow)
            and isinstance(sub.right, ast.Constant)
            and sub.right.value == 2
        ):
            for inner in ast.walk(sub.left):
                if isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.Sub):
                    return True
    return False


def check(ctx: FileContext) -> list[Violation]:
    if not ctx.is_under("core", "baselines"):
        return []
    if ctx.posix_path.endswith("/distances.py"):
        return []
    violations: list[Violation] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            violations.append(
                _violation(
                    ctx,
                    node,
                    "inline '@' matmul; route distance math through "
                    "repro.core.distances so CostReport counters stay faithful",
                )
            )
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in ("np.linalg.norm", "numpy.linalg.norm"):
                violations.append(
                    _violation(
                        ctx,
                        node,
                        "inline np.linalg.norm(); use repro.core.distances "
                        "(normalize_rows / distances_to_query) so the work "
                        "is counted",
                    )
                )
            elif dotted in ("np.einsum", "numpy.einsum"):
                if (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                    and _SELF_DOT_RE.match(node.args[0].value)
                ):
                    violations.append(
                        _violation(
                            ctx,
                            node,
                            f"inline squared-distance einsum "
                            f"({node.args[0].value!r}); use "
                            f"repro.core.distances.gathered_distances instead",
                        )
                    )
            elif (
                isinstance(node.func, ast.Attribute) and node.func.attr == "sum"
            ) and _contains_squared_diff(node):
                violations.append(
                    _violation(
                        ctx,
                        node,
                        "inline '((a - b) ** 2).sum()' distance; use "
                        "repro.core.distances so the work is counted",
                    )
                )
    return violations
