"""RL003 — stochastic code must take an explicit ``numpy.random.Generator``.

Reproducible benches (DESIGN.md §6) require every stochastic component to
thread an explicit ``Generator`` (or integer seed) parameter: global RNG
state (``np.random.seed`` + legacy ``np.random.<dist>`` calls, the stdlib
``random`` module) makes results depend on call order across the whole
process, and time-based seeding makes them irreproducible outright.

The rule flags:

* any legacy ``np.random.<name>(...)`` call except the explicit
  construction APIs (``default_rng``, ``Generator``, ``SeedSequence`` and
  the bit generators);
* any use of the stdlib ``random`` module (both ``import random`` usage
  and ``from random import ...``);
* seeding from wall-clock time: ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` appearing inside the arguments of an RNG
  constructor or ``seed(...)`` call.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, dotted_name
from repro.lint.report import Violation

__all__ = ["RULE_ID", "TITLE", "check"]

RULE_ID = "RL003"
TITLE = "global or time-seeded randomness instead of an explicit Generator"

_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}
_TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.monotonic",
    "datetime.now",
    "datetime.datetime.now",
    "datetime.utcnow",
}
_SEEDING_CALLS = {"default_rng", "seed", "RandomState", "SeedSequence"}


def _stdlib_random_imported(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
    return False


def _violation(ctx: FileContext, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        rule=RULE_ID,
        message=message,
    )


def check(ctx: FileContext) -> list[Violation]:
    violations: list[Violation] = []
    has_stdlib_random = _stdlib_random_imported(ctx.tree)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            violations.append(
                _violation(
                    ctx,
                    node,
                    "stdlib 'random' import; use an explicit "
                    "numpy.random.Generator parameter instead",
                )
            )
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        parts = dotted.split(".") if dotted else []

        # Legacy global-state numpy RNG: np.random.<dist>(...).
        if (
            len(parts) >= 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in _ALLOWED_NP_RANDOM
        ):
            violations.append(
                _violation(
                    ctx,
                    node,
                    f"legacy global-state call {dotted}(); pass an explicit "
                    f"numpy.random.Generator (np.random.default_rng) instead",
                )
            )
            continue

        # stdlib random module usage: random.<fn>(...).
        if has_stdlib_random and parts[:1] == ["random"] and len(parts) >= 2:
            violations.append(
                _violation(
                    ctx,
                    node,
                    f"stdlib {dotted}() uses hidden global state; pass an "
                    f"explicit numpy.random.Generator instead",
                )
            )
            continue

        # Time-based seeding: default_rng(time.time()), seed(time.time_ns())...
        if parts and parts[-1] in _SEEDING_CALLS:
            args = [*node.args, *(kw.value for kw in node.keywords)]
            for arg in (sub for a in args for sub in ast.walk(a)):
                if isinstance(arg, ast.Call) and dotted_name(arg.func) in _TIME_CALLS:
                    violations.append(
                        _violation(
                            ctx,
                            node,
                            f"time-based seeding ({dotted_name(arg.func)}()) makes "
                            f"runs irreproducible; accept a seed/Generator "
                            f"parameter instead",
                        )
                    )
                    break
    return violations
