"""AST walker and per-file rule driver for the repro invariant linter.

The linter enforces repo-specific contracts that generic tools cannot know
about (see ``docs/static_analysis.md``): the ``PARENT_FLAG`` MSB masking
discipline, explicit node-id dtypes, Generator-based determinism, counted
distance accounting, and public-API hygiene.  Each rule lives in
:mod:`repro.lint.rules`; this module parses files, runs every rule, and
filters out violations covered by an in-line waiver.

Waiver syntax (see docs)::

    flagged_sum = int(flagged.sum())  # repro-lint: disable=RL001 — reason
    # repro-lint: disable-file=RL004 — whole-file waiver

A line waiver applies to violations reported on its own physical line or
on the line directly below it (so a waiver comment can sit above a long
statement).  ``disable-file`` waives the rule for the whole file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.report import Violation

__all__ = [
    "FileContext",
    "LintResult",
    "build_context",
    "default_root",
    "dotted_name",
    "iter_python_files",
    "iter_scopes",
    "lint_file",
    "lint_paths",
    "lint_source",
    "mentions_symbol",
    "parse_waivers",
    "scope_statements",
]

_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?=(?P<rules>RL\d{3}(?:\s*,\s*RL\d{3})*)"
)


@dataclass
class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    path: str
    source: str
    tree: ast.Module
    line_waivers: dict[int, set[str]] = field(default_factory=dict)
    file_waivers: set[str] = field(default_factory=set)

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()

    def is_under(self, *parts: str) -> bool:
        """True if any of ``parts`` appears as a path component."""
        components = self.posix_path.split("/")
        return any(part in components for part in parts)


def build_context(source: str, path: str = "<string>") -> FileContext:
    """Parse one source blob into a :class:`FileContext` with its waivers."""
    tree = ast.parse(source, filename=path)
    line_waivers, file_waivers = parse_waivers(source)
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        line_waivers=line_waivers,
        file_waivers=file_waivers,
    )


@dataclass
class LintResult:
    """Aggregate outcome of linting a set of files."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors


# ----------------------------------------------------------------------
# shared AST helpers used by the rule modules
# ----------------------------------------------------------------------
def mentions_symbol(node: ast.AST, symbol: str) -> bool:
    """True if ``node`` references ``symbol`` as a bare name or attribute."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == symbol:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == symbol:
            return True
    return False


def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield (scope node, body) for the module and every (nested) function.

    Each function body is yielded exactly once; statements inside a nested
    function belong to the nested scope only.
    """
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def scope_statements(body: list[ast.stmt]) -> list[ast.stmt]:
    """Flatten a scope's statements (if/for/while/try bodies included) in
    source order, excluding statements of nested function/class scopes."""
    out: list[ast.stmt] = []

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            out.append(stmt)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, name, None)
                if isinstance(inner, list):
                    visit([s for s in inner if isinstance(s, ast.stmt)])
            for handler in getattr(stmt, "handlers", []):
                visit(handler.body)

    visit(body)
    out.sort(key=lambda s: (s.lineno, s.col_offset))
    return out


# ----------------------------------------------------------------------
# waivers
# ----------------------------------------------------------------------
def parse_waivers(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Extract line-level and file-level waivers from source comments.

    Returns ``(line_waivers, file_waivers)`` where ``line_waivers`` maps a
    1-based line number to the rule ids waived on that line.
    """
    line_waivers: dict[int, set[str]] = {}
    file_waivers: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if not match:
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        if match.group("scope"):
            file_waivers |= rules
        else:
            line_waivers.setdefault(lineno, set()).update(rules)
    return line_waivers, file_waivers


def _is_waived(
    violation: Violation,
    line_waivers: dict[int, set[str]],
    file_waivers: set[str],
) -> bool:
    if violation.rule in file_waivers:
        return True
    for lineno in (violation.line, violation.line - 1):
        if violation.rule in line_waivers.get(lineno, set()):
            return True
    return False


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def _run_file_rules(ctx: FileContext) -> list[Violation]:
    from repro.lint.rules import RULES

    violations: list[Violation] = []
    for checker in RULES.values():
        violations.extend(checker.check(ctx))
    return [
        v for v in violations if not _is_waived(v, ctx.line_waivers, ctx.file_waivers)
    ]


def _run_project_rules(contexts: list[FileContext]) -> list[Violation]:
    """Run the cross-file rules (e.g. RL203 registry drift) over a set of
    parsed files, applying each violation's own file's waivers."""
    from repro.lint.rules import PROJECT_RULES

    by_path = {ctx.path: ctx for ctx in contexts}
    violations: list[Violation] = []
    for checker in PROJECT_RULES.values():
        for violation in checker.check(contexts):
            ctx = by_path.get(violation.path)
            if ctx is not None and _is_waived(
                violation, ctx.line_waivers, ctx.file_waivers
            ):
                continue
            violations.append(violation)
    return violations


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one in-memory source blob; raises ``SyntaxError`` on bad input.

    Runs the per-file rules plus the cross-file rules over the single
    file, so self-contained registry-drift fixtures still report RL203.
    """
    ctx = build_context(source, path)
    return _run_file_rules(ctx) + _run_project_rules([ctx])


def lint_file(path: str | Path, result: LintResult) -> None:
    """Lint one file on disk into ``result``."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
        violations = lint_source(source, str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        result.parse_errors.append(f"{path}: {exc}")
        return
    result.files_checked += 1
    result.violations.extend(violations)


def iter_python_files(root: str | Path) -> Iterator[Path]:
    """Yield ``.py`` files under ``root`` (or ``root`` itself), skipping
    caches and hidden directories."""
    root = Path(root)
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(part.startswith(".") or part == "__pycache__" for part in path.parts):
            continue
        yield path


def default_root() -> Path:
    """The source tree to lint when no paths are given: the directory
    containing the installed ``repro`` package (i.e. ``src/``)."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def lint_paths(paths: Iterable[str | Path] | None = None) -> LintResult:
    """Lint files/directories (default: the whole ``repro`` source tree).

    Per-file rules run on each file; cross-file rules (``PROJECT_RULES``)
    run once over every file that parsed, so registry drift between e.g.
    ``factory.py`` and ``persistence.py`` is visible.
    """
    result = LintResult()
    contexts: list[FileContext] = []
    roots = list(paths) if paths else [default_root()]
    for root in roots:
        if not Path(root).exists():
            result.parse_errors.append(f"{root}: no such file or directory")
            continue
        for path in iter_python_files(root):
            try:
                source = path.read_text(encoding="utf-8")
                ctx = build_context(source, str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                result.parse_errors.append(f"{path}: {exc}")
                continue
            contexts.append(ctx)
            result.files_checked += 1
            result.violations.extend(_run_file_rules(ctx))
    result.violations.extend(_run_project_rules(contexts))
    return result
