"""repro.lint — AST-based invariant linter for the CAGRA reproduction.

Enforces the repo-specific contracts that generic linters cannot know
about (see ``docs/static_analysis.md`` for the full catalogue):

* **RL001** ``PARENT_FLAG``-carrying ids must be ``& INDEX_MASK``-ed
  before being used as indexes;
* **RL002** node-id arrays need explicit integer dtypes;
* **RL003** stochastic code takes an explicit ``numpy.random.Generator``;
* **RL004** distance math in ``core/`` / ``baselines/`` flows through the
  counted :mod:`repro.core.distances` wrappers;
* **RL005** no exact float equality on distances, no ``__all__`` drift;
* **RL006** tombstone / mask / liveness arrays (the streaming layer's
  concurrent-visibility state) change only under the owning class's
  lock — guarded by name, not by observed convention;
* **RL007** ``@hot_path`` traversal functions stay array-parallel: no
  Python ``for`` loop over a query-scaling iterable on the search hot
  path (fixed-size lane/probe loops are fine);
* **RL101–RL104** lock discipline: guarded attributes accessed without
  their lock, unlocked mutation in thread targets, fork-unsafety in
  pool task bodies, blocking calls while holding a lock;
* **RL201–RL203** AnnIndex contract: ``search`` results flow through
  ``SearchResult`` / ``normalize_results``, int32 ids and no float
  ``==`` on the result path, and registry sync between ``INDEX_KINDS``,
  persistence formats, and adapter dispatch (cross-file);
* **RL301/RL302** (runtime, opt-in): the thread-sanitizer-lite in
  :mod:`repro.lint.sanitizer` reports lock-order cycles (potential
  deadlocks) and unsynchronized concurrent attribute writes.

Run it via ``repro-cagra lint [--format json] [--strict] [--sanitize]``
or programmatically through :func:`lint_paths` / :func:`lint_source`.
"""

from repro.lint.engine import LintResult, default_root, lint_paths, lint_source
from repro.lint.report import Violation, format_json, format_text
from repro.lint.rules import PROJECT_RULES, RULES
from repro.lint.sanitizer import ThreadSanitizer, sanitize_enabled

__all__ = [
    "LintResult",
    "PROJECT_RULES",
    "RULES",
    "ThreadSanitizer",
    "Violation",
    "default_root",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
    "sanitize_enabled",
]
