"""repro.lint — AST-based invariant linter for the CAGRA reproduction.

Enforces the repo-specific contracts that generic linters cannot know
about (see ``docs/static_analysis.md`` for the full catalogue):

* **RL001** ``PARENT_FLAG``-carrying ids must be ``& INDEX_MASK``-ed
  before being used as indexes;
* **RL002** node-id arrays need explicit integer dtypes;
* **RL003** stochastic code takes an explicit ``numpy.random.Generator``;
* **RL004** distance math in ``core/`` / ``baselines/`` flows through the
  counted :mod:`repro.core.distances` wrappers;
* **RL005** no exact float equality on distances, no ``__all__`` drift.

Run it via ``repro-cagra lint [--format json] [--strict]`` or
programmatically through :func:`lint_paths` / :func:`lint_source`.
"""

from repro.lint.engine import LintResult, default_root, lint_paths, lint_source
from repro.lint.report import Violation, format_json, format_text
from repro.lint.rules import RULES

__all__ = [
    "LintResult",
    "RULES",
    "Violation",
    "default_root",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
]
