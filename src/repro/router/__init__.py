"""repro.router — a replicated shard-router tier over :mod:`repro.serve`.

One :class:`ShardRouter` fronts N replicas (each a full
:class:`~repro.serve.CagraServer` over the same logical index) and adds
the fleet concerns a single server cannot provide:

* **load-aware dispatch** — replicas scored by latency EWMA × standing
  load (in-flight legs + queue depth), or deterministic round-robin;
* **hedged requests** — a backup leg to the next-best replica after a
  seeded, EWMA-derived hedge delay; first success wins, exactly once;
* **failover** — failed legs re-dispatch to the best untried replica
  (bounded by ``max_attempts``), feeding per-replica circuit breakers;
* **per-tenant admission quotas** — token buckets rejecting over-quota
  tenants with a typed :class:`TenantOverQuota` before any queue slot
  is consumed;
* **fleet observability** — :class:`RouterStats` (the whole
  :class:`~repro.serve.ServeStats` surface summed fleet-wide + router
  counters) and the :class:`FleetHealth` snapshot;
* **rolling upgrades** — :meth:`ShardRouter.rolling_swap` drains and
  hot-swaps one replica at a time, so traffic never stops.

See ``docs/router.md`` for the dispatch policy, the hedge-delay math,
quota semantics, and the failure-semantics table.
"""

from repro.router.config import DISPATCH_POLICIES, RouterConfig
from repro.router.loadgen import (
    FleetLoadReport,
    expected_quota_outcomes,
    run_fleet_closed_loop,
)
from repro.router.quota import QuotaLedger, TenantOverQuota, TokenBucket
from repro.router.replica import Ewma, Replica
from repro.router.router import NoReplicaAvailable, RoutedResult, ShardRouter
from repro.router.stats import FleetHealth, RouterStats, RouterStatsCollector

__all__ = [
    "DISPATCH_POLICIES",
    "Ewma",
    "FleetHealth",
    "FleetLoadReport",
    "NoReplicaAvailable",
    "QuotaLedger",
    "Replica",
    "RoutedResult",
    "RouterConfig",
    "RouterStats",
    "RouterStatsCollector",
    "ShardRouter",
    "TenantOverQuota",
    "TokenBucket",
    "expected_quota_outcomes",
    "run_fleet_closed_loop",
]
