"""Closed-loop multi-tenant fleet load generation + reference quota model.

:func:`run_fleet_closed_loop` replays a seeded
:class:`~repro.serve.loadgen.ZipfTenantSchedule` against a
:class:`~repro.router.ShardRouter`.  The dispatch rule that makes quota
accounting *exactly* reproducible: requests are partitioned onto client
threads **by tenant** (tenant → ``tenant % num_clients``), so every
tenant's requests are submitted in schedule (arrival) order by a single
thread, and each request carries its scheduled ``arrival_s`` as the
virtual quota clock.  Cross-tenant interleaving between threads is then
irrelevant — token buckets are per-tenant — and
:func:`expected_quota_outcomes`, a pure replay of the same per-tenant
arrival sequences through the same bucket arithmetic, predicts every
admit/reject decision bit-for-bit.

``pace=True`` additionally sleeps each client to its next request's
scheduled arrival (open-loop-ish timing on a closed-loop skeleton);
the default ``pace=False`` submits back-to-back for fast tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.router.quota import TenantOverQuota
from repro.router.router import NoReplicaAvailable, ShardRouter
from repro.serve.loadgen import ZipfTenantSchedule
from repro.serve.server import RequestTimeout, ServeError

__all__ = ["FleetLoadReport", "expected_quota_outcomes", "run_fleet_closed_loop"]

#: Sentinel replica id for requests that never reached a replica.
NO_REPLICA = -1


@dataclass
class FleetLoadReport:
    """Client-side outcome of one fleet load run, aligned to the schedule.

    The per-request arrays all have length ``len(schedule)`` and are
    indexed by schedule position, so two runs of the same schedule can
    be compared element-wise (the determinism tests do exactly that).

    Attributes:
        ok / quota_rejected / timed_out / failed: outcome counts.
        hedged / hedge_wins: requests that issued a hedge leg / where
            the hedge leg answered first.
        latencies_ms: router-observed latency of each ``ok`` request.
        indices: ``(N, k)`` winning-leg neighbor ids (-1 rows for
            requests that produced no answer).
        replica: ``(N,)`` winning replica id (:data:`NO_REPLICA` when no
            leg won).
        outcome: ``(N,)`` outcome code per request — ``"ok"``,
            ``"quota"``, ``"timeout"``, ``"failed"``.
        per_tenant_ok / per_tenant_quota_rejected: outcome counts keyed
            by tenant name.
    """

    num_requests: int = 0
    ok: int = 0
    quota_rejected: int = 0
    timed_out: int = 0
    failed: int = 0
    hedged: int = 0
    hedge_wins: int = 0
    duration_seconds: float = 0.0
    latencies_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    indices: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    replica: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    outcome: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=object))
    per_tenant_ok: dict[str, int] = field(default_factory=dict)
    per_tenant_quota_rejected: dict[str, int] = field(default_factory=dict)

    def latency_percentile_ms(self, q: float) -> float:
        return (
            float(np.percentile(self.latencies_ms, q))
            if self.latencies_ms.size
            else 0.0
        )

    def summary(self) -> str:
        return (
            f"fleet load: requests={self.num_requests} ok={self.ok} "
            f"quota_rejected={self.quota_rejected} "
            f"timed_out={self.timed_out} failed={self.failed} "
            f"hedged={self.hedged} hedge_wins={self.hedge_wins} "
            f"in {self.duration_seconds:.2f}s; "
            f"latency p50={self.latency_percentile_ms(50):.2f}ms "
            f"p95={self.latency_percentile_ms(95):.2f}ms "
            f"p99={self.latency_percentile_ms(99):.2f}ms"
        )


def expected_quota_outcomes(
    schedule: ZipfTenantSchedule, rate_qps: float, burst: float
) -> dict[str, int]:
    """Reference token-bucket replay: tenant name → rejected count.

    Implements *the same arithmetic in the same order* as
    :class:`~repro.router.quota.TokenBucket` fed each tenant's arrivals
    in schedule order — which is exactly what
    :func:`run_fleet_closed_loop`'s tenant-partitioned dispatch
    guarantees the router sees — so the prediction is exact, not
    statistical.
    """
    rejected: dict[str, int] = {}
    for tenant, positions in schedule.per_tenant_positions().items():
        tokens = float(burst)
        last = None
        misses = 0
        for pos in positions:
            now = float(schedule.arrival_s[pos])
            if last is None:
                last = now
            now = max(now, last)
            tokens = min(float(burst), tokens + (now - last) * float(rate_qps))
            last = now
            if tokens >= 1.0:
                tokens -= 1.0
            else:
                misses += 1
        rejected[schedule.tenant_name(tenant)] = misses
    return rejected


def run_fleet_closed_loop(
    router: ShardRouter,
    queries: np.ndarray,
    schedule: ZipfTenantSchedule,
    num_clients: int = 4,
    k: int | None = None,
    timeout_ms: float | None = None,
    pace: bool = False,
) -> FleetLoadReport:
    """Replay ``schedule`` against ``router`` with tenant-partitioned
    closed-loop clients.

    Args:
        router: a started :class:`ShardRouter`.
        queries: ``(Q, dim)`` query pool; ``schedule.query_rows`` index
            into it (mod Q).
        schedule: who arrives when asking what (seeded).
        num_clients: client threads; tenants map to clients by
            ``tenant % num_clients`` so per-tenant order is preserved.
        k / timeout_ms: forwarded to :meth:`ShardRouter.search`.
        pace: sleep each client to its requests' scheduled arrivals
            (False = submit back-to-back, virtual time only).
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    queries = np.atleast_2d(queries)
    num_rows = queries.shape[0]
    n = len(schedule)
    k_out = int(k) if k else 10

    indices = np.full((n, k_out), -1, dtype=np.int64)
    replica = np.full(n, NO_REPLICA, dtype=np.int64)
    outcome = np.empty(n, dtype=object)
    latency = np.full(n, np.nan, dtype=np.float64)
    hedged_mask = np.zeros(n, dtype=bool)
    hedge_won_mask = np.zeros(n, dtype=bool)

    record_lock = threading.Lock()
    by_tenant = schedule.per_tenant_positions()
    client_positions: list[list[int]] = [[] for _ in range(num_clients)]
    for tenant, positions in sorted(by_tenant.items()):
        client_positions[tenant % num_clients].extend(int(p) for p in positions)
    for positions in client_positions:
        positions.sort()  # merged arrival order; per-tenant order intact

    start = time.monotonic()

    def worker(positions: list[int]) -> None:
        for pos in positions:
            arrival = float(schedule.arrival_s[pos])
            if pace:
                delay = start + arrival - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            tenant = schedule.tenant_name(int(schedule.tenants[pos]))
            row = int(schedule.query_rows[pos]) % num_rows
            try:
                result = router.search(
                    queries[row],
                    k=k,
                    tenant=tenant,
                    timeout_ms=timeout_ms,
                    arrival_s=arrival,
                )
            except TenantOverQuota:
                with record_lock:
                    outcome[pos] = "quota"
            except RequestTimeout:
                with record_lock:
                    outcome[pos] = "timeout"
            except (NoReplicaAvailable, ServeError):
                with record_lock:
                    outcome[pos] = "failed"
            else:
                got = min(k_out, result.indices.shape[0])
                with record_lock:
                    outcome[pos] = "ok"
                    indices[pos, :got] = result.indices[:got]
                    replica[pos] = result.replica
                    latency[pos] = result.latency_ms
                    hedged_mask[pos] = result.hedged
                    hedge_won_mask[pos] = result.hedge_won

    threads = [
        threading.Thread(target=worker, args=(positions,), name=f"fleet-client-{c}")
        for c, positions in enumerate(client_positions)
        if positions
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.monotonic() - start

    report = FleetLoadReport(
        num_requests=n,
        ok=int(np.sum(outcome == "ok")),
        quota_rejected=int(np.sum(outcome == "quota")),
        timed_out=int(np.sum(outcome == "timeout")),
        failed=int(np.sum(outcome == "failed")),
        hedged=int(hedged_mask.sum()),
        hedge_wins=int(hedge_won_mask.sum()),
        duration_seconds=duration,
        latencies_ms=latency[outcome == "ok"],
        indices=indices,
        replica=replica,
        outcome=outcome,
    )
    for tenant, positions in sorted(by_tenant.items()):
        name = schedule.tenant_name(tenant)
        tenant_outcomes = outcome[positions]
        report.per_tenant_ok[name] = int(np.sum(tenant_outcomes == "ok"))
        report.per_tenant_quota_rejected[name] = int(
            np.sum(tenant_outcomes == "quota")
        )
    return report
