"""The replicated shard router: load-aware dispatch, hedged requests,
failover, per-tenant quotas, and rolling upgrades over N replicas.

:class:`ShardRouter` fronts a fleet of :class:`~repro.serve.CagraServer`
replicas (each a full server over the same logical index) and gives the
caller one synchronous ``search()`` that survives slow, flaky, and dead
replicas.  The request path, in order:

1. **Admission** — the tenant's token bucket is charged
   (:class:`~repro.router.quota.QuotaLedger`); an empty bucket raises
   :class:`~repro.router.quota.TenantOverQuota` before the request
   consumes a sequence number, a queue slot, or a hedge leg.
2. **Dispatch** — available replicas (active; draining only as a last
   resort; dead never) whose breakers admit traffic are ordered by the
   configured policy: ``load_aware`` picks the minimum
   ``EWMA latency × (1 + in-flight + queue depth)`` score,
   ``round_robin`` rotates by the request sequence number.  The
   ``router.dispatch`` fault point fires per dispatch attempt — a
   ``raise`` there is a leg failure and triggers failover.
3. **Hedge** — when the primary leg has not resolved within the hedge
   delay (fixed, or derived from the primary's latency EWMA ×
   ``hedge_latency_factor``, clamped to ``[floor, cap]``, plus seeded
   ``Philox(seed, sequence)`` jitter), one backup leg is issued to the
   next-best replica (``router.hedge`` fault point; a ``raise`` cancels
   the hedge).  The first leg to resolve ``DONE`` — scanning legs in
   issue order, so ties break deterministically — wins, **exactly
   once**; the loser is detached (its replica still finishes and caches
   the answer, but nothing of it reaches this caller).
4. **Failover** — when every outstanding leg has *failed* (not merely
   slow), the router re-dispatches to the best untried replica, up to
   ``max_attempts`` sequential attempts.  Leg outcomes feed the losing
   replica's circuit breaker and the winner's latency EWMA.

Everything the fleet does is observable: :meth:`ShardRouter.stats`
returns a :class:`~repro.router.stats.RouterStats` (per-server counters
summed fleet-wide + router-tier counters + per-replica snapshots) and
:meth:`ShardRouter.health` a :class:`~repro.router.stats.FleetHealth`.
:meth:`ShardRouter.rolling_swap` upgrades the fleet to a new index one
replica at a time — drain, atomic :meth:`~repro.serve.CagraServer.
swap_index`, reactivate — so some replica is always serving.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.resilience import CircuitBreaker, FaultInjector, resolve_fault_plan
from repro.router.config import RouterConfig
from repro.router.quota import QuotaLedger
from repro.router.replica import ACTIVE, DEAD, DRAINING, Replica
from repro.router.stats import FleetHealth, RouterStats, RouterStatsCollector
from repro.serve.config import ServeConfig
from repro.serve.server import CagraServer, RequestTimeout, ServeError

__all__ = ["NoReplicaAvailable", "RoutedResult", "ShardRouter"]


class NoReplicaAvailable(ServeError):
    """No replica can take this request (all dead, or breakers open)."""


@dataclass(frozen=True)
class RoutedResult:
    """One fleet-answered query.

    Attributes:
        indices: ``(k,)`` neighbor ids from the winning leg.
        distances: matching distances.
        from_cache: the winning replica served it from its result cache.
        latency_ms: router-observed end-to-end latency (submit to the
            winning leg's resolution — the number hedging improves).
        replica: id of the replica whose leg won.
        hedged: a backup leg was issued for this request.
        hedge_won: the backup leg (not the primary) produced the answer.
    """

    indices: np.ndarray
    distances: np.ndarray
    from_cache: bool
    latency_ms: float
    replica: int
    hedged: bool
    hedge_won: bool


class _Leg:
    """One outstanding dispatch of a request to one replica.

    Owned by the single routing call that created it — no lock; the
    router thread is the only reader/writer.
    """

    __slots__ = ("replica", "handle", "hedge", "started", "settled")

    def __init__(self, replica: Replica, handle, hedge: bool):
        self.replica = replica
        self.handle = handle
        self.hedge = hedge
        self.started = time.monotonic()
        self.settled = False  # router-side accounting done for this leg


class ShardRouter:
    """Fleet frontend over N :class:`~repro.serve.CagraServer` replicas."""

    def __init__(self, servers, config: RouterConfig | None = None):
        if not servers:
            raise ValueError("a router needs at least one replica server")
        self.config = config or RouterConfig()
        self._replicas = [
            Replica(
                rid,
                server,
                ewma_alpha=self.config.ewma_alpha,
                ewma_initial_ms=self.config.ewma_initial_ms,
                breaker=(
                    CircuitBreaker(
                        failure_threshold=self.config.breaker_failure_threshold,
                        cooldown_s=self.config.breaker_cooldown_s,
                    )
                    if self.config.breaker_failure_threshold >= 1
                    else None
                ),
            )
            for rid, server in enumerate(servers)
        ]
        self._quotas = (
            QuotaLedger(self.config.quota_rate_qps, self.config.quota_burst)
            if self.config.quota_rate_qps > 0.0
            else None
        )
        plan = resolve_fault_plan(self.config.fault_plan)
        self._fault = FaultInjector(plan) if plan is not None else None
        self._stats = RouterStatsCollector()
        self._lock = threading.Lock()
        self._seq = 0
        self._swap_lock = threading.Lock()  # serializes rolling swaps

    # ------------------------------------------------------------------
    # construction helpers / life cycle
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        index,
        num_replicas: int = 3,
        config: RouterConfig | None = None,
        serve_config: ServeConfig | None = None,
        search_config=None,
        on_stage=None,
    ) -> "ShardRouter":
        """Stand up ``num_replicas`` servers over one shared index.

        Every replica serves the same in-memory index object (replicas
        exist for scheduling capacity and failure isolation, not data
        partitioning — sharding lives *inside* each server's index).
        """
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        servers = [
            CagraServer(
                index,
                config=serve_config,
                search_config=search_config,
                on_stage=on_stage,
            )
            for _ in range(num_replicas)
        ]
        return cls(servers, config=config)

    def start(self) -> "ShardRouter":
        for replica in self._replicas:
            if replica.state != DEAD:
                replica.server.start()
        return self

    def stop(self, drain: bool = True) -> None:
        for replica in self._replicas:
            replica.server.stop(drain=drain)

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=True)

    @property
    def replicas(self) -> list[Replica]:
        """The fleet, in replica-id order (read-only view)."""
        return list(self._replicas)

    def kill_replica(self, replica_id: int) -> None:
        """Chaos hook: SIGKILL-equivalent on one replica (see
        :meth:`Replica.kill`); the router routes around the corpse."""
        self._replicas[replica_id].kill()

    # ------------------------------------------------------------------
    # dispatch policy
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        with self._lock:
            seq = self._seq
            self._seq += 1
            return seq

    def _available(self) -> list[Replica]:
        """Replicas eligible for new legs: active ones whose breaker
        admits; draining replicas only when nothing active admits (the
        fleet degrades before it refuses)."""
        active, draining = [], []
        for replica in self._replicas:
            state = replica.state
            if state == DEAD:
                continue
            breaker = replica.breaker
            if breaker is not None and not breaker.allow():
                continue
            (active if state == ACTIVE else draining).append(replica)
        return active if active else draining

    def _ordered(self, seq: int) -> list[Replica]:
        """Candidates in dispatch order for request ``seq``."""
        candidates = self._available()
        if not candidates:
            return []
        if self.config.dispatch == "round_robin":
            rot = seq % len(candidates)
            return candidates[rot:] + candidates[:rot]
        return sorted(
            candidates, key=lambda r: (r.load_score(), r.replica_id)
        )

    def _hedge_delay_s(self, primary: Replica, seq: int) -> float:
        """Hedge delay for ``seq`` dispatched primarily to ``primary``:
        fixed or EWMA-derived, plus seeded deterministic jitter."""
        cfg = self.config
        if cfg.hedge_delay_ms > 0.0:
            delay_ms = cfg.hedge_delay_ms
        else:
            delay_ms = min(
                cfg.hedge_delay_cap_ms,
                max(
                    cfg.hedge_delay_floor_ms,
                    primary.ewma_ms * cfg.hedge_latency_factor,
                ),
            )
        if cfg.hedge_jitter_ms > 0.0:
            rng = np.random.default_rng([cfg.seed, seq])
            delay_ms += cfg.hedge_jitter_ms * float(rng.random())
        return delay_ms / 1e3

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int | None = None,
        tenant: str = "default",
        timeout_ms: float | None = None,
        arrival_s: float | None = None,
    ) -> RoutedResult:
        """Route one query through the fleet; block for the answer.

        Args:
            query: ``(dim,)`` float32 query vector.
            k: neighbors to return (each server's ``default_k`` when
                omitted).
            tenant: admission-quota identity; over-quota raises
                :class:`TenantOverQuota` without touching a replica.
            timeout_ms: end-to-end deadline (router default when None;
                0 = no deadline).
            arrival_s: virtual arrival time for the quota clock (load
                generators pass the scheduled arrival so admission
                decisions replay exactly; None = wall clock).

        Raises:
            TenantOverQuota: admission refused.
            NoReplicaAvailable: nothing to dispatch to.
            RequestTimeout: deadline passed with no winning leg.
            ServeError: every attempt failed (last leg's error).
        """
        if self._quotas is not None:
            self._quotas.admit(tenant, now=arrival_s)
        seq = self._next_seq()
        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        started = time.monotonic()
        deadline = started + timeout_ms / 1e3 if timeout_ms else None

        legs: list[_Leg] = []
        tried: set[int] = set()
        any_event = threading.Event()
        attempts = 0
        last_error: BaseException | None = None
        hedged = False
        hedge_at: float | None = None

        primary, err = self._dispatch_leg(
            query, k, tenant, seq, tried, deadline, hedge=False
        )
        if primary is None:
            self._stats.record_routed_failure()
            raise err if err is not None else NoReplicaAvailable(
                "no replica available for dispatch"
            )
        attempts += 1
        legs.append(primary)
        primary.handle.add_watcher(any_event)
        if self.config.hedge and len(self._replicas) > 1:
            hedge_at = primary.started + self._hedge_delay_s(
                primary.replica, seq
            )
        if err is not None:
            last_error = err

        while True:
            winner = self._scan_legs(legs)
            if isinstance(winner, _Leg):
                return self._resolve_winner(winner, legs, started, hedged)
            unresolved, leg_error = winner
            if leg_error is not None:
                last_error = leg_error

            if unresolved == 0:
                # Every outstanding leg failed: fail over or give up.
                if attempts < self.config.max_attempts:
                    leg, err = self._dispatch_leg(
                        query, k, tenant, seq, tried, deadline, hedge=False
                    )
                    if err is not None:
                        last_error = err
                    if leg is not None:
                        attempts += 1
                        self._stats.record_failover()
                        legs.append(leg)
                        leg.handle.add_watcher(any_event)
                        continue
                self._stats.record_routed_failure()
                raise last_error if last_error is not None else ServeError(
                    "all dispatch attempts failed without a recorded error"
                )

            now = time.monotonic()
            if deadline is not None and now >= deadline:
                self._abandon_unresolved(legs)
                self._stats.record_routed_failure()
                raise RequestTimeout(
                    f"no replica answered within {timeout_ms:.1f}ms"
                )

            wait = None if deadline is None else deadline - now
            if not hedged and hedge_at is not None:
                if now >= hedge_at:
                    hedged = self._issue_hedge(
                        query, k, tenant, seq, tried, deadline, legs, any_event
                    )
                    if not hedged:
                        hedge_at = None  # nobody to hedge to; stop trying
                    continue
                until_hedge = hedge_at - now
                wait = until_hedge if wait is None else min(wait, until_hedge)
            any_event.wait(wait)
            any_event.clear()

    # ------------------------------------------------------------------
    # request-path helpers (all called from the routing caller's thread)
    # ------------------------------------------------------------------
    def _dispatch_leg(
        self, query, k, tenant, seq, tried, deadline, hedge
    ) -> tuple[_Leg | None, BaseException | None]:
        """Submit one leg to the best untried replica.

        Returns ``(leg, last_error)``; ``leg`` is None when no untried
        replica accepted (candidates may have failed at the fault point
        or at submission — each such failure feeds that replica's
        breaker and is returned as ``last_error``).
        """
        last_error: BaseException | None = None
        for replica in self._ordered(seq):
            if replica.replica_id in tried:
                continue
            tried.add(replica.replica_id)
            point = "router.hedge" if hedge else "router.dispatch"
            try:
                if self._fault is not None:
                    self._fault.fire(
                        point, replica=replica.replica_id, tenant=tenant
                    )
                timeout_ms = None
                if deadline is not None:
                    timeout_ms = max(0.1, (deadline - time.monotonic()) * 1e3)
                replica.begin_leg(hedge=hedge)
                try:
                    handle = replica.server.submit(
                        query, k=k, timeout_ms=timeout_ms
                    )
                except BaseException:
                    replica.end_leg(failed=True)
                    raise
            except Exception as exc:
                replica.record_outcome(False)
                last_error = exc
                if hedge:
                    return None, last_error  # one hedge try, no cascade
                continue
            return _Leg(replica, handle, hedge), last_error
        return None, last_error

    def _scan_legs(self, legs):
        """First ``DONE`` leg in issue order wins (exactly once).

        Returns the winning :class:`_Leg`, or ``(unresolved_count,
        last_error)`` when nobody has won yet.  Failed legs are settled
        here: breaker charged, leg accounting closed.
        """
        unresolved = 0
        last_error: BaseException | None = None
        for leg in legs:
            if leg.settled:
                continue
            if not leg.handle.done():
                unresolved += 1
                continue
            try:
                leg.handle.result(timeout=0.0)
            except Exception as exc:
                leg.settled = True
                leg.replica.end_leg(failed=True)
                leg.replica.record_outcome(False)
                last_error = exc
                continue
            return leg
        return unresolved, last_error

    def _resolve_winner(
        self, winner: _Leg, legs, started: float, hedged: bool
    ) -> RoutedResult:
        result = winner.handle.result(timeout=0.0)
        winner.settled = True
        winner.replica.end_leg(won=True)
        winner.replica.record_outcome(True)
        winner.replica.observe_latency(
            (time.monotonic() - winner.started) * 1e3
        )
        self._settle_losers(legs)
        elapsed = time.monotonic() - started
        self._stats.record_routed(elapsed)
        if winner.hedge:
            self._stats.record_hedge_won()
        return RoutedResult(
            indices=result.indices,
            distances=result.distances,
            from_cache=result.from_cache,
            latency_ms=elapsed * 1e3,
            replica=winner.replica.replica_id,
            hedged=hedged,
            hedge_won=winner.hedge,
        )

    def _settle_losers(self, legs) -> None:
        """Detach every non-winning leg (exactly-once resolution).

        A loser that already resolved is fully accounted (EWMA on
        success, breaker on failure).  A loser still in flight is
        *released*: its in-flight count drops now and its eventual
        outcome is discarded — the replica's own server still completes
        (and caches) the work, but neither its latency nor its verdict
        reaches the fleet signals, because the router stopped watching.
        """
        for leg in legs:
            if leg.settled:
                continue
            leg.settled = True
            if leg.handle.done():
                try:
                    leg.handle.result(timeout=0.0)
                except Exception:
                    leg.replica.end_leg(failed=True)
                    leg.replica.record_outcome(False)
                else:
                    leg.replica.end_leg()
                    leg.replica.record_outcome(True)
                    leg.replica.observe_latency(
                        (time.monotonic() - leg.started) * 1e3
                    )
            else:
                leg.replica.end_leg()

    def _abandon_unresolved(self, legs) -> None:
        """Deadline passed: time out every live leg and close accounting.

        Each leg carried (a truncation of) the same deadline, so
        ``result(timeout=0)`` transitions it to ``TIMED_OUT`` server-side
        — nothing is left half-watched."""
        for leg in legs:
            if leg.settled:
                continue
            leg.settled = True
            try:
                leg.handle.result(timeout=0.0)
            except Exception:
                leg.replica.end_leg(failed=True)
                leg.replica.record_outcome(False)
            else:
                leg.replica.end_leg()
                leg.replica.record_outcome(True)

    def _issue_hedge(
        self, query, k, tenant, seq, tried, deadline, legs, any_event
    ) -> bool:
        """Send the backup leg to the next-best untried replica."""
        leg, _err = self._dispatch_leg(
            query, k, tenant, seq, tried, deadline, hedge=True
        )
        if leg is None:
            return False
        self._stats.record_hedge_issued()
        legs.append(leg)
        leg.handle.add_watcher(any_event)
        return True

    # ------------------------------------------------------------------
    # rolling upgrade
    # ------------------------------------------------------------------
    def rolling_swap(self, new_index) -> int:
        """Upgrade the fleet to ``new_index`` one replica at a time.

        For each live replica in id order: mark it draining (new legs
        route elsewhere), wait until its in-flight legs and server queue
        are empty (bounded by ``drain_timeout_s`` — the swap itself is
        atomic and in-flight batches finish on the old snapshot, so
        proceeding after a wedged drain is safe), atomically
        ``swap_index``, and reactivate.  At least one replica serves the
        old or new index at every instant; concurrent calls serialize.

        Returns the number of replicas swapped (dead ones are skipped).
        """
        poll = self.config.drain_poll_ms / 1e3
        swapped = 0
        with self._swap_lock:
            for replica in self._replicas:
                if replica.state == DEAD:
                    continue
                replica.mark_draining()
                drain_deadline = time.monotonic() + self.config.drain_timeout_s
                while time.monotonic() < drain_deadline:
                    if (
                        replica.inflight == 0
                        and replica.server.queue_depth() == 0
                    ):
                        break
                    time.sleep(poll)
                try:
                    replica.server.swap_index(new_index)
                finally:
                    replica.mark_active()
                swapped += 1
            self._stats.record_rolling_swap()
        return swapped

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def health(self) -> FleetHealth:
        """Fleet liveness snapshot (see :class:`FleetHealth`)."""
        snapshots = {r.replica_id: r.snapshot() for r in self._replicas}
        open_breakers = [
            r.replica_id
            for r in self._replicas
            if r.breaker is not None
            and r.breaker.snapshot()["state"] != CircuitBreaker.CLOSED
        ]
        states = [snap["state"] for snap in snapshots.values()]
        server_health = [
            r.server.health() for r in self._replicas if r.state != DEAD
        ]
        can_serve = [
            r
            for r in self._replicas
            if r.state in (ACTIVE, DRAINING)
            and r.replica_id not in open_breakers
        ]
        if not can_serve:
            status = "down"
        elif (
            open_breakers
            or any(s != ACTIVE for s in states)
            or any(h["status"] != "ok" for h in server_health)
        ):
            status = "degraded"
        else:
            status = "ok"
        counters = self._stats.counters()
        routed = counters.get("routed", 0)
        hedge_rate = (
            counters.get("hedges_issued", 0) / routed if routed else 0.0
        )
        return FleetHealth(
            status=status,
            replicas=snapshots,
            open_breakers=open_breakers,
            hedge_rate=hedge_rate,
            quota_rejections=(
                self._quotas.total_rejections if self._quotas is not None else 0
            ),
            quotas=self._quotas.snapshot() if self._quotas is not None else None,
        )

    #: Base-stat fields summed across replica servers into the fleet view.
    _SUMMED_FIELDS = (
        "submitted", "completed", "cache_hits", "cache_misses", "rejected",
        "timed_out", "failed", "batches", "coalesced_batches",
        "single_query_batches", "queue_depth", "index_swaps",
        "degraded_batches", "shard_failures", "batch_splits",
        "retried_batches", "breaker_trips", "inserts", "insert_rows",
        "deletes", "delete_rows", "rebuilds_incremental", "rebuilds_full",
        "memtable_rows",
    )

    def stats(self) -> RouterStats:
        """Fleet dashboard (see :class:`RouterStats`): replica server
        stats summed, router-tier counters, per-replica snapshots."""
        server_stats = [r.server.stats() for r in self._replicas]
        summed = {
            name: sum(getattr(s, name) for s in server_stats)
            for name in self._SUMMED_FIELDS
        }
        histogram: dict[int, int] = {}
        for s in server_stats:
            for size, count in s.batch_size_histogram.items():
                histogram[size] = histogram.get(size, 0) + count
        counters = self._stats.counters()
        states = [r.state for r in self._replicas]
        quota_by_tenant: dict[str, int] = {}
        if self._quotas is not None:
            quota_by_tenant = dict(self._quotas.snapshot()["rejected"])
        return RouterStats(
            **summed,
            batch_size_histogram=histogram,
            max_queue_depth=max(s.max_queue_depth for s in server_stats),
            recent_failure_rate=max(
                s.recent_failure_rate for s in server_stats
            ),
            last_promotion_ms=max(s.last_promotion_ms for s in server_stats),
            tombstone_ratio=max(s.tombstone_ratio for s in server_stats),
            latency_mean_ms=counters["latency_mean_ms"],
            latency_p50_ms=counters["latency_p50_ms"],
            latency_p95_ms=counters["latency_p95_ms"],
            latency_p99_ms=counters["latency_p99_ms"],
            latency_max_ms=counters["latency_max_ms"],
            replicas=len(self._replicas),
            replicas_active=states.count(ACTIVE),
            replicas_draining=states.count(DRAINING),
            replicas_dead=states.count(DEAD),
            routed=counters.get("routed", 0),
            routed_failed=counters.get("routed_failed", 0),
            hedges_issued=counters.get("hedges_issued", 0),
            hedges_won=counters.get("hedges_won", 0),
            failovers=counters.get("failovers", 0),
            quota_rejections=(
                self._quotas.total_rejections if self._quotas is not None else 0
            ),
            quota_rejections_by_tenant=quota_by_tenant,
            rolling_swaps=counters.get("rolling_swaps", 0),
            per_replica={r.replica_id: r.snapshot() for r in self._replicas},
        )

    def __repr__(self) -> str:
        states = [r.state for r in self._replicas]
        return (
            f"ShardRouter(replicas={len(self._replicas)}, "
            f"active={states.count(ACTIVE)}, dispatch="
            f"{self.config.dispatch!r}, hedge={self.config.hedge})"
        )
