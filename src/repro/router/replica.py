"""One fleet replica: a :class:`~repro.serve.CagraServer` plus the
router-side signals that drive dispatch.

The router never inspects a server's internals — each :class:`Replica`
owns the three per-replica signals the dispatch policy consumes (latency
EWMA, in-flight leg count, the server's queue depth), the replica's
circuit breaker, and the replica life-cycle state:

* ``active`` — eligible for dispatch;
* ``draining`` — excluded from new dispatch (unless it is the last
  replica standing) while :meth:`~repro.router.ShardRouter.rolling_swap`
  waits for it to go idle;
* ``dead`` — never dispatched to; what :meth:`Replica.kill` (the chaos
  hook) and an operator decommission leave behind.

All mutable state is guarded by one lock per replica; nothing here
blocks while holding it.
"""

from __future__ import annotations

import threading

from repro.resilience import CircuitBreaker
from repro.serve.server import CagraServer

__all__ = ["ACTIVE", "DEAD", "DRAINING", "Ewma", "Replica"]

ACTIVE = "active"
DRAINING = "draining"
DEAD = "dead"


class Ewma:
    """Exponentially weighted moving average (not thread-safe by itself;
    :class:`Replica` updates it under its lock)."""

    def __init__(self, alpha: float, initial: float):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = float(initial)
        self.samples = 0

    def update(self, sample: float) -> float:
        self.value += self.alpha * (float(sample) - self.value)
        self.samples += 1
        return self.value


class Replica:
    """Router-side view of one serving replica."""

    def __init__(
        self,
        replica_id: int,
        server: CagraServer,
        ewma_alpha: float = 0.2,
        ewma_initial_ms: float = 5.0,
        breaker: CircuitBreaker | None = None,
    ):
        self.replica_id = int(replica_id)
        self.server = server
        self.breaker = breaker
        self._lock = threading.Lock()
        self._state = ACTIVE
        self._ewma = Ewma(ewma_alpha, ewma_initial_ms)
        self._inflight = 0
        self._dispatched = 0
        self._hedges = 0
        self._wins = 0
        self._failures = 0

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def mark_active(self) -> None:
        with self._lock:
            if self._state != DEAD:
                self._state = ACTIVE

    def mark_draining(self) -> None:
        with self._lock:
            if self._state != DEAD:
                self._state = DRAINING

    def mark_dead(self) -> None:
        with self._lock:
            self._state = DEAD

    def kill(self) -> None:
        """Chaos hook: die abruptly, stranding queued work (non-draining
        stop), exactly like a replica process getting SIGKILLed — queued
        requests fail with ``ServerClosed`` and the router must route
        around the corpse."""
        self.mark_dead()
        self.server.stop(drain=False)

    # ------------------------------------------------------------------
    # dispatch signals
    # ------------------------------------------------------------------
    @property
    def ewma_ms(self) -> float:
        with self._lock:
            return self._ewma.value

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def load_score(self) -> float:
        """Lower is better: expected latency scaled by standing load."""
        depth = self.server.queue_depth()
        with self._lock:
            return self._ewma.value * (1.0 + self._inflight + depth)

    def observe_latency(self, latency_ms: float) -> None:
        with self._lock:
            self._ewma.update(latency_ms)

    # ------------------------------------------------------------------
    # leg accounting (the router calls these around every submitted leg)
    # ------------------------------------------------------------------
    def begin_leg(self, hedge: bool = False) -> None:
        with self._lock:
            self._inflight += 1
            self._dispatched += 1
            if hedge:
                self._hedges += 1

    def end_leg(self, won: bool = False, failed: bool = False) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if won:
                self._wins += 1
            if failed:
                self._failures += 1

    def record_outcome(self, success: bool) -> bool:
        """Feed the breaker; True when this outcome tripped it open."""
        if self.breaker is None:
            return False
        if success:
            self.breaker.record_success()
            return False
        return self.breaker.record_failure()

    def admit(self) -> bool:
        """May a new leg be sent here right now?

        Dead and draining replicas refuse; an open breaker refuses until
        its cooldown admits the single half-open probe — in which case
        *this* leg is the probe.
        """
        with self._lock:
            if self._state != ACTIVE:
                return False
        if self.breaker is not None and not self.breaker.allow():
            return False
        return True

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly per-replica entry for the fleet dashboard."""
        depth = self.server.queue_depth()
        breaker = self.breaker.snapshot() if self.breaker is not None else None
        with self._lock:
            return {
                "state": self._state,
                "ewma_ms": self._ewma.value,
                "latency_samples": self._ewma.samples,
                "inflight": self._inflight,
                "queue_depth": depth,
                "dispatched": self._dispatched,
                "hedges": self._hedges,
                "wins": self._wins,
                "failures": self._failures,
                "breaker": breaker,
            }

    def __repr__(self) -> str:
        return (
            f"Replica(id={self.replica_id}, state={self.state!r}, "
            f"ewma_ms={self.ewma_ms:.2f})"
        )
