"""Per-tenant admission quotas (token buckets).

Multi-tenant fairness is an *admission* concern: one tenant hammering
the fleet must be rejected before its requests consume queue slots,
batch positions, or hedge legs that belong to everyone else.  The
router therefore checks the tenant's :class:`TokenBucket` first thing in
:meth:`~repro.router.ShardRouter.search` — an over-quota request costs
one dictionary lookup and raises a typed :class:`TenantOverQuota`
without ever touching a replica.

The bucket clock is injectable two ways: per-bucket (``clock=``, like
:class:`~repro.resilience.CircuitBreaker`) and per-call (``now=``).
The per-call form is what makes quota outcomes *exactly* reproducible:
the fleet load generator passes each request's scheduled arrival time
(see :func:`repro.serve.loadgen.make_zipf_schedule`), so a reference
simulation replaying the same per-tenant arrival sequence through a
fresh bucket predicts every admit/reject decision bit-for-bit —
scheduling noise cannot leak into quota accounting.
"""

from __future__ import annotations

import threading
import time

from repro.serve.server import ServeError

__all__ = ["QuotaLedger", "TenantOverQuota", "TokenBucket"]


class TenantOverQuota(ServeError):
    """The tenant's token bucket is empty; the request was not admitted.

    Attributes:
        tenant: the rejected tenant id.
        retry_after_s: seconds until the bucket will hold one token
            again (at the configured refill rate) — the backoff hint a
            well-behaved client should honour.
    """

    def __init__(self, tenant: str, retry_after_s: float):
        super().__init__(
            f"tenant {tenant!r} is over its admission quota "
            f"(retry after {retry_after_s:.3f}s)"
        )
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Refill happens lazily on :meth:`try_acquire` from the elapsed time
    since the previous call; time never runs backwards (a stale ``now``
    is clamped to the last observed instant), so out-of-order observers
    cannot mint tokens.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._last = None  # set on first acquire: pre-run idle mints nothing

    def try_acquire(self, now: float | None = None, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; refill from elapsed time first.

        ``now`` overrides the bucket clock for this call (virtual-time
        mode); ``None`` reads the injected clock.
        """
        with self._lock:
            instant = self._clock() if now is None else float(now)
            if self._last is None:
                self._last = instant
            instant = max(instant, self._last)
            self._tokens = min(
                self.burst, self._tokens + (instant - self._last) * self.rate
            )
            self._last = instant
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after_s(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available at the refill rate."""
        with self._lock:
            deficit = max(0.0, tokens - self._tokens)
        return deficit / self.rate

    def snapshot(self) -> dict:
        with self._lock:
            return {"tokens": self._tokens, "rate": self.rate, "burst": self.burst}


class QuotaLedger:
    """Per-tenant :class:`TokenBucket` map plus admit/reject accounting.

    Buckets are created lazily on a tenant's first request, all with the
    same ``rate``/``burst`` (per-tenant tiers would be a config map away;
    the mechanism is tenant-agnostic).  :meth:`admit` either returns
    (admitted, counted) or raises :class:`TenantOverQuota` (rejected,
    counted) — there is no third outcome, which is what lets the
    acceptance test reconcile the ledger against the reference model.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}
        self._rejected: dict[str, int] = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str, now: float | None = None) -> None:
        """Charge one token to ``tenant`` or raise :class:`TenantOverQuota`."""
        bucket = self._bucket(tenant)
        if bucket.try_acquire(now=now):
            with self._lock:
                self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return
        retry_after = bucket.retry_after_s()
        with self._lock:
            self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
        raise TenantOverQuota(tenant, retry_after)

    @property
    def total_rejections(self) -> int:
        with self._lock:
            return sum(self._rejected.values())

    def snapshot(self) -> dict:
        """JSON-friendly per-tenant accounting for the fleet dashboard."""
        with self._lock:
            tenants = sorted(set(self._admitted) | set(self._rejected))
            return {
                "rate_qps": self.rate,
                "burst": self.burst,
                "admitted": {t: self._admitted.get(t, 0) for t in tenants},
                "rejected": {t: self._rejected.get(t, 0) for t in tenants},
            }
