"""Fleet-router configuration.

:class:`RouterConfig` holds the policy knobs of the replicated tier —
dispatch strategy, hedge-delay math, per-tenant admission quotas, and
per-replica circuit breakers.  The per-replica *serving* knobs stay in
:class:`repro.serve.ServeConfig` (each replica is a full
:class:`~repro.serve.CagraServer`), so fleet policy and server policy
remain independent dials, the same separation the serve layer keeps
between serving policy and :class:`~repro.core.config.SearchConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DISPATCH_POLICIES", "RouterConfig"]

#: Recognised dispatch policies.  ``load_aware`` scores replicas by
#: EWMA latency × (1 + queue depth + in-flight legs) and picks the
#: minimum; ``round_robin`` rotates over the available replicas in id
#: order — scheduling-independent, which is what the determinism tests
#: pin their hedge counters on.
DISPATCH_POLICIES = ("load_aware", "round_robin")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class RouterConfig:
    """Parameters of the replicated shard-router tier.

    Attributes:
        dispatch: replica-selection policy, one of
            :data:`DISPATCH_POLICIES`.
        hedge: issue a backup request to the next-best replica when the
            primary has not answered within the hedge delay (tail-latency
            insurance; the first successful leg wins, exactly once).
        hedge_delay_ms: fixed hedge delay; ``0`` derives the delay from
            the primary replica's latency EWMA
            (``ewma_ms * hedge_latency_factor``), clamped to
            ``[hedge_delay_floor_ms, hedge_delay_cap_ms]``.
        hedge_latency_factor: EWMA multiplier for derived hedge delays —
            "hedge once the request has taken noticeably longer than
            this replica's typical answer".
        hedge_delay_floor_ms / hedge_delay_cap_ms: clamp bounds for the
            derived delay (the floor stops a fast replica from hedging
            every request; the cap bounds tail exposure behind a
            suddenly-slow replica).
        hedge_jitter_ms: amplitude of the deterministic, seeded jitter
            added to every hedge delay (drawn from
            ``Philox(seed, request_sequence)``, never wall clock), which
            de-synchronizes hedge storms without sacrificing replay.
        max_attempts: total sequential dispatch attempts per request
            (primary + failovers after a failed leg).  The hedge leg is
            a *parallel* extra and does not consume attempts.
        ewma_alpha: smoothing factor of each replica's latency EWMA.
        ewma_initial_ms: optimistic prior for a replica that has not
            answered anything yet.
        quota_rate_qps: per-tenant token-bucket refill rate; ``0``
            disables admission quotas.
        quota_burst: per-tenant bucket capacity (burst allowance).
        breaker_failure_threshold: consecutive leg failures that open a
            replica's circuit breaker; ``0`` disables fleet breakers.
        breaker_cooldown_s: open-breaker cooldown before the single
            half-open probe is admitted.
        default_timeout_ms: per-request deadline applied when the caller
            does not pass one; ``0`` disables deadlines.
        seed: seeds the hedge-jitter stream (combined with the request
            sequence number, so no two requests share a draw).
        fault_plan: JSON fault plan (or ``@path``) evaluated at the
            ``router.dispatch`` / ``router.hedge`` points; empty defers
            to ``REPRO_FAULT_PLAN`` (see :mod:`repro.resilience.faults`).
        drain_poll_ms: polling period while waiting for a draining
            replica to go idle during :meth:`ShardRouter.rolling_swap`.
        drain_timeout_s: longest a rolling swap waits for one replica to
            drain before swapping anyway (the swap itself is atomic and
            in-flight batches finish on the old snapshot, so proceeding
            is safe — it just stops a wedged replica from stalling the
            upgrade).
    """

    dispatch: str = "load_aware"
    hedge: bool = True
    hedge_delay_ms: float = 0.0
    hedge_latency_factor: float = 2.0
    hedge_delay_floor_ms: float = 1.0
    hedge_delay_cap_ms: float = 100.0
    hedge_jitter_ms: float = 0.0
    max_attempts: int = 3
    ewma_alpha: float = 0.2
    ewma_initial_ms: float = 5.0
    quota_rate_qps: float = 0.0
    quota_burst: float = 10.0
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    default_timeout_ms: float = 0.0
    seed: int = 0
    fault_plan: str = ""
    drain_poll_ms: float = 2.0
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        _require(
            self.dispatch in DISPATCH_POLICIES,
            f"dispatch must be one of {DISPATCH_POLICIES}",
        )
        _require(self.hedge_delay_ms >= 0.0, "hedge_delay_ms must be >= 0")
        _require(
            self.hedge_latency_factor > 0.0, "hedge_latency_factor must be > 0"
        )
        _require(
            self.hedge_delay_floor_ms >= 0.0, "hedge_delay_floor_ms must be >= 0"
        )
        _require(
            self.hedge_delay_cap_ms >= self.hedge_delay_floor_ms,
            "hedge_delay_cap_ms must be >= hedge_delay_floor_ms",
        )
        _require(self.hedge_jitter_ms >= 0.0, "hedge_jitter_ms must be >= 0")
        _require(self.max_attempts >= 1, "max_attempts must be >= 1")
        _require(0.0 < self.ewma_alpha <= 1.0, "ewma_alpha must be in (0, 1]")
        _require(self.ewma_initial_ms > 0.0, "ewma_initial_ms must be > 0")
        _require(self.quota_rate_qps >= 0.0, "quota_rate_qps must be >= 0")
        _require(self.quota_burst >= 1.0, "quota_burst must be >= 1")
        _require(
            self.breaker_failure_threshold >= 0,
            "breaker_failure_threshold must be >= 0 (0 = disabled)",
        )
        _require(self.breaker_cooldown_s >= 0.0, "breaker_cooldown_s must be >= 0")
        _require(self.default_timeout_ms >= 0.0, "default_timeout_ms must be >= 0")
        _require(self.seed >= 0, "seed must be >= 0")
        _require(self.drain_poll_ms > 0.0, "drain_poll_ms must be > 0")
        _require(self.drain_timeout_s >= 0.0, "drain_timeout_s must be >= 0")
