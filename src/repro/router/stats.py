"""Fleet metrics: :class:`RouterStats` (a :class:`~repro.serve.ServeStats`
superset) and the :class:`FleetHealth` snapshot.

The router-level counters live in a lock-protected
:class:`RouterStatsCollector`, mirroring the serve layer's collector.
:meth:`ShardRouter.stats` merges three sources into one immutable
:class:`RouterStats`:

* the base :class:`~repro.serve.ServeStats` fields, summed across every
  replica's own server stats (batches, cache hits, degraded batches,
  breaker trips, ... — the whole per-server surface, fleet-wide);
* the router's own counters (routed requests, hedges issued/won,
  failovers, quota rejections, rolling swaps);
* per-replica snapshots (state, EWMA, dispatch/win/failure counts).

The latency percentiles are **router-observed end-to-end** latencies —
submit-to-first-winning-leg — not per-server scheduler latencies.  That
is deliberate: hedging exists to improve exactly this number, so the
fleet dashboard must report the client's experience, not the replicas'.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.serve.stats import LATENCY_WINDOW, ServeStats

__all__ = ["FleetHealth", "RouterStats", "RouterStatsCollector"]


@dataclass(frozen=True)
class RouterStats(ServeStats):
    """Fleet dashboard: everything :class:`ServeStats` reports, summed
    across replicas, plus the router tier's own counters.

    Attributes (beyond the inherited surface):
        replicas: fleet size (including dead replicas).
        replicas_active / replicas_draining / replicas_dead: life-cycle
            census at snapshot time.
        routed: requests the router resolved (any outcome past quota).
        routed_failed: requests that exhausted every leg and attempt.
        hedges_issued: backup legs sent after a hedge delay expired.
        hedges_won: hedged requests where the backup leg answered first.
        failovers: sequential re-dispatches after a failed leg.
        quota_rejections: admissions refused with ``TenantOverQuota``.
        quota_rejections_by_tenant: the same, per tenant id.
        rolling_swaps: completed :meth:`ShardRouter.rolling_swap` runs.
        per_replica: replica id → :meth:`Replica.snapshot` dict.
    """

    replicas: int = 0
    replicas_active: int = 0
    replicas_draining: int = 0
    replicas_dead: int = 0
    routed: int = 0
    routed_failed: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    failovers: int = 0
    quota_rejections: int = 0
    quota_rejections_by_tenant: dict[str, int] = field(default_factory=dict)
    rolling_swaps: int = 0
    per_replica: dict[int, dict] = field(default_factory=dict)

    @property
    def hedge_rate(self) -> float:
        """Fraction of routed requests that issued a hedge leg."""
        return self.hedges_issued / self.routed if self.routed else 0.0

    @property
    def hedge_win_rate(self) -> float:
        """Fraction of issued hedges that beat their primary."""
        return self.hedges_won / self.hedges_issued if self.hedges_issued else 0.0

    def to_dict(self) -> dict:
        out = super().to_dict()
        out.update(
            replicas=self.replicas,
            replicas_active=self.replicas_active,
            replicas_draining=self.replicas_draining,
            replicas_dead=self.replicas_dead,
            routed=self.routed,
            routed_failed=self.routed_failed,
            hedges_issued=self.hedges_issued,
            hedges_won=self.hedges_won,
            hedge_rate=self.hedge_rate,
            hedge_win_rate=self.hedge_win_rate,
            failovers=self.failovers,
            quota_rejections=self.quota_rejections,
            quota_rejections_by_tenant=dict(self.quota_rejections_by_tenant),
            rolling_swaps=self.rolling_swaps,
            per_replica={str(rid): snap for rid, snap in self.per_replica.items()},
        )
        return out

    def summary(self) -> str:
        lines = [
            "fleet stats",
            f"  replicas    total={self.replicas}  active={self.replicas_active}  "
            f"draining={self.replicas_draining}  dead={self.replicas_dead}",
            f"  routing     routed={self.routed}  failed={self.routed_failed}  "
            f"failovers={self.failovers}  rolling_swaps={self.rolling_swaps}",
            f"  hedging     issued={self.hedges_issued} "
            f"(rate={self.hedge_rate:.3f})  won={self.hedges_won} "
            f"(win_rate={self.hedge_win_rate:.3f})",
        ]
        if self.quota_rejections:
            per_tenant = "  ".join(
                f"{tenant}:{count}"
                for tenant, count in sorted(self.quota_rejections_by_tenant.items())
            )
            lines.append(
                f"  quotas      rejections={self.quota_rejections}  {per_tenant}"
            )
        for rid in sorted(self.per_replica):
            snap = self.per_replica[rid]
            lines.append(
                f"  replica {rid}   {snap['state']:<9}"
                f"ewma={snap['ewma_ms']:.2f}ms  "
                f"dispatched={snap['dispatched']}  hedges={snap['hedges']}  "
                f"wins={snap['wins']}  failures={snap['failures']}"
            )
        return "\n".join(lines) + "\n" + super().summary()


@dataclass(frozen=True)
class FleetHealth:
    """Operator-facing fleet liveness snapshot (JSON-friendly).

    ``status`` is ``"ok"`` (every replica active and closed), ``"degraded"``
    (any replica dead/draining, any breaker not closed, or any replica's
    own ``health()`` degraded — the fleet still answers), or ``"down"``
    (no replica can take traffic).
    """

    status: str
    replicas: dict[int, dict]
    open_breakers: list[int]
    hedge_rate: float
    quota_rejections: int
    quotas: dict | None

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "replicas": {str(rid): snap for rid, snap in self.replicas.items()},
            "open_breakers": list(self.open_breakers),
            "hedge_rate": self.hedge_rate,
            "quota_rejections": self.quota_rejections,
            "quotas": self.quotas,
        }


class RouterStatsCollector:
    """Mutable, lock-protected counters behind :class:`RouterStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = Counter()
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    def record_routed(self, latency_seconds: float) -> None:
        with self._lock:
            self._counts["routed"] += 1
            self._latencies.append(latency_seconds * 1e3)

    def record_routed_failure(self) -> None:
        with self._lock:
            self._counts["routed"] += 1
            self._counts["routed_failed"] += 1

    def record_hedge_issued(self) -> None:
        with self._lock:
            self._counts["hedges_issued"] += 1

    def record_hedge_won(self) -> None:
        with self._lock:
            self._counts["hedges_won"] += 1

    def record_failover(self) -> None:
        with self._lock:
            self._counts["failovers"] += 1

    def record_rolling_swap(self) -> None:
        with self._lock:
            self._counts["rolling_swaps"] += 1

    def counters(self) -> dict:
        with self._lock:
            counts = dict(self._counts)
            latencies = np.asarray(self._latencies, dtype=np.float64)
        if latencies.size:
            p50, p95, p99 = np.percentile(latencies, [50.0, 95.0, 99.0])
            counts["latency_mean_ms"] = float(latencies.mean())
            counts["latency_max_ms"] = float(latencies.max())
        else:
            p50 = p95 = p99 = 0.0
            counts["latency_mean_ms"] = 0.0
            counts["latency_max_ms"] = 0.0
        counts["latency_p50_ms"] = float(p50)
        counts["latency_p95_ms"] = float(p95)
        counts["latency_p99_ms"] = float(p99)
        return counts
