"""Zero-copy array hand-off to worker processes via POSIX shared memory.

A process-backend task must see multi-hundred-MB datasets without
pickling them through the task queue.  :class:`SharedArray` copies an
array into a :class:`multiprocessing.shared_memory.SharedMemory` segment
*once* in the parent; workers receive only the tiny :class:`ArraySpec`
(name, shape, dtype) and map the same physical pages read-only-by-
convention with :func:`attach_array`.

Lifecycle contract (see ``docs/parallel.md``):

* the *creator* owns the segment — ``close()`` unmaps and unlinks it;
* workers cache their attachments per segment name (bounded LRU), so a
  pool serving many searches against the same index attaches once;
* unlinking while workers hold attachments is safe on POSIX: pages are
  freed when the last mapping closes.

Python < 3.13 registers *attachments* with the ``resource_tracker`` too,
which double-counts segments (spurious "leaked shared_memory" warnings
under spawn, KeyError noise in a fork-shared tracker when creator and
workers both unregister); :func:`attach_array` therefore attaches
*untracked* — ``track=False`` on 3.13+, and on older interpreters by
briefly suppressing ``resource_tracker.register`` around the attach.
Only the creator ever talks to the tracker, and its register/unlink
pair is balanced.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ArraySpec", "SharedArray", "attach_array"]


@dataclass(frozen=True)
class ArraySpec:
    """Picklable handle to a shared array (what a task payload carries)."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArray:
    """A NumPy array backed by a shared-memory segment this object owns."""

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray):
        self._shm = shm
        self.array = array

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArray":
        """Copy ``source`` into a fresh shared segment."""
        source = np.ascontiguousarray(source)
        shm = shared_memory.SharedMemory(create=True, size=max(1, source.nbytes))
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        view[...] = source
        return cls(shm, view)

    @property
    def spec(self) -> ArraySpec:
        return ArraySpec(
            name=self._shm.name,
            shape=tuple(self.array.shape),
            dtype=str(self.array.dtype),
        )

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self.array = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker bookkeeping.

    Python < 3.13 has no ``track=False``, and registering a mere
    attachment is wrong on both start methods: under spawn the worker's
    tracker "owns" a segment it didn't create, under fork every worker
    shares the creator's tracker and duplicate unregisters raise inside
    the tracker process.  Suppressing ``register`` for the duration of
    the attach is the standard workaround; workers run these tasks
    single-threaded, so the swap is not racy.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


#: Per-process attachment cache: segment name -> (SharedMemory, ndarray).
#: Bounded so long-lived workers that see many short-lived indexes do not
#: accumulate mappings to already-unlinked segments.
_ATTACH_CACHE: OrderedDict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = (
    OrderedDict()
)
_ATTACH_CACHE_MAX = 64


def attach_array(spec: ArraySpec) -> np.ndarray:
    """Map the segment described by ``spec`` and return its array view.

    Cached per process: repeated tasks against the same segment reuse one
    mapping.  The returned view must be treated as read-only.
    """
    cached = _ATTACH_CACHE.get(spec.name)
    if cached is not None:
        _ATTACH_CACHE.move_to_end(spec.name)
        return cached[1]
    shm = _attach_untracked(spec.name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    _ATTACH_CACHE[spec.name] = (shm, array)
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
        _, (old_shm, _view) = _ATTACH_CACHE.popitem(last=False)
        try:
            old_shm.close()
        except OSError:
            pass
    return array
