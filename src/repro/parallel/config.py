"""Execution policy for the shard worker pool.

:class:`ParallelConfig` is the knob surface of :mod:`repro.parallel`: how
many workers to use and which backend runs them.  It deliberately lives
next to (not inside) :class:`~repro.core.config.GraphBuildConfig` — the
*same* index can be built serially on a laptop and searched by a 4-worker
pool in production, so execution policy is not part of index identity and
never affects results (see ``docs/parallel.md`` for the determinism
contract).

Environment overrides (applied only where a field still holds its
default) let CI force a policy without threading arguments through every
call site::

    REPRO_NUM_WORKERS=2 REPRO_PARALLEL_BACKEND=process pytest -k sharding
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BACKENDS", "ParallelConfig", "available_cpus"]

#: Recognised backend names.  ``auto`` resolves per call: ``process`` on
#: POSIX when more than one worker is useful, ``thread`` elsewhere
#: (Windows-safe: no fork, no shared-memory lifetime pitfalls), ``serial``
#: when one worker would run everything anyway.
BACKENDS = ("auto", "serial", "thread", "process")

_ENV_WORKERS = "REPRO_NUM_WORKERS"
_ENV_BACKEND = "REPRO_PARALLEL_BACKEND"


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """How per-shard work is executed.

    Attributes:
        num_workers: worker count; ``0`` = auto (``min(tasks, CPUs)``,
            or the ``REPRO_NUM_WORKERS`` environment override).
        backend: one of :data:`BACKENDS`; ``"auto"`` (or the
            ``REPRO_PARALLEL_BACKEND`` override) picks ``process`` on
            POSIX multi-core hosts, ``thread`` on other platforms, and
            ``serial`` whenever a pool could not help.
    """

    num_workers: int = 0
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 = auto)")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")

    # ------------------------------------------------------------------
    def resolved_workers(self, num_tasks: int) -> int:
        """Worker count for ``num_tasks`` independent tasks."""
        workers = self.num_workers
        if workers == 0:
            env = os.environ.get(_ENV_WORKERS, "")
            workers = int(env) if env.isdigit() and int(env) > 0 else 0
        if workers == 0:
            workers = available_cpus()
        return max(1, min(workers, num_tasks))

    def resolved_backend(self, num_tasks: int) -> str:
        """Backend for ``num_tasks`` tasks (never returns ``"auto"``)."""
        backend = self.backend
        if backend == "auto":
            env = os.environ.get(_ENV_BACKEND, "")
            backend = env if env in BACKENDS else "auto"
        if self.resolved_workers(num_tasks) <= 1 or num_tasks <= 1:
            return "serial"
        if backend == "auto":
            backend = "process" if os.name == "posix" else "thread"
        return backend
