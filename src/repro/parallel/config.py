"""Execution policy for the shard worker pool.

:class:`ParallelConfig` is the knob surface of :mod:`repro.parallel`: how
many workers to use and which backend runs them.  It deliberately lives
next to (not inside) :class:`~repro.core.config.GraphBuildConfig` — the
*same* index can be built serially on a laptop and searched by a 4-worker
pool in production, so execution policy is not part of index identity and
never affects results (see ``docs/parallel.md`` for the determinism
contract).

Environment overrides (applied only where a field still holds its
default) let CI force a policy without threading arguments through every
call site::

    REPRO_NUM_WORKERS=2 REPRO_PARALLEL_BACKEND=process pytest -k sharding
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BACKENDS", "ParallelConfig", "available_cpus"]

#: Recognised backend names.  ``auto`` resolves per call: ``process`` on
#: POSIX when more than one worker is useful, ``thread`` elsewhere
#: (Windows-safe: no fork, no shared-memory lifetime pitfalls), ``serial``
#: when one worker would run everything anyway.
BACKENDS = ("auto", "serial", "thread", "process")

_ENV_WORKERS = "REPRO_NUM_WORKERS"
_ENV_BACKEND = "REPRO_PARALLEL_BACKEND"


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """How per-shard work is executed.

    Attributes:
        num_workers: worker count; ``0`` = auto (``min(tasks, CPUs)``,
            or the ``REPRO_NUM_WORKERS`` environment override).
        backend: one of :data:`BACKENDS`; ``"auto"`` (or the
            ``REPRO_PARALLEL_BACKEND`` override) picks ``process`` on
            POSIX multi-core hosts, ``thread`` on other platforms, and
            ``serial`` whenever a pool could not help.
        max_retries: additional attempts after a shard task's first
            failure (tasks are pure, so retrying never changes results).
        task_timeout_s: per-attempt hung-task watchdog for pooled
            backends; ``0`` disables it (see
            :class:`~repro.resilience.retry.RetryPolicy`).
        backoff_base_ms / backoff_max_ms / retry_seed: seeded
            exponential-backoff schedule between retries.
        fault_plan: JSON fault plan (or ``@path``) for deterministic
            fault injection; empty defers to the ``REPRO_FAULT_PLAN``
            environment variable, and both empty disables injection
            entirely (see :mod:`repro.resilience.faults`).
    """

    num_workers: int = 0
    backend: str = "auto"
    max_retries: int = 2
    task_timeout_s: float = 0.0
    backoff_base_ms: float = 10.0
    backoff_max_ms: float = 2000.0
    retry_seed: int = 0
    fault_plan: str = ""

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 = auto)")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        # Delegate retry-field validation to the policy constructor so the
        # two surfaces can never drift.
        self.retry_policy()

    def retry_policy(self):
        """The :class:`~repro.resilience.retry.RetryPolicy` these knobs name."""
        from repro.resilience import RetryPolicy

        return RetryPolicy(
            max_retries=self.max_retries,
            task_timeout_s=self.task_timeout_s,
            backoff_base_ms=self.backoff_base_ms,
            backoff_max_ms=self.backoff_max_ms,
            seed=self.retry_seed,
        )

    # ------------------------------------------------------------------
    def resolved_workers(self, num_tasks: int) -> int:
        """Worker count for ``num_tasks`` independent tasks."""
        workers = self.num_workers
        if workers == 0:
            env = os.environ.get(_ENV_WORKERS, "")
            workers = int(env) if env.isdigit() and int(env) > 0 else 0
        if workers == 0:
            workers = available_cpus()
        return max(1, min(workers, num_tasks))

    def resolved_backend(self, num_tasks: int) -> str:
        """Backend for ``num_tasks`` tasks (never returns ``"auto"``)."""
        backend = self.backend
        if backend == "auto":
            env = os.environ.get(_ENV_BACKEND, "")
            backend = env if env in BACKENDS else "auto"
        if self.resolved_workers(num_tasks) <= 1 or num_tasks <= 1:
            return "serial"
        if backend == "auto":
            backend = "process" if os.name == "posix" else "thread"
        return backend
