"""The shard worker pool (:class:`ShardExecutor`).

One executor owns at most one pool (thread or process) and runs batches
of independent, *pure* tasks — per-shard CAGRA builds and per-shard
searches.  Because every task is a deterministic function of its payload,
the executor can guarantee:

* **determinism** — results are bitwise identical across backends and
  worker counts (the paper's multi-GPU sharding has the same property:
  each GPU's sub-graph is an independent computation), and retrying a
  task can never change its output;
* **robustness** — every payload is submitted as its own future and
  tracked individually.  A failing task is retried with seeded
  exponential backoff (:class:`~repro.resilience.retry.RetryPolicy`); a
  hung task is detected by a per-attempt watchdog and failed over; a
  dead worker (``BrokenProcessPool``) recycles the pool and resubmits
  only the payloads that never produced a result; and infrastructure
  failures (unpicklable payloads, pool creation errors) degrade to a
  serial re-run of the *unfinished* payloads only — completed results
  are always kept.

Process pools use the ``fork`` start method where available (no module
re-import, sub-second spin-up) and fall back to the platform default
elsewhere; payload arrays that would be expensive to pickle travel via
:mod:`repro.parallel.sharedmem` instead of the task queue.

Failure-path accounting lands in :attr:`ShardExecutor.stats`
(:class:`ExecutorStats`): retries, watchdog timeouts, pool recycles, and
serial fallbacks, so callers (and tests) can assert *how* a result was
produced, not just what it was.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.parallel.config import ParallelConfig
from repro.resilience import (
    RetryPolicy,
    TaskTimeout,
    resolve_fault_plan,
    set_current_attempt,
)

__all__ = ["ExecutorStats", "ShardExecutor", "TaskOutcome"]

#: How long the executor waits for in-flight futures to land before the
#: serial infrastructure fallback re-runs the rest (completed results are
#: kept; anything still pending after this grace is re-run serially).
_INFRA_HARVEST_SECONDS = 5.0

#: Exceptions that mean "the pool plumbing failed", not "the task failed".
#: AttributeError/TypeError are how pickle reports unpicklable payloads
#: (local functions, closures).  Tasks are pure, so the serial re-run
#: either succeeds (infrastructure failure) or raises the task's own
#: genuine exception unchanged.
_INFRA_ERRORS = (pickle.PicklingError, AttributeError, TypeError, OSError)


def _process_context():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_task(fn, payload, attempt):
    """Worker-side wrapper: publish the retry attempt to the fault layer."""
    set_current_attempt(attempt)
    try:
        return fn(payload)
    finally:
        set_current_attempt(0)


@dataclass
class TaskOutcome:
    """The terminal state of one payload after retries.

    Exactly one of ``value`` (success) and ``error`` (every allowed
    attempt failed) is meaningful; ``attempts`` counts executions that
    were started for this payload, including the successful one.
    """

    value: object = None
    error: BaseException | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


_STAT_NAMES = (
    "tasks", "completed", "failed", "retries",
    "timeouts", "pool_recycles", "serial_fallbacks",
)


@dataclass
class ExecutorStats:
    """Failure-path counters for one executor (cumulative across maps).

    A single executor can serve concurrent ``map`` calls (e.g. a sharded
    index shared by server scheduler threads), so every counter bump goes
    through :meth:`increment`, which serializes on an internal lock —
    unlocked ``stats.completed += 1`` from two threads loses updates.
    """

    tasks: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_recycles: int = 0
    serial_fallbacks: int = 0
    # Resolve threading.Lock at instance-creation time (not class-def
    # time) so runtime lock instrumentation sees this lock too.
    _lock: threading.Lock = field(
        default_factory=lambda: threading.Lock(), repr=False, compare=False
    )

    def increment(self, name: str, n: int = 1) -> None:
        """Atomically add ``n`` to the counter called ``name``."""
        if name not in _STAT_NAMES:
            raise AttributeError(f"unknown ExecutorStats counter {name!r}")
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def as_dict(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in _STAT_NAMES}


@dataclass
class _Pending:
    """Bookkeeping for one in-flight future."""

    index: int
    attempt: int
    deadline: float | None
    epoch: int


@dataclass
class _Waiting:
    """A retry sitting out its backoff delay."""

    resume_at: float
    index: int
    attempt: int


class ShardExecutor:
    """Runs independent shard tasks on a serial/thread/process backend.

    Construct directly with *resolved* values, or via :meth:`from_config`
    to apply :class:`~repro.parallel.config.ParallelConfig` resolution
    (auto worker count, platform backend choice, env overrides, retry
    policy, fault plan).  Usable as a context manager; :meth:`close`
    shuts the pool down.
    """

    def __init__(
        self,
        num_workers: int = 1,
        backend: str = "serial",
        retry: RetryPolicy | None = None,
        fault_plan=None,
    ):
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.backend = backend if num_workers > 1 else "serial"
        self.retry = retry or RetryPolicy()
        self.stats = ExecutorStats()
        self._fault = None
        if fault_plan is not None:
            from repro.resilience import FaultInjector

            self._fault = FaultInjector(fault_plan)
        self._pool = None
        self._pool_epoch = 0

    @classmethod
    def from_config(cls, config: ParallelConfig, num_tasks: int) -> "ShardExecutor":
        return cls(
            num_workers=config.resolved_workers(num_tasks),
            backend=config.resolved_backend(num_tasks),
            retry=config.retry_policy(),
            fault_plan=resolve_fault_plan(config.fault_plan),
        )

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool (idempotent); serial maps keep working."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            if self._fault is not None:
                self._fault.fire("pool.spawn", backend=self.backend)
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-shard",
                )
            elif self.backend == "process":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    mp_context=_process_context(),
                )
        return self._pool

    def _recycle_pool(self, kill: bool = False) -> None:
        """Drop the current pool; the next submit creates a fresh one.

        With ``kill=True`` worker processes are terminated first — the
        only way to reclaim a worker stuck in a hung task.
        """
        pool, self._pool = self._pool, None
        self._pool_epoch += 1
        if pool is None:
            return
        self.stats.increment("pool_recycles")
        if kill:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _downgrade_to_serial(self) -> None:
        self.close()
        self.backend = "serial"

    # ------------------------------------------------------------------
    def map(self, fn: Callable, payloads: Sequence, policy: RetryPolicy | None = None) -> list:
        """Run ``fn`` over ``payloads``; results in payload order.

        ``fn`` must be a module-level function and each payload picklable
        when the backend is ``process``.  Tasks are retried per the
        executor's :class:`RetryPolicy`; the first payload (in payload
        order) whose retries are exhausted has its exception re-raised
        unchanged.  Use :meth:`map_outcomes` to collect per-payload
        failures instead of raising.
        """
        results = []
        for outcome in self.map_outcomes(fn, payloads, policy):
            if outcome.error is not None:
                raise outcome.error
            results.append(outcome.value)
        return results

    def map_outcomes(
        self, fn: Callable, payloads: Sequence, policy: RetryPolicy | None = None
    ) -> list[TaskOutcome]:
        """Run ``fn`` over ``payloads``; one :class:`TaskOutcome` each.

        Never raises for task-level failures: a payload whose attempts
        are all exhausted yields an outcome with ``error`` set (a
        :class:`TaskTimeout` when the watchdog fired on every attempt).
        Pool-level failures are absorbed: dead workers recycle the pool
        and resubmit unfinished payloads; unpicklable payloads fall back
        to a serial re-run of exactly the payloads without results.
        """
        payloads = list(payloads)
        n = len(payloads)
        if n == 0:
            return []
        policy = policy or self.retry
        self.stats.increment("tasks", n)
        # The watchdog needs a pool even for a single task (the calling
        # thread cannot interrupt itself).
        use_pool = self.backend != "serial" and (n > 1 or policy.task_timeout_s > 0)
        if not use_pool:
            return self._serial_outcomes(fn, payloads, policy)
        return self._pooled_outcomes(fn, payloads, policy)

    # ------------------------------------------------------------------
    def _serial_outcomes(
        self,
        fn: Callable,
        payloads: list,
        policy: RetryPolicy,
        slots: list | None = None,
    ) -> list[TaskOutcome]:
        """Inline execution with retry/backoff; fills only empty slots."""
        if slots is None:
            slots = [None] * len(payloads)
        for index, payload in enumerate(payloads):
            if slots[index] is not None:
                continue
            attempt = 0
            while True:
                try:
                    value = _run_task(fn, payload, attempt)
                except Exception as exc:
                    if attempt < policy.max_retries:
                        self.stats.increment("retries")
                        time.sleep(policy.backoff_seconds(index, attempt))
                        attempt += 1
                        continue
                    slots[index] = TaskOutcome(error=exc, attempts=attempt + 1)
                    self.stats.increment("failed")
                else:
                    slots[index] = TaskOutcome(value=value, attempts=attempt + 1)
                    self.stats.increment("completed")
                break
        return slots

    def _pooled_outcomes(
        self, fn: Callable, payloads: list, policy: RetryPolicy
    ) -> list[TaskOutcome]:
        n = len(payloads)
        slots: list[TaskOutcome | None] = [None] * n
        watchdog = policy.task_timeout_s if policy.task_timeout_s > 0 else None
        pending: dict = {}  # future -> _Pending
        waiting: list[_Waiting] = []
        # Pool recycles are bounded per map call so a task that kills its
        # worker on every attempt cannot recycle forever; past the budget
        # the whole map degrades to the serial fallback.
        recycles_left = policy.max_retries + 2
        infra_error: BaseException | None = None

        def submit(index: int, attempt: int) -> bool:
            nonlocal infra_error
            try:
                pool = self._ensure_pool()
                future = pool.submit(_run_task, fn, payloads[index], attempt)
            except Exception as exc:
                infra_error = exc
                return False
            deadline = (time.monotonic() + watchdog) if watchdog else None
            pending[future] = _Pending(index, attempt, deadline, self._pool_epoch)
            return True

        def run_inline(index: int, attempt: int) -> None:
            """Last resort after repeated pool breakage: one inline try."""
            self.stats.increment("serial_fallbacks")
            try:
                value = _run_task(fn, payloads[index], attempt)
            except Exception as exc:
                slots[index] = TaskOutcome(error=exc, attempts=attempt + 1)
                self.stats.increment("failed")
            else:
                slots[index] = TaskOutcome(value=value, attempts=attempt + 1)
                self.stats.increment("completed")

        for i in range(n):
            if not submit(i, 0):
                break

        while infra_error is None and (pending or waiting):
            now = time.monotonic()
            for entry in [w for w in waiting if w.resume_at <= now]:
                waiting.remove(entry)
                if not submit(entry.index, entry.attempt):
                    break
            if infra_error is not None or not (pending or waiting):
                break

            bounds = [p.deadline for p in pending.values() if p.deadline is not None]
            bounds += [w.resume_at for w in waiting]
            block = max(0.0, min(bounds) - now) if bounds else None
            if pending:
                done, _ = wait(list(pending), timeout=block, return_when=FIRST_COMPLETED)
            else:
                time.sleep(block if block is not None else 0.01)
                done = ()
            now = time.monotonic()

            for future in done:
                meta = pending.pop(future)
                if slots[meta.index] is not None:
                    continue
                try:
                    value = future.result()
                except (BrokenProcessPool, CancelledError) as exc:
                    # A worker died (or its pool was torn down): recycle
                    # once per breakage, then resubmit.  Pool breakage
                    # does not consume the task's own retry budget — an
                    # innocent payload whose worker was killed by a
                    # neighbour re-runs at full budget — but a payload
                    # that *keeps* arriving with a broken pool eventually
                    # runs inline so the map always terminates.
                    if meta.epoch == self._pool_epoch:
                        if recycles_left <= 0:
                            infra_error = exc
                            continue
                        recycles_left -= 1
                        self._recycle_pool()
                    if meta.attempt < policy.max_retries:
                        self.stats.increment("retries")
                        submit(meta.index, meta.attempt + 1)
                    else:
                        run_inline(meta.index, meta.attempt + 1)
                except _INFRA_ERRORS as exc:
                    infra_error = exc
                except Exception as exc:
                    if meta.attempt < policy.max_retries:
                        self.stats.increment("retries")
                        waiting.append(_Waiting(
                            now + policy.backoff_seconds(meta.index, meta.attempt),
                            meta.index,
                            meta.attempt + 1,
                        ))
                    else:
                        slots[meta.index] = TaskOutcome(
                            error=exc, attempts=meta.attempt + 1
                        )
                        self.stats.increment("failed")
                else:
                    slots[meta.index] = TaskOutcome(
                        value=value, attempts=meta.attempt + 1
                    )
                    self.stats.increment("completed")

            if infra_error is not None:
                break

            # Watchdog sweep: declare expired tasks hung and fail over.
            expired = {
                future: pending.pop(future)
                for future in [
                    f for f, p in pending.items()
                    if p.deadline is not None and p.deadline <= now
                ]
            }
            if expired:
                self.stats.increment("timeouts", len(expired))
                carryover: list[_Pending] = []
                if self.backend == "process":
                    # Terminating the hung worker kills the whole pool;
                    # innocents are resubmitted on the fresh pool at no
                    # cost to their retry budget.
                    carryover = [pending.pop(f) for f in list(pending)]
                    self._recycle_pool(kill=True)
                for future in expired:
                    future.cancel()
                for meta in expired.values():
                    if slots[meta.index] is not None:
                        continue
                    if meta.attempt < policy.max_retries:
                        self.stats.increment("retries")
                        if not submit(meta.index, meta.attempt + 1):
                            break
                    else:
                        slots[meta.index] = TaskOutcome(
                            error=TaskTimeout(
                                f"shard task {meta.index} exceeded the "
                                f"{policy.task_timeout_s}s watchdog on "
                                f"attempt {meta.attempt + 1}"
                            ),
                            attempts=meta.attempt + 1,
                        )
                        self.stats.increment("failed")
                for meta in carryover:
                    if slots[meta.index] is None:
                        if not submit(meta.index, meta.attempt):
                            break

        if infra_error is not None:
            # Harvest whatever already finished (pure tasks: completed
            # results are kept), then re-run only the unfinished payloads
            # serially — never the whole batch.
            if pending:
                done, not_done = wait(list(pending), timeout=_INFRA_HARVEST_SECONDS)
                for future in done:
                    meta = pending.pop(future)
                    if slots[meta.index] is not None:
                        continue
                    try:
                        value = future.result()
                    except Exception:
                        continue  # re-run serially below
                    slots[meta.index] = TaskOutcome(
                        value=value, attempts=meta.attempt + 1
                    )
                    self.stats.increment("completed")
                for future in not_done:
                    future.cancel()
            unfinished = sum(1 for slot in slots if slot is None)
            warnings.warn(
                f"{self.backend} pool failed ({infra_error!r}); re-running the "
                f"{unfinished} unfinished shard task(s) serially",
                RuntimeWarning,
                stacklevel=3,
            )
            self.stats.increment("serial_fallbacks", unfinished)
            self._downgrade_to_serial()
            return self._serial_outcomes(fn, payloads, policy, slots=slots)
        return slots

    def __repr__(self) -> str:
        return (
            f"ShardExecutor(num_workers={self.num_workers}, "
            f"backend={self.backend!r}, pid={os.getpid()})"
        )
