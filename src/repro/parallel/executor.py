"""The shard worker pool (:class:`ShardExecutor`).

One executor owns at most one pool (thread or process) and runs batches
of independent, *pure* tasks with :meth:`ShardExecutor.map` — per-shard
CAGRA builds and per-shard searches.  Because every task is a
deterministic function of its payload, the executor can guarantee:

* **determinism** — results are bitwise identical across backends and
  worker counts (the paper's multi-GPU sharding has the same property:
  each GPU's sub-graph is an independent computation);
* **robustness** — if a process pool cannot be used (worker crash,
  unpicklable payload, fork unavailable), the batch is transparently
  re-run serially and the executor downgrades itself, so callers never
  see a pool failure.

Process pools use the ``fork`` start method where available (no module
re-import, sub-second spin-up) and fall back to the platform default
elsewhere; payload arrays that would be expensive to pickle travel via
:mod:`repro.parallel.sharedmem` instead of the task queue.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.parallel.config import ParallelConfig

__all__ = ["ShardExecutor"]


def _process_context():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardExecutor:
    """Runs independent shard tasks on a serial/thread/process backend.

    Construct directly with *resolved* values, or via :meth:`from_config`
    to apply :class:`~repro.parallel.config.ParallelConfig` resolution
    (auto worker count, platform backend choice, env overrides).  Usable
    as a context manager; :meth:`close` shuts the pool down.
    """

    def __init__(self, num_workers: int = 1, backend: str = "serial"):
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.backend = backend if num_workers > 1 else "serial"
        self._pool = None

    @classmethod
    def from_config(cls, config: ParallelConfig, num_tasks: int) -> "ShardExecutor":
        return cls(
            num_workers=config.resolved_workers(num_tasks),
            backend=config.resolved_backend(num_tasks),
        )

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool (idempotent); serial maps keep working."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-shard",
                )
            elif self.backend == "process":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    mp_context=_process_context(),
                )
        return self._pool

    def map(self, fn: Callable, payloads: Sequence) -> list:
        """Run ``fn`` over ``payloads``; results in payload order.

        ``fn`` must be a module-level function and each payload picklable
        when the backend is ``process``.  Pool-level failures degrade to
        a serial re-run (tasks are pure, so re-running is safe); task
        exceptions propagate unchanged.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if self.backend == "serial" or len(payloads) == 1:
            return [fn(p) for p in payloads]
        pool = self._ensure_pool()
        try:
            return list(pool.map(fn, payloads))
        # AttributeError/TypeError: how pickle reports unpicklable payloads
        # (local functions, closures).  Tasks are pure, so the serial
        # re-run either succeeds (pool-infrastructure failure) or raises
        # the task's own genuine exception unchanged.
        except (
            BrokenProcessPool,
            pickle.PicklingError,
            AttributeError,
            TypeError,
            OSError,
        ) as exc:
            warnings.warn(
                f"{self.backend} pool failed ({exc!r}); re-running the "
                f"{len(payloads)} shard task(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
            self.close()
            self.backend = "serial"
            return [fn(p) for p in payloads]

    def __repr__(self) -> str:
        return (
            f"ShardExecutor(num_workers={self.num_workers}, "
            f"backend={self.backend!r}, pid={os.getpid()})"
        )
