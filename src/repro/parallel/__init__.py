"""repro.parallel — worker-pool execution for sharded CAGRA.

The paper's multi-GPU recipe assigns "each GPU ... to process one
sub-graph independently"; this package is the CPU-process analogue: a
:class:`ShardExecutor` fans per-shard builds and searches out across a
process pool (dataset shared via POSIX shared memory, adjacency arrays
pickled back), with thread and serial backends as small-input /
Windows-safe fallbacks, and a determinism guarantee — results are
bitwise identical to the serial path on every backend.

Entry points: :class:`~repro.parallel.config.ParallelConfig` (the knob
surface: ``num_workers``, ``backend``), :class:`ShardExecutor`, and the
shard task helpers in :mod:`repro.parallel.shards` that
:class:`~repro.core.sharding.ShardedCagraIndex` builds on.  See
``docs/parallel.md`` for design, backend selection, and the
shared-memory lifecycle.
"""

from repro.parallel.config import BACKENDS, ParallelConfig, available_cpus
from repro.parallel.sharedmem import ArraySpec, SharedArray, attach_array
from repro.parallel.executor import ExecutorStats, ShardExecutor, TaskOutcome
from repro.parallel.shards import (
    ShardPlan,
    SharedIndexHandle,
    build_shards,
    plan_shards,
    search_shards,
)

__all__ = [
    "ArraySpec",
    "BACKENDS",
    "ExecutorStats",
    "ParallelConfig",
    "ShardExecutor",
    "ShardPlan",
    "SharedArray",
    "SharedIndexHandle",
    "TaskOutcome",
    "attach_array",
    "available_cpus",
    "build_shards",
    "plan_shards",
    "search_shards",
]
